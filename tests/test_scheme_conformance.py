"""Registry-driven scheme conformance suite.

Every scheme registered in :data:`repro.sim.factory.SCHEME_NAMES` must
honor the same contracts, whatever its placement rule:

* **Step composition** -- running the per-node protocol steps
  (``lookup_step`` until the first hit, one ``decide_step``,
  ``deliver_step`` downstream in descending order) mutates cache state
  exactly as one ``process_request`` call does.  This is the contract
  that lets the live serving layer host any registered scheme.
* **Byte conservation** -- every completed request is served by exactly
  one party: ``cache_served + origin_served == requests``.
* **Invalidation correctness** -- per-node ``invalidate_step`` sums to
  ``invalidate_object``, and after a full update storm no stale copy
  survives anywhere.
* **Bit-exact sim-vs-serve replay** -- the in-process cluster reproduces
  the simulator's ``MetricsSummary`` exactly, on both architectures.

New schemes get all of this for free by being registered; see
``docs/schemes.md``.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.serve import Cluster, LoadGenerator
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.topology.builder import build_chain
from repro.verify.fastpath_diff import assert_cache_state_identical
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.updates import generate_update_events

WORKLOAD = WorkloadConfig(
    num_objects=80,
    num_servers=3,
    num_clients=8,
    num_requests=400,
    zipf_theta=0.8,
    seed=7,
)
CONFIG = SimulationConfig(relative_cache_size=0.01, dcache_ratio=3.0)

ALL_SCHEMES = sorted(SCHEME_NAMES)


@pytest.fixture(scope="module")
def seeded_trace():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    return generator.generate(), generator.catalog


def make_chain_scheme(name, capacity=1500, dcache=16):
    network = build_chain([1.0] * 5)
    cost_model = LatencyCostModel(network, avg_size=100.0)
    return build_scheme(name, cost_model, capacity, dcache)


def chain_requests(count=300, seed=11):
    """Deterministic (object, size, start) request stream on the chain."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        object_id = rng.randrange(40)
        size = 1 + (object_id * 37) % 400
        start = rng.randrange(5)
        out.append((object_id, size, start))
    return out


def composed_request(scheme, path, object_id, size, now):
    """Run one request through the node-local steps, serve-layer order.

    Mirrors ``repro.serve.node``: upstream lookups collect piggybacked
    reports from miss nodes (the hit node contributes none), one
    decision at the serving node, then the downstream unwind in
    descending path order mutating the decision in place.
    """
    last = len(path) - 1
    reports = []
    hit_index = last
    for i in range(last):
        hit, report = scheme.lookup_step(path[i], object_id, size, now)
        if hit:
            hit_index = i
            break
        if report is not None:
            reports.append(report)
    decision = scheme.decide_step(
        path, hit_index, reports, object_id, size, now
    )
    inserted = []
    evictions = 0
    for i in range(hit_index - 1, -1, -1):
        did_insert, victims = scheme.deliver_step(
            i, path, decision, object_id, size, now
        )
        if did_insert:
            inserted.append(path[i])
            evictions += victims
    return hit_index, tuple(inserted), evictions


def simulate(arch, catalog, scheme_name, trace, updates=()):
    cost_model = LatencyCostModel(arch.network, catalog.mean_size)
    capacity = CONFIG.capacity_bytes(catalog.total_bytes)
    dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
    scheme = build_scheme(scheme_name, cost_model, capacity, dcache)
    engine = SimulationEngine(
        arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
    )
    return engine.run(trace, updates=updates)


def serve_replay(arch, catalog, scheme_name, trace, updates=()):
    async def scenario():
        cluster = Cluster.build(arch, catalog, scheme_name, config=CONFIG)
        await cluster.start()
        loadgen = LoadGenerator(
            cluster,
            trace,
            updates=updates,
            warmup_fraction=CONFIG.warmup_fraction,
        )
        report = await loadgen.run(mode="sequential")
        await cluster.stop()
        return report

    return asyncio.run(scenario())


class TestStepComposition:
    """process_request == composed lookup/decide/deliver steps."""

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_steps_match_process_request(self, scheme_name):
        reference = make_chain_scheme(scheme_name)
        composed = make_chain_scheme(scheme_name)
        now = 0.0
        for object_id, size, start in chain_requests():
            path = list(range(start, 6))
            outcome = reference.process_request(path, object_id, size, now)
            hit_index, inserted, evictions = composed_request(
                composed, path, object_id, size, now
            )
            assert hit_index == outcome.hit_index
            # Reporting order differs between the two paths (the walk
            # unwinds downstream); the inserted *set* is the contract.
            assert sorted(inserted) == sorted(outcome.inserted_nodes)
            assert evictions == outcome.evicted_objects
            now += 1.0
        assert_cache_state_identical(reference, composed, tag=scheme_name)

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_steps_match_under_interleaved_invalidation(self, scheme_name):
        """The equivalence must survive invalidations between requests."""
        reference = make_chain_scheme(scheme_name)
        composed = make_chain_scheme(scheme_name)
        now = 0.0
        for i, (object_id, size, start) in enumerate(chain_requests(200)):
            path = list(range(start, 6))
            reference.process_request(path, object_id, size, now)
            composed_request(composed, path, object_id, size, now)
            if i % 17 == 0:
                victim = (object_id * 7) % 40
                removed_ref = reference.invalidate_object(victim)
                removed_comp = sum(
                    composed.invalidate_step(node, victim) for node in range(6)
                )
                assert removed_comp == removed_ref
            now += 1.0
        assert_cache_state_identical(reference, composed, tag=scheme_name)


class TestByteConservation:
    """Every completed request is served by exactly one party."""

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_cache_plus_origin_equals_requests(self, seeded_trace, scheme_name):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        report = serve_replay(arch, catalog, scheme_name, trace)
        assert report.errors == 0
        assert (
            report.cache_served + report.origin_served == report.requests_total
        )
        # The modelled summary must agree with the live accounting.
        assert 0.0 <= report.summary.hit_ratio <= 1.0
        assert 0.0 <= report.summary.byte_hit_ratio <= 1.0


class TestInvalidationCorrectness:
    """Push invalidation drops every copy, and only copies."""

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_update_storm_leaves_no_copies(self, scheme_name):
        scheme = make_chain_scheme(scheme_name)
        now = 0.0
        for object_id, size, start in chain_requests(200):
            scheme.process_request(list(range(start, 6)), object_id, size, now)
            now += 1.0
        # Storm: invalidate every object in the universe.
        for object_id in range(40):
            removed = scheme.invalidate_object(object_id)
            assert removed >= 0
            for node in range(6):
                assert not scheme.has_object(node, object_id)
            # A second invalidation finds nothing left to remove.
            assert scheme.invalidate_object(object_id) == 0
        assert scheme.total_cached_bytes() == 0
        scheme.check_invariants()

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_per_node_steps_sum_to_global_invalidate(self, scheme_name):
        whole = make_chain_scheme(scheme_name)
        stepped = make_chain_scheme(scheme_name)
        now = 0.0
        for object_id, size, start in chain_requests(200):
            path = list(range(start, 6))
            whole.process_request(path, object_id, size, now)
            stepped.process_request(path, object_id, size, now)
            now += 1.0
        for object_id in range(40):
            removed_whole = whole.invalidate_object(object_id)
            removed_stepped = sum(
                stepped.invalidate_step(node, object_id) for node in range(6)
            )
            assert removed_stepped == removed_whole
        assert_cache_state_identical(whole, stepped, tag=scheme_name)

    @pytest.mark.parametrize("scheme_name", ["adaptive", "costaware"])
    def test_sim_vs_serve_with_update_storm(self, seeded_trace, scheme_name):
        """The new families stay bit-exact under a dense update stream."""
        trace, catalog = seeded_trace
        updates = generate_update_events(
            num_objects=WORKLOAD.num_objects,
            duration=trace[len(trace) - 1].time,
            update_rate=2.0,
            seed=9,
        )
        assert updates, "seed must yield a non-empty update stream"
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        sim = simulate(arch, catalog, scheme_name, trace, updates=updates)
        report = serve_replay(
            arch, catalog, scheme_name, trace, updates=updates
        )
        assert report.summary == sim.summary
        assert report.updates_applied == sim.updates_applied
        assert report.copies_invalidated == sim.copies_invalidated


class TestBitExactReplay:
    """In-process cluster replay reproduces the simulator exactly."""

    @pytest.mark.parametrize("arch_name", ["hierarchical", "en-route"])
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_summary_identical(self, seeded_trace, scheme_name, arch_name):
        trace, catalog = seeded_trace
        arch = build_architecture(arch_name, WORKLOAD, seed=2)
        sim = simulate(arch, catalog, scheme_name, trace)
        report = serve_replay(arch, catalog, scheme_name, trace)
        assert report.summary == sim.summary
        assert report.requests_total == sim.requests_total
        assert report.requests_measured == sim.requests_measured
