"""Targeted tests for remaining coverage gaps across modules."""

from __future__ import annotations

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.charts import render_figure
from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_cache_size_sweep
from repro.experiments.tables import format_sweep_table, metric_value
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.sim.engine import SimulationEngine
from repro.topology.builder import build_chain
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.trace import Trace, TraceRecord
from repro.workload.updates import UpdateEvent


@pytest.fixture(scope="module")
def sweep_points():
    workload = WorkloadConfig(
        num_objects=50, num_servers=3, num_clients=6, num_requests=1_000, seed=2
    )
    generator = BoeingLikeTraceGenerator(workload)
    arch = build_architecture("hierarchical", workload, seed=0)
    return run_cache_size_sweep(
        arch,
        generator.generate(),
        generator.catalog,
        scheme_names=["lru", "coordinated"],
        cache_sizes=[0.02, 0.2],
    )


class TestRenderFigure:
    def test_renders_from_sweep_points(self, sweep_points):
        chart = render_figure(sweep_points, "latency", title="demo")
        assert "demo" in chart
        assert "o=coordinated" in chart
        assert "latency" in chart

    def test_unknown_metric_raises(self, sweep_points):
        with pytest.raises(ValueError):
            render_figure(sweep_points, "bogus")


class TestPercentileMetrics:
    def test_percentiles_available_as_metrics(self, sweep_points):
        summary = sweep_points[0].summary
        p50 = metric_value(summary, "latency_p50")
        p90 = metric_value(summary, "latency_p90")
        p99 = metric_value(summary, "latency_p99")
        assert p50 <= p90 <= p99

    def test_percentiles_in_tables(self, sweep_points):
        text = format_sweep_table(sweep_points, ["latency_p50", "latency_p99"])
        assert "latency_p50" in text
        assert "latency_p99" in text


class TestEngineUpdateBoundaries:
    def _engine_and_trace(self):
        network = build_chain([1.0, 1.0])
        cost = LatencyCostModel(network, 100.0)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=10_000)

        from repro.routing.distribution_tree import RoutingTable
        from repro.sim.architecture import Architecture

        arch = Architecture(
            name="chain",
            network=network,
            routing=RoutingTable(network),
            client_nodes={0: 0},
            server_nodes={0: 2},
        )
        records = [
            TraceRecord(1.0, 0, 7, 0, 100),
            TraceRecord(2.0, 0, 7, 0, 100),
            TraceRecord(3.0, 0, 7, 0, 100),
        ]
        return SimulationEngine(arch, cost, scheme, warmup_fraction=0.0), Trace(records)

    def test_update_at_request_time_applies_first(self):
        """An update stamped exactly at a request's time precedes it."""
        engine, trace = self._engine_and_trace()
        result = engine.run(trace, updates=[UpdateEvent(2.0, 7)])
        # Request 1 caches the object; the update at t=2.0 invalidates it
        # before the t=2.0 request, which therefore misses again.
        assert result.updates_applied == 1
        assert result.copies_invalidated == 2  # nodes 0 and 1
        assert result.summary.hit_ratio == pytest.approx(1 / 3)

    def test_updates_after_trace_end_never_apply(self):
        engine, trace = self._engine_and_trace()
        result = engine.run(trace, updates=[UpdateEvent(99.0, 7)])
        assert result.updates_applied == 0

    def test_update_for_uncached_object_is_harmless(self):
        engine, trace = self._engine_and_trace()
        result = engine.run(trace, updates=[UpdateEvent(1.5, 999)])
        assert result.updates_applied == 1
        assert result.copies_invalidated == 0


class TestGDSInflationInScheme:
    def test_plain_gds_serves_and_ages(self):
        from repro.schemes.extra_baselines import GDSScheme

        network = build_chain([1.0] * 2)
        cost = LatencyCostModel(network, 100.0)
        scheme = GDSScheme(cost, capacity_bytes=250, popularity_aware=False)
        path = [0, 1, 2]
        # Fill with two objects, then a parade of new ones: inflation
        # must eventually evict even the earliest entries (no cache
        # pollution by stale content).
        for t, oid in enumerate([1, 2, 3, 4, 5, 6]):
            scheme.process_request(path, oid, 100, now=float(t))
        assert not scheme.has_object(0, 1)
        scheme.check_invariants()


class TestChainedPathHelpers:
    def test_path_slices_match_cost_model(self):
        """Latency = cost over the path prefix up to the hit node."""
        network = build_chain([0.5, 2.0])
        cost = LatencyCostModel(network, avg_size=100.0)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=10_000)
        path = [0, 1, 2]
        outcome = scheme.process_request(path, 5, 100, now=0.0)
        assert outcome.hit_index == 2
        assert cost.path_cost(path[: outcome.hit_index + 1], 100) == pytest.approx(2.5)
        second = scheme.process_request(path, 5, 100, now=1.0)
        assert second.hit_index == 0
        assert cost.path_cost(path[:1], 100) == 0.0
