"""Tests for result-set comparison (regression guarding)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.compare import compare_points
from repro.experiments.sweeps import SweepPoint
from repro.metrics.collector import MetricsSummary


def summary(latency=1.0, byte_hit=0.5):
    return MetricsSummary(
        requests=100,
        mean_latency=latency,
        mean_response_ratio=latency / 1000,
        byte_hit_ratio=byte_hit,
        hit_ratio=byte_hit,
        mean_traffic_byte_hops=1e5,
        mean_hops=5.0,
        mean_read_load=100.0,
        mean_write_load=50.0,
        latency_percentiles=(latency, latency, latency),
    )


def point(scheme="lru", size=0.01, latency=1.0, byte_hit=0.5):
    return SweepPoint(
        architecture="en-route",
        scheme=scheme,
        relative_cache_size=size,
        summary=summary(latency, byte_hit),
    )


class TestComparePoints:
    def test_identical_sets_are_ok(self):
        points = [point(), point(scheme="coordinated", latency=0.5)]
        report = compare_points(points, points)
        assert report.ok
        assert report.matched_points == 2
        assert "OK" in report.format()

    def test_within_tolerance_passes(self):
        base = [point(latency=1.0)]
        cand = [point(latency=1.01)]
        assert compare_points(base, cand, relative_tolerance=0.02).ok

    def test_drift_detected(self):
        base = [point(latency=1.0)]
        cand = [point(latency=1.20)]
        report = compare_points(base, cand, relative_tolerance=0.02)
        assert not report.ok
        drift = report.drifts[0]
        assert drift.metric == "latency"
        assert drift.relative_change == pytest.approx(0.20)
        assert "DRIFT" in report.format()

    def test_missing_and_extra_points(self):
        base = [point(scheme="lru"), point(scheme="coordinated")]
        cand = [point(scheme="lru"), point(scheme="gdsp")]
        report = compare_points(base, cand)
        assert ("coordinated", 0.01) in report.missing_in_candidate
        assert ("gdsp", 0.01) in report.extra_in_candidate
        assert not report.ok  # missing points fail the comparison

    def test_extra_alone_does_not_fail(self):
        base = [point()]
        cand = [point(), point(scheme="gdsp")]
        assert compare_points(base, cand).ok

    def test_zero_baseline_requires_exact(self):
        base = [point(byte_hit=0.0)]
        good = [point(byte_hit=0.0)]
        bad = [point(byte_hit=0.001)]
        assert compare_points(base, good, metrics=["byte_hit_ratio"]).ok
        assert not compare_points(base, bad, metrics=["byte_hit_ratio"]).ok

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_points([], [], relative_tolerance=-1)
        with pytest.raises(ValueError):
            compare_points([], [], metrics=["nope"])


class TestCompareCLI:
    def test_cli_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.results_io import save_points_json

        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        save_points_json([point(latency=1.0)], base_path)
        save_points_json([point(latency=1.0)], cand_path)
        assert main(["compare", str(base_path), str(cand_path)]) == 0
        assert "OK" in capsys.readouterr().out

        save_points_json([point(latency=2.0)], cand_path)
        assert main(["compare", str(base_path), str(cand_path)]) == 1
        assert "DRIFT" in capsys.readouterr().out
