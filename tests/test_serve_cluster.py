"""The simulator-vs-cluster differential oracle.

The serving layer's correctness gate: replaying a seeded trace through
an in-process cluster (closed loop, concurrency 1, trace order) must
reproduce the simulator's :class:`~repro.metrics.collector.
MetricsSummary` **bit-for-bit** -- every float equal, not approximately
equal -- for the coordinated scheme and the baselines.  Any divergence
means the live protocol (piggybacked reports, shipped decisions, the
downstream cost accumulator) no longer implements the paper's algorithm
the simulator implements.

This is the contract pinning the per-node step decomposition
(``lookup_step`` / ``decide_step`` / ``deliver_step`` /
``invalidate_step``) to ``process_request``; see
``repro/schemes/base.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.obs.instruments import Instruments
from repro.obs.registry import StatRegistry
from repro.serve import Cluster, LoadGenerator
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.updates import generate_update_events

WORKLOAD = WorkloadConfig(
    num_objects=100,
    num_servers=4,
    num_clients=12,
    num_requests=900,
    zipf_theta=0.8,
    seed=5,
)
CONFIG = SimulationConfig(relative_cache_size=0.01, dcache_ratio=3.0)


@pytest.fixture(scope="module")
def seeded_trace():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    return generator.generate(), generator.catalog


def simulate(arch, catalog, scheme_name, trace, updates=(), registry=None):
    """One engine run with the standard execute_point derivation."""
    cost_model = LatencyCostModel(arch.network, catalog.mean_size)
    capacity = CONFIG.capacity_bytes(catalog.total_bytes)
    dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
    scheme = build_scheme(scheme_name, cost_model, capacity, dcache)
    engine = SimulationEngine(
        arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
    )
    instruments = Instruments(registry=registry) if registry is not None else None
    return engine.run(trace, updates=updates, instruments=instruments)


def serve_replay(arch, catalog, scheme_name, trace, updates=()):
    """The same trace through a live in-process cluster, trace order."""

    async def scenario():
        cluster = Cluster.build(arch, catalog, scheme_name, config=CONFIG)
        await cluster.start()
        loadgen = LoadGenerator(
            cluster,
            trace,
            updates=updates,
            warmup_fraction=CONFIG.warmup_fraction,
        )
        report = await loadgen.run(mode="sequential")
        merged = StatRegistry()
        for node_id, node in cluster.nodes.items():
            snap = node.registry.snapshot().get(node_id)
            if snap is not None:
                stats = merged.node(node_id)
                for field, value in snap.items():
                    setattr(stats, field, value)
        await cluster.stop()
        return report, merged

    return asyncio.run(scenario())


class TestBitForBitOracle:
    """ISSUE gate: exact MetricsSummary equality, coordinated + baselines."""

    @pytest.mark.parametrize("arch_name", ["hierarchical", "en-route"])
    def test_coordinated(self, seeded_trace, arch_name):
        trace, catalog = seeded_trace
        arch = build_architecture(arch_name, WORKLOAD, seed=2)
        sim = simulate(arch, catalog, "coordinated", trace)
        report, _ = serve_replay(arch, catalog, "coordinated", trace)
        assert report.summary == sim.summary

    @pytest.mark.parametrize("scheme_name", ["lru", "lnc-r", "gds"])
    def test_baselines(self, seeded_trace, scheme_name):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        sim = simulate(arch, catalog, scheme_name, trace)
        report, _ = serve_replay(arch, catalog, scheme_name, trace)
        assert report.summary == sim.summary

    def test_measured_window_matches_engine(self, seeded_trace):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        sim = simulate(arch, catalog, "coordinated", trace)
        report, _ = serve_replay(arch, catalog, "coordinated", trace)
        assert report.requests_total == sim.requests_total
        assert report.requests_measured == sim.requests_measured


class TestUpdateStreamEquivalence:
    """Push invalidation through the cluster == engine update handling."""

    def test_coordinated_with_updates(self, seeded_trace):
        trace, catalog = seeded_trace
        updates = generate_update_events(
            num_objects=WORKLOAD.num_objects,
            duration=trace[len(trace) - 1].time,
            update_rate=0.5,
            seed=9,
        )
        assert updates, "seed must yield a non-empty update stream"
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        sim = simulate(arch, catalog, "coordinated", trace, updates=updates)
        report, _ = serve_replay(
            arch, catalog, "coordinated", trace, updates=updates
        )
        assert report.summary == sim.summary
        assert report.updates_applied == sim.updates_applied
        assert report.copies_invalidated == sim.copies_invalidated


class TestNodeRegistryEquivalence:
    """Per-node live counters must equal the instrumented engine's."""

    @pytest.mark.parametrize("scheme_name", ["coordinated", "lru"])
    def test_registry_snapshots_match(self, seeded_trace, scheme_name):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        registry = StatRegistry()
        simulate(arch, catalog, scheme_name, trace, registry=registry)
        _, merged = serve_replay(arch, catalog, scheme_name, trace)
        assert merged.snapshot() == registry.snapshot()


class TestClusterLifecycle:
    def test_snapshot_and_drain(self, seeded_trace):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)

        async def scenario():
            cluster = Cluster.build(arch, catalog, "lru", config=CONFIG)
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace)
            await loadgen.run(mode="sequential")
            assert await cluster.drain()
            snap = await cluster.stop()
            return snap

        snap = asyncio.run(scenario())
        assert snap["scheme"] == "lru"
        assert snap["architecture"] == "hierarchical"
        handled = sum(
            entry["requests_handled"] for entry in snap["nodes"].values()
        )
        # Every request walks at least its ingress node.
        assert handled >= len(trace)
        assert any(
            entry["cached_bytes"] > 0 for entry in snap["nodes"].values()
        )

    def test_healthz_reports_liveness_and_readiness(self, seeded_trace):
        """A serving node is ready; a draining node is live but not ready."""
        import json as json_module

        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)

        async def http_get(host, port, target):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.decode().partition("\r\n\r\n")
            return int(head.split()[1]), body

        async def scenario():
            cluster = Cluster.build(arch, catalog, "lru", config=CONFIG)
            await cluster.start()
            endpoints = await cluster.enable_metrics()
            host, port = next(iter(endpoints.values()))
            serving = await http_get(host, port, "/healthz")
            cluster.begin_drain()
            draining = await http_get(host, port, "/healthz")
            await cluster.stop()
            return serving, draining

        (up_status, up_body), (drain_status, drain_body) = asyncio.run(
            scenario()
        )
        assert up_status == 200
        assert json_module.loads(up_body) == {"live": True, "ready": True}
        assert drain_status == 503
        assert json_module.loads(drain_body) == {"live": True, "ready": False}

    def test_closed_loop_covers_whole_trace(self, seeded_trace):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)

        async def scenario():
            cluster = Cluster.build(
                arch, catalog, "coordinated", config=CONFIG
            )
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace)
            report = await loadgen.run(mode="closed", concurrency=4)
            await cluster.stop()
            return report

        report = asyncio.run(scenario())
        warmup_end, total = trace.split_warmup(CONFIG.warmup_fraction)
        assert report.requests_total == total
        assert report.requests_measured == total - warmup_end
        assert report.errors == 0
        assert 0.0 < report.summary.hit_ratio < 1.0
