"""Integration tests: the paper's headline relative-performance claims.

These replay a scaled-down trace on both architectures and assert the
*shape* results of section 4 -- who wins and roughly how.  They use a
moderate trace so they stay well under a minute combined.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_cache_size_sweep, run_single
from repro.sim.config import SimulationConfig
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=400,
    num_servers=10,
    num_clients=50,
    num_requests=10_000,
    zipf_theta=0.8,
    seed=7,
)


@pytest.fixture(scope="module")
def setup():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    return generator, trace


@pytest.fixture(scope="module")
def enroute_points(setup):
    generator, trace = setup
    arch = build_architecture("en-route", WORKLOAD, seed=1)
    return run_cache_size_sweep(
        arch,
        trace,
        generator.catalog,
        scheme_names=["lru", "modulo", "lnc-r", "coordinated"],
        cache_sizes=[0.01, 0.05],
        scheme_params={"modulo": {"radius": 4}},
    )


@pytest.fixture(scope="module")
def hier_points(setup):
    generator, trace = setup
    arch = build_architecture("hierarchical", WORKLOAD, seed=1)
    return run_cache_size_sweep(
        arch,
        trace,
        generator.catalog,
        scheme_names=["lru", "modulo", "lnc-r", "coordinated"],
        cache_sizes=[0.01, 0.05],
        scheme_params={"modulo": {"radius": 4}},
    )


def by_scheme(points, size):
    return {
        p.scheme.split("(")[0]: p.summary
        for p in points
        if p.relative_cache_size == size
    }


class TestEnrouteShapes:
    def test_coordinated_has_lowest_latency(self, enroute_points):
        for size in (0.01, 0.05):
            summaries = by_scheme(enroute_points, size)
            best = min(summaries, key=lambda k: summaries[k].mean_latency)
            assert best == "coordinated", (size, {
                k: v.mean_latency for k, v in summaries.items()
            })

    def test_coordinated_has_highest_byte_hit_ratio(self, enroute_points):
        for size in (0.01, 0.05):
            summaries = by_scheme(enroute_points, size)
            best = max(summaries, key=lambda k: summaries[k].byte_hit_ratio)
            assert best == "coordinated"

    def test_coordinated_has_lowest_cache_load(self, enroute_points):
        for size in (0.01, 0.05):
            summaries = by_scheme(enroute_points, size)
            best = min(summaries, key=lambda k: summaries[k].mean_cache_load)
            assert best == "coordinated"

    def test_lru_write_load_many_times_coordinated(self, enroute_points):
        """Paper: LRU/LNC-R introduce 3-24x the read/write load."""
        summaries = by_scheme(enroute_points, 0.05)
        ratio = summaries["lru"].mean_cache_load / summaries[
            "coordinated"
        ].mean_cache_load
        assert ratio > 3.0

    def test_coordinated_fewest_hops(self, enroute_points):
        summaries = by_scheme(enroute_points, 0.05)
        best = min(summaries, key=lambda k: summaries[k].mean_hops)
        assert best == "coordinated"

    def test_coordinated_lowest_traffic(self, enroute_points):
        summaries = by_scheme(enroute_points, 0.05)
        best = min(
            summaries, key=lambda k: summaries[k].mean_traffic_byte_hops
        )
        assert best == "coordinated"


class TestHierarchicalShapes:
    def test_coordinated_has_lowest_latency(self, hier_points):
        for size in (0.01, 0.05):
            summaries = by_scheme(hier_points, size)
            best = min(summaries, key=lambda k: summaries[k].mean_latency)
            assert best == "coordinated"

    def test_modulo4_worse_than_lru(self, hier_points):
        """Paper section 4.2: radius 4 leaves levels 1-3 unused."""
        summaries = by_scheme(hier_points, 0.05)
        assert summaries["modulo"].mean_latency > summaries["lru"].mean_latency
        assert (
            summaries["modulo"].byte_hit_ratio < summaries["lru"].byte_hit_ratio
        )

    def test_modulo4_only_uses_leaf_caches(self, setup):
        generator, trace = setup
        arch = build_architecture("hierarchical", WORKLOAD, seed=1)
        from repro.costs.model import LatencyCostModel
        from repro.schemes.modulo import ModuloScheme
        from repro.sim.engine import SimulationEngine

        catalog = generator.catalog
        cost = LatencyCostModel(arch.network, catalog.mean_size)
        scheme = ModuloScheme(cost, capacity_bytes=100_000, radius=4)
        SimulationEngine(arch, cost, scheme).run(trace)
        for node, cache in scheme.caches().items():
            if arch.network.level(node) > 0:
                assert len(cache) == 0, f"non-leaf node {node} was used"

    def test_modulo4_cache_load_flat_in_cache_size(self):
        """Paper Figure 10(b): MODULO(r=4) load independent of cache size.

        The claim requires every object to fit in the smallest cache (one
        read on a hit or one write on a miss at the single used cache, both
        of object size); the paper's 100k-object scale guarantees that, so
        here we bound object sizes to recreate the precondition.
        """
        from repro.workload.catalog import SizeDistribution

        workload = WorkloadConfig(
            num_objects=400,
            num_servers=10,
            num_clients=50,
            num_requests=8_000,
            zipf_theta=0.8,
            seed=7,
            size_distribution=SizeDistribution(
                tail_fraction=0.0, max_size=4096, body_median=2048, body_sigma=0.4
            ),
        )
        generator = BoeingLikeTraceGenerator(workload)
        trace = generator.generate()
        arch = build_architecture("hierarchical", workload, seed=1)
        loads = []
        for size in (0.02, 0.2):
            point = run_single(
                arch,
                trace,
                generator.catalog,
                "modulo",
                SimulationConfig(relative_cache_size=size),
                radius=4,
            )
            loads.append(point.summary.mean_cache_load)
        assert loads[0] == pytest.approx(loads[1], rel=0.02)


class TestCrossArchitecture:
    def test_latency_decreases_with_cache_size(self, enroute_points, hier_points):
        for points in (enroute_points, hier_points):
            for scheme in ("lru", "coordinated"):
                series = sorted(
                    (p.relative_cache_size, p.summary.mean_latency)
                    for p in points
                    if p.scheme.startswith(scheme)
                )
                assert series[0][1] >= series[-1][1]

    def test_identical_seeds_identical_results(self, setup):
        generator, trace = setup
        arch = build_architecture("en-route", WORKLOAD, seed=1)
        config = SimulationConfig(relative_cache_size=0.02)
        a = run_single(arch, trace, generator.catalog, "coordinated", config)
        arch2 = build_architecture("en-route", WORKLOAD, seed=1)
        b = run_single(arch2, trace, generator.catalog, "coordinated", config)
        assert a.summary == b.summary
