"""Tests for the LRU, MODULO and LNC-R baseline schemes (paper section 3.3)."""

from __future__ import annotations

import pytest

from repro.costs.model import LatencyCostModel
from repro.schemes.lncr import LNCRScheme
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.schemes.modulo import ModuloScheme
from repro.topology.builder import build_chain


@pytest.fixture
def chain5():
    """Chain 0-1-2-3-4-5; node 5 is the origin attachment."""
    return build_chain([1.0] * 5)


@pytest.fixture
def costs(chain5):
    return LatencyCostModel(chain5, avg_size=100.0)


PATH = [0, 1, 2, 3, 4, 5]


class TestLRUEverywhere:
    def test_first_request_misses_and_caches_everywhere(self, costs):
        scheme = LRUEverywhereScheme(costs, capacity_bytes=1000)
        outcome = scheme.process_request(PATH, object_id=7, size=100, now=0.0)
        assert outcome.hit_index == 5
        assert not outcome.served_by_cache
        assert outcome.inserted_nodes == (0, 1, 2, 3, 4)
        assert outcome.bytes_written == 500
        assert outcome.bytes_read == 0
        for node in range(5):
            assert scheme.has_object(node, 7)

    def test_second_request_hits_first_cache(self, costs):
        scheme = LRUEverywhereScheme(costs, capacity_bytes=1000)
        scheme.process_request(PATH, 7, 100, now=0.0)
        outcome = scheme.process_request(PATH, 7, 100, now=1.0)
        assert outcome.hit_index == 0
        assert outcome.served_by_cache
        assert outcome.hops == 0
        assert outcome.bytes_read == 100
        assert outcome.inserted_nodes == ()

    def test_partial_path_hit_fills_below_only(self, costs):
        scheme = LRUEverywhereScheme(costs, capacity_bytes=1000)
        # Request from node 3's position (sub-path) first.
        scheme.process_request([3, 4, 5], 7, 100, now=0.0)
        outcome = scheme.process_request(PATH, 7, 100, now=1.0)
        assert outcome.hit_index == 3
        assert outcome.inserted_nodes == (0, 1, 2)

    def test_oversized_object_not_cached_but_served(self, costs):
        scheme = LRUEverywhereScheme(costs, capacity_bytes=50)
        outcome = scheme.process_request(PATH, 7, size=100, now=0.0)
        assert outcome.hit_index == 5
        assert outcome.inserted_nodes == ()
        assert not scheme.has_object(0, 7)

    def test_eviction_counted(self, costs):
        scheme = LRUEverywhereScheme(costs, capacity_bytes=100)
        scheme.process_request(PATH, 1, 100, now=0.0)
        outcome = scheme.process_request(PATH, 2, 100, now=1.0)
        assert outcome.evicted_objects == 5  # one eviction per node

    def test_trivial_path_client_at_server(self, costs):
        outcome = LRUEverywhereScheme(costs, 100).process_request(
            [5], 7, 100, now=0.0
        )
        assert outcome.hit_index == 0
        assert outcome.hops == 0
        assert not outcome.served_by_cache


class TestModulo:
    def test_radius_one_equals_lru_placement(self, costs):
        scheme = ModuloScheme(costs, 1000, radius=1)
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.inserted_nodes == (0, 1, 2, 3, 4)

    def test_radius_anchored_at_server(self, costs):
        # Path has 5 hops; with radius 2 the nodes 2 and 4 hops from the
        # server attachment store copies (path indices 3 and 1).
        scheme = ModuloScheme(costs, 1000, radius=2)
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert set(outcome.inserted_nodes) == {1, 3}

    def test_radius_larger_than_path_caches_nothing_or_little(self, costs):
        scheme = ModuloScheme(costs, 1000, radius=7)
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.inserted_nodes == ()

    def test_placement_restricted_below_hit(self, costs):
        scheme = ModuloScheme(costs, 1000, radius=2)
        scheme.process_request(PATH, 7, 100, now=0.0)  # cached at 1 and 3
        outcome = scheme.process_request(PATH, 7, 100, now=1.0)
        assert outcome.hit_index == 1
        assert outcome.inserted_nodes == ()  # no eligible node below 1

    def test_hierarchical_blind_spot(self, costs):
        """Radius 4 on a 4-hop path uses only the node 4 hops from origin."""
        path = [0, 1, 2, 3, 4]  # 4 hops: node 4 = server attachment
        scheme = ModuloScheme(costs, 1000, radius=4)
        outcome = scheme.process_request(path, 7, 100, now=0.0)
        assert outcome.inserted_nodes == (0,)

    def test_rejects_bad_radius(self, costs):
        with pytest.raises(ValueError):
            ModuloScheme(costs, 1000, radius=0)

    def test_name_includes_radius(self, costs):
        assert ModuloScheme(costs, 10, radius=3).name == "modulo(r=3)"


class TestLNCR:
    def test_caches_everywhere_below_hit(self, costs):
        scheme = LNCRScheme(costs, 1000, dcache_entries=10)
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.inserted_nodes == (4, 3, 2, 1, 0)

    def test_miss_penalty_is_immediate_upstream_link(self, costs):
        scheme = LNCRScheme(costs, 1000, dcache_entries=10)
        scheme.process_request(PATH, 7, size=200, now=0.0)
        # Each link has delay 1.0 at avg size 100 -> cost 2.0 for size 200.
        for node in range(5):
            entry = scheme.cache_at(node).entry(7)
            assert entry.descriptor.miss_penalty == pytest.approx(2.0)

    def test_evicts_least_ncl_not_lru(self, costs):
        scheme = LNCRScheme(costs, capacity_bytes=200, dcache_entries=10)
        path = [0, 1]
        # Object 1: requested twice (higher f); object 2 once.
        scheme.process_request(path, 1, 100, now=0.0)
        scheme.process_request(path, 1, 100, now=10.0)
        scheme.process_request(path, 2, 100, now=20.0)
        # Cache full (1, 2); new object 3 should evict object 2 (lower f)
        # even though object 1 is the LRU one... object 1 was accessed at
        # t=10 vs object 2 inserted t=20 -> LRU would evict 1.
        scheme.process_request(path, 3, 100, now=21.0)
        cache = scheme.cache_at(0)
        assert 1 in cache
        assert 2 not in cache

    def test_evicted_descriptor_moves_to_dcache(self, costs):
        scheme = LNCRScheme(costs, capacity_bytes=100, dcache_entries=10)
        path = [0, 1]
        scheme.process_request(path, 1, 100, now=0.0)
        scheme.process_request(path, 2, 100, now=1.0)  # evicts object 1
        state = scheme.node_state(0)
        assert 1 not in state.cache
        assert 1 in state.dcache

    def test_dcache_history_survives_reinsertion(self, costs):
        scheme = LNCRScheme(costs, capacity_bytes=100, dcache_entries=10)
        path = [0, 1]
        scheme.process_request(path, 1, 100, now=0.0)
        scheme.process_request(path, 2, 100, now=1.0)
        scheme.process_request(path, 1, 100, now=2.0)
        descriptor = scheme.cache_at(0).entry(1).descriptor
        # Two references recorded for object 1 (t=0 and t=2).
        assert descriptor.estimator.reference_count == 2

    def test_invariants_after_churn(self, costs, tiny_trace):
        trace, _ = tiny_trace
        scheme = LNCRScheme(costs, capacity_bytes=5000, dcache_entries=20)
        for record in trace.records[:500]:
            scheme.process_request(
                PATH, record.object_id, record.size, record.time
            )
        scheme.check_invariants()
