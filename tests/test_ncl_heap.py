"""Tests for the heap-organized NCL cache and its equivalence to the list one."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.descriptors import ObjectDescriptor
from repro.cache.ncl import NCLCache
from repro.cache.ncl_heap import HeapNCLCache


def desc(object_id: int, size: int, penalty: float, now: float) -> ObjectDescriptor:
    d = ObjectDescriptor(object_id, size, miss_penalty=penalty)
    d.record_access(now)
    return d


class TestHeapNCLCache:
    def test_evicts_smallest_ncl(self):
        cache = HeapNCLCache(100)
        cache.insert(desc(1, 50, penalty=0.1, now=0.0), now=0.0)
        cache.insert(desc(2, 50, penalty=100.0, now=0.0), now=0.0)
        cache.insert(desc(3, 50, penalty=1.0, now=1.0), now=1.0)
        assert 1 not in cache and 2 in cache

    def test_set_miss_penalty_reorders(self):
        cache = HeapNCLCache(1000)
        cache.insert(desc(0, 10, penalty=1.0, now=0.0), now=0.0)
        cache.insert(desc(1, 10, penalty=2.0, now=0.0), now=0.0)
        assert cache.eviction_order() == [0, 1]
        cache.set_miss_penalty(0, 50.0, now=1.0)
        assert cache.eviction_order() == [1, 0]

    def test_record_access_requires_presence(self):
        cache = HeapNCLCache(100)
        with pytest.raises(KeyError):
            cache.record_access(9, now=0.0)
        with pytest.raises(KeyError):
            cache.set_miss_penalty(9, 1.0, now=0.0)

    def test_cost_loss_semantics(self):
        cache = HeapNCLCache(100)
        assert cache.cost_loss(1, 200, now=0.0) is None
        assert cache.cost_loss(1, 50, now=0.0) == 0.0
        cache.insert(desc(1, 80, penalty=2.0, now=0.0), now=0.0)
        assert cache.cost_loss(1, 80, now=0.0) == 0.0
        loss = cache.cost_loss(2, 50, now=0.0)
        entry = cache.entry(1)
        expected = entry.descriptor.normalized_cost_loss(0.0) * 80
        assert loss == pytest.approx(expected)

    def test_select_victims_does_not_mutate(self):
        cache = HeapNCLCache(100)
        cache.insert(desc(1, 60, penalty=1.0, now=0.0), now=0.0)
        victims = cache.select_victims(30, now=0.0)
        assert [v.object_id for v in victims] == [1]
        assert 1 in cache
        cache.check_invariants()

    def test_reinsert_does_not_resurrect_stale_entry(self):
        """Regression: versions are globally unique, so a removed and
        re-inserted object must not match heap entries from its earlier
        incarnation (which would carry a stale NCL key)."""
        cache = HeapNCLCache(1000)
        cache.insert(desc(1, 100, penalty=50.0, now=0.0), now=0.0)  # big key
        cache.insert(desc(2, 100, penalty=1.0, now=0.0), now=0.0)
        cache.remove(1)
        # Re-insert object 1 with a much smaller key than before.
        cache.insert(desc(1, 100, penalty=0.01, now=1.0), now=1.0)
        assert cache.eviction_order() == [1, 2]
        cache.check_invariants()

    def test_heap_compaction_under_update_storm(self):
        cache = HeapNCLCache(10_000)
        for i in range(20):
            cache.insert(desc(i, 100, penalty=1.0, now=0.0), now=0.0)
        for round_ in range(200):
            cache.set_miss_penalty(round_ % 20, float(round_ + 1), now=1.0)
        cache.check_invariants()
        assert len(cache._heap) <= 8 * len(cache)


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "access", "penalty"]),
        st.integers(min_value=0, max_value=12),   # object id
        st.integers(min_value=10, max_value=120),  # size (stable per id below)
        st.floats(min_value=0.0, max_value=50.0),  # penalty
    ),
    min_size=1,
    max_size=80,
)


class TestEquivalenceWithListNCL:
    @given(ops)
    @settings(max_examples=150, deadline=None)
    def test_same_eviction_order_and_victims(self, operations):
        list_cache = NCLCache(400)
        heap_cache = HeapNCLCache(400)
        now = 0.0
        for op, object_id, raw_size, penalty in operations:
            size = 10 + (object_id * 13) % 100  # stable size per object id
            if op == "insert":
                d1 = desc(object_id, size, penalty, now)
                d2 = desc(object_id, size, penalty, now)
                if object_id in list_cache:
                    continue
                evicted1 = list_cache.insert(d1, now)
                evicted2 = heap_cache.insert(d2, now)
                assert [e.object_id for e in evicted1] == [
                    e.object_id for e in evicted2
                ]
            elif op == "access" and object_id in list_cache:
                list_cache.record_access(object_id, now)
                heap_cache.record_access(object_id, now)
            elif op == "penalty" and object_id in list_cache:
                list_cache.set_miss_penalty(object_id, penalty, now)
                heap_cache.set_miss_penalty(object_id, penalty, now)
            assert set(list_cache.object_ids()) == set(heap_cache.object_ids())
            assert list_cache.eviction_order() == heap_cache.eviction_order()
            list_cache.check_invariants()
            heap_cache.check_invariants()
            now += 1.0

    @given(ops)
    @settings(max_examples=80, deadline=None)
    def test_same_cost_loss(self, operations):
        list_cache = NCLCache(400)
        heap_cache = HeapNCLCache(400)
        now = 0.0
        for op, object_id, _, penalty in operations:
            size = 10 + (object_id * 13) % 100
            if op == "insert" and object_id not in list_cache:
                list_cache.insert(desc(object_id, size, penalty, now), now)
                heap_cache.insert(desc(object_id, size, penalty, now), now)
            now += 1.0
        for probe_size in (5, 150, 390, 500):
            a = list_cache.cost_loss(999, probe_size, now)
            b = heap_cache.cost_loss(999, probe_size, now)
            if a is None or b is None:
                assert a == b
            else:
                assert a == pytest.approx(b)
