"""Serve-side distributed tracing: the two binding contracts.

**Bit-identical when on**: a traced sequential replay reproduces the
untraced run's metrics exactly -- spans only observe -- which, chained
with the existing simulator oracle, pins traced serving to the
simulator too.  **Faithful**: reconstructed span trees match the frame
path hop for hop, including the ``skipped`` indices of failover under
injected faults, across process boundaries in a sharded cluster, and
under ingress sampling (a sampled trace is complete or absent, never a
fragment).

The zero-overhead-when-off half of the contract is enforced by
``test_serve_cluster.py`` / ``test_serve_shard.py`` passing unmodified:
an untraced node runs the exact pre-tracing code path.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.faults import FaultInjector, FaultPlan, FaultyTransport, NodeFault
from repro.obs import read_trace_events, reconstruct_traces
from repro.serve import (
    Cluster,
    ClusterClient,
    InProcessTransport,
    LoadGenerator,
    ResilienceConfig,
    RetryPolicy,
    ShardedCluster,
    TCPTransport,
    TracingConfig,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=80,
    num_servers=3,
    num_clients=10,
    num_requests=400,
    zipf_theta=0.8,
    seed=7,
)
CONFIG = SimulationConfig(relative_cache_size=0.01)
FAST_RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(
        attempts=3, backoff_base=0.0005, backoff_max=0.002, jitter=0.5
    )
)


@pytest.fixture(scope="module")
def scenario():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    return build_architecture("hierarchical", WORKLOAD, seed=4), trace, (
        generator.catalog
    )


def run(coro, timeout=120.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


def replay_inprocess(arch, catalog, trace, tracing=None, transport=None,
                     resilience=None):
    """One sequential in-process replay; returns (report, cluster)."""

    async def scenario():
        cluster = Cluster.build(
            arch,
            catalog,
            "coordinated",
            config=CONFIG,
            transport=transport if transport is not None else (
                InProcessTransport()
            ),
            resilience=resilience,
            tracing=tracing,
        )
        await cluster.start()
        loadgen = LoadGenerator(
            cluster, trace, warmup_fraction=CONFIG.warmup_fraction
        )
        report = await loadgen.run(mode="sequential")
        await cluster.stop()
        return report

    return run(scenario())


def assert_tree_matches_frame_path(tree):
    """One reconstructed walk == the frame path, hop for hop.

    Every executed hop has exactly one span; the union of executed and
    skipped indices is the contiguous prefix of the path up to the
    serving hop; parent links follow the forwarding chain.
    """
    walks = tree.walk_spans()
    assert len(tree.roots) == 1, tree.format()
    root = tree.roots[0]
    assert root.index == 0 and root.path, tree.format()
    hit = tree.hit_index()
    assert hit is not None
    executed = [span.index for span in walks]
    assert sorted(executed + tree.skipped_indices()) == list(range(hit + 1))
    # Node per executed hop agrees with the recorded path.
    for span in walks:
        assert span.node == root.path[span.index]
    # Parent links: each hop's parent is the previous executed hop.
    by_id = {span.span_id: span for span in walks}
    for span in walks:
        if span.parent_id is None:
            assert span is root
        else:
            assert by_id[span.parent_id].index < span.index


class TestTracedEqualsUntraced:
    def test_bit_identical_metrics_and_faithful_trees(self, scenario, tmp_path):
        arch, trace, catalog = scenario
        baseline = replay_inprocess(arch, catalog, trace)
        trace_file = tmp_path / "spans.jsonl"
        traced = replay_inprocess(
            arch, catalog, trace, tracing=TracingConfig(path=trace_file)
        )

        # The whole MetricsSummary, exactly: spans only observe.
        assert traced.summary == baseline.summary
        assert traced.requests_measured == baseline.requests_measured
        assert traced.cache_served == baseline.cache_served
        assert traced.errors == 0

        events = list(read_trace_events(trace_file))
        assert events and all(e["kind"] == "span" for e in events)
        trees = reconstruct_traces(events)
        walk_trees = [
            t for t in trees.values() if not t.trace_id.startswith("tinv.")
        ]
        # Every request walked exactly one complete trace.
        assert len(walk_trees) == traced.requests_total
        for tree in walk_trees:
            assert_tree_matches_frame_path(tree)
            assert tree.total_failovers() == 0
            assert tree.skipped_indices() == []
        # Cache/origin split recomputed from spans alone matches the report.
        origin_hits = sum(
            1
            for tree in walk_trees
            if tree.hit_index() == len(tree.roots[0].path) - 1
        )
        assert origin_hits == traced.origin_served
        # Scheme-step and wall timings landed on the serving hops.
        served = [t.walk_spans()[-1] for t in walk_trees]
        assert all(s.wall is not None and s.wall >= 0 for s in served)
        assert any(s.lookup is not None for s in served)
        assert any(s.decide is not None for s in served)

    def test_invalidations_are_traced(self, scenario, tmp_path):
        arch, trace, catalog = scenario
        trace_file = tmp_path / "spans.jsonl"

        async def scenario_run():
            cluster = Cluster.build(
                arch,
                catalog,
                "coordinated",
                config=CONFIG,
                tracing=TracingConfig(path=trace_file),
            )
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace)
            await loadgen.run(mode="sequential")
            removed = await cluster.invalidate(trace[0].object_id)
            await cluster.stop()
            return removed

        run(scenario_run())
        trees = reconstruct_traces(read_trace_events(trace_file))
        inv_trees = [
            t for t in trees.values() if t.trace_id.startswith("tinv.")
        ]
        assert len(inv_trees) == 1
        (tree,) = inv_trees
        # One flat span per cache node of the broadcast (the origin is
        # authoritative and outside the coherency plane).
        assert tree.span_count == len(arch.cache_nodes)
        assert all(s.op == "inv" for s in tree.spans)
        assert len(tree.roots) == tree.span_count

    def test_ingress_sampling_keeps_traces_complete(self, scenario, tmp_path):
        arch, trace, catalog = scenario
        trace_file = tmp_path / "spans.jsonl"
        traced = replay_inprocess(
            arch,
            catalog,
            trace,
            tracing=TracingConfig(path=trace_file, sample_every=5),
        )
        trees = [
            t
            for t in reconstruct_traces(read_trace_events(trace_file)).values()
            if not t.trace_id.startswith("tinv.")
        ]
        # A fifth of the walks traced -- and each one is a complete tree,
        # because the sampling decision is taken once, at ingress.
        assert 0 < len(trees) < traced.requests_total
        assert len(trees) == -(-traced.requests_total // 5)
        for tree in trees:
            assert_tree_matches_frame_path(tree)


class TestFailoverTracing:
    def test_skipped_hops_recorded(self, scenario, tmp_path):
        """Acceptance gate: under a crashed interior node, reconstructed
        trees still match the frame path, with the dead hop in
        ``skipped`` instead of the visited chain."""
        arch, trace, catalog = scenario
        interior = {
            node
            for record in trace.records
            for node in arch.request_path(record.client_id, record.server_id)[
                1:-1
            ]
        }
        ingress = set(arch.client_nodes.values())
        victims = sorted(
            interior
            - ingress
            - {
                arch.request_path(r.client_id, r.server_id)[-1]
                for r in trace.records
            }
        )
        assert victims, "no crashable interior node in this topology"
        victim = victims[0]
        plan = FaultPlan(
            seed=13, nodes=(NodeFault(node=victim, kind="crash"),)
        )
        trace_file = tmp_path / "spans.jsonl"
        report = replay_inprocess(
            arch,
            catalog,
            trace,
            tracing=TracingConfig(path=trace_file),
            transport=FaultyTransport(InProcessTransport(), FaultInjector(plan)),
            resilience=FAST_RESILIENCE,
        )
        assert report.errors == 0
        trees = [
            t
            for t in reconstruct_traces(read_trace_events(trace_file)).values()
            if not t.trace_id.startswith("tinv.")
        ]
        assert len(trees) == report.requests_total
        touched = 0
        for tree in trees:
            assert_tree_matches_frame_path(tree)
            path = tree.roots[0].path
            if victim in path[1:-1]:
                index = path.index(victim)
                if index <= tree.hit_index():
                    touched += 1
                    # The dead node never ran, so it has no span...
                    assert victim not in tree.nodes_visited()
                    # ...and the surviving hop recorded the bypass.
                    assert index in tree.skipped_indices()
                    assert tree.total_failovers() >= 1
        assert touched > 0, "victim never sat on a served prefix"
        # Retries the resilience layer burned are attributed to spans.
        assert sum(t.total_retries() for t in trees) > 0


class TestShardedTracing:
    def test_two_shard_trace_covers_both_processes(self, scenario, tmp_path):
        arch, trace, catalog = scenario
        cost_model = LatencyCostModel(arch.network, catalog.mean_size)
        capacity = CONFIG.capacity_bytes(catalog.total_bytes)
        dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
        sim = SimulationEngine(
            arch,
            cost_model,
            build_scheme("coordinated", cost_model, capacity, dcache),
            warmup_fraction=CONFIG.warmup_fraction,
        ).run(trace)

        base = tmp_path / "trace.jsonl"
        cluster = ShardedCluster(
            arch,
            catalog,
            "coordinated",
            num_shards=2,
            config=CONFIG,
            trace_path=str(base),
        )
        addresses = cluster.start()
        try:

            async def drive():
                client = ClusterClient(
                    arch, cost_model, addresses, TCPTransport()
                )
                loadgen = LoadGenerator(
                    client, trace, warmup_fraction=CONFIG.warmup_fraction
                )
                try:
                    return await loadgen.run(mode="sequential")
                finally:
                    await client.close()

            report = run(drive())
        finally:
            cluster.stop()

        # Bit-identical when on, across process boundaries too.
        assert report.errors == 0
        assert report.summary.hit_ratio == sim.summary.hit_ratio
        assert report.summary.mean_latency == sim.summary.mean_latency

        paths = cluster.trace_paths()
        assert len(paths) == 2 and not base.exists()
        events = [e for p in paths for e in read_trace_events(p)]
        trees = [
            t
            for t in reconstruct_traces(events).values()
            if not t.trace_id.startswith("tinv.")
        ]
        assert len(trees) == report.requests_total
        for tree in trees:
            assert_tree_matches_frame_path(tree)
        # At least one walk executed spans on both shard processes, and
        # its hop below the boundary is flagged as the crossing.
        cross = [t for t in trees if len(t.shards()) >= 2]
        assert cross, "no trace crossed the shard boundary"
        assert any(
            span.crossed_shard for t in cross for span in t.walk_spans()
        )
        # Ids minted by independent processes never collide.
        span_ids = [e["span"] for e in events]
        assert len(span_ids) == len(set(span_ids))
