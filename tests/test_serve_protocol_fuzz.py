"""Fuzz/property tests for the incremental frame decoder.

Seeded stdlib ``random`` (reproducible, no extra dependency) drives
hundreds of adversarial byte streams through :class:`FrameDecoder`:

* **Split invariance** -- any chunking of a valid frame stream, down to
  byte-at-a-time feeding, yields exactly the original messages in order,
  ending at a boundary.
* **Truncation** -- cutting a valid stream at any byte offset never
  hangs, never over-reads, and never fabricates a message: either the
  cut lands on a frame boundary (``finish()`` passes) or
  ``finish()``/``feed`` raises :class:`ProtocolError`.
* **Flipped length prefixes** -- corrupting a frame's length header
  either raises (zero / over-limit length) or mis-frames into payload
  bytes that fail JSON validation; the decoder must reject rather than
  return garbage silently, and must not buffer past the declared limit.
* **Random garbage** -- arbitrary byte soup must raise or stay pending,
  never loop or emit a message not encoded by :func:`encode_frame`.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.protocol import (
    HEADER_BYTES,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)

NUM_CASES = 60


def _random_message(rng: random.Random) -> dict:
    """A protocol-shaped message with assorted JSON payload types."""
    message = {"type": rng.choice(["get", "fwd", "resp", "ping"])}
    for k in range(rng.randrange(0, 5)):
        key = f"k{k}"
        message[key] = rng.choice(
            [
                rng.randrange(-(10**6), 10**6),
                rng.random() * 1e3,
                "x" * rng.randrange(0, 40),
                None,
                [rng.randrange(100) for _ in range(rng.randrange(4))],
                {"n": rng.randrange(100)},
            ]
        )
    return message


def _random_stream(rng: random.Random) -> tuple[bytes, list[dict]]:
    messages = [_random_message(rng) for _ in range(rng.randrange(1, 6))]
    return b"".join(encode_frame(m) for m in messages), messages


def _random_chunks(rng: random.Random, data: bytes) -> list[bytes]:
    chunks = []
    position = 0
    while position < len(data):
        step = rng.randrange(1, max(2, len(data) // 3))
        chunks.append(data[position : position + step])
        position += step
    return chunks


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_any_chunking_reproduces_the_stream(seed):
    rng = random.Random(seed)
    data, messages = _random_stream(rng)
    decoder = FrameDecoder()
    decoded = []
    for chunk in _random_chunks(rng, data):
        decoded.extend(decoder.feed(chunk))
    assert decoded == messages
    assert decoder.at_boundary
    decoder.finish()  # must not raise at a boundary


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_byte_at_a_time_feeding(seed):
    rng = random.Random(1000 + seed)
    data, messages = _random_stream(rng)
    decoder = FrameDecoder()
    decoded = []
    for offset in range(len(data)):
        decoded.extend(decoder.feed(data[offset : offset + 1]))
    assert decoded == messages
    decoder.finish()


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_truncation_never_fabricates_messages(seed):
    rng = random.Random(2000 + seed)
    data, messages = _random_stream(rng)
    cut = rng.randrange(0, len(data))
    decoder = FrameDecoder()
    decoded = decoder.feed(data[:cut])
    # Only full frames may come out; a truncated tail is pending, never
    # a message.
    assert decoded == messages[: len(decoded)]
    if decoder.at_boundary:
        decoder.finish()
        assert decoded == [
            m for m, end in zip(messages, _frame_ends(messages)) if end <= cut
        ]
    else:
        with pytest.raises(ProtocolError):
            decoder.finish()


def _frame_ends(messages):
    ends = []
    position = 0
    for message in messages:
        position += len(encode_frame(message))
        ends.append(position)
    return ends


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_flipped_length_prefix_is_rejected_or_reframed(seed):
    """Corrupting the header must never hang, over-read, or emit garbage.

    Three legal outcomes: ProtocolError (bad length or mis-framed
    payload fails JSON validation), fewer messages than sent (the stream
    stays pending an impossibly long frame), or -- vanishingly rare --
    a reframing that still parses; it must then still be a dict with a
    string type, i.e. something ``decode_payload`` accepts.
    """
    rng = random.Random(3000 + seed)
    data, messages = _random_stream(rng)
    corrupted = bytearray(data)
    # Flip one byte inside some frame's 4-byte length prefix.
    starts = [end - len(encode_frame(m)) for m, end in
              zip(messages, _frame_ends(messages))]
    target = rng.choice(starts) + rng.randrange(HEADER_BYTES)
    corrupted[target] ^= 1 << rng.randrange(8)
    if bytes(corrupted) == data:
        return  # flip landed back on itself (cannot happen with xor, but guard)
    decoder = FrameDecoder(max_frame_bytes=1 << 16)
    decoded = []
    try:
        decoded.extend(decoder.feed(bytes(corrupted)))
        if not decoder.at_boundary:
            with pytest.raises(ProtocolError):
                decoder.finish()
    except ProtocolError:
        return
    for message in decoded:
        assert isinstance(message, dict)
        assert isinstance(message.get("type"), str)


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_random_garbage_never_hangs_or_overreads(seed):
    rng = random.Random(4000 + seed)
    garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
    decoder = FrameDecoder(max_frame_bytes=1 << 12)
    try:
        messages = decoder.feed(garbage)
    except ProtocolError:
        return
    # No exception: everything decoded must be a valid protocol message
    # and the decoder must not be holding more than one declared frame.
    for message in messages:
        assert isinstance(message.get("type"), str)
    assert len(decoder._buffer) <= HEADER_BYTES + (1 << 12)


def test_zero_length_frame_raises():
    decoder = FrameDecoder()
    with pytest.raises(ProtocolError):
        decoder.feed(b"\x00\x00\x00\x00")


def test_over_limit_length_raises_before_buffering_payload():
    decoder = FrameDecoder(max_frame_bytes=16)
    with pytest.raises(ProtocolError):
        decoder.feed(b"\x00\x00\x00\x20")
