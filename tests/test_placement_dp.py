"""Tests for the k-optimization dynamic program (paper section 2.2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    PlacementProblem,
    brute_force_placement,
    enforce_monotone_frequencies,
    greedy_placement,
    solve_placement,
)
from repro.schemes.costaware import single_copy_placement


def make_problem(freqs, penalties, losses) -> PlacementProblem:
    return PlacementProblem(tuple(freqs), tuple(penalties), tuple(losses))


class TestProblemValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_problem([], [], [])

    def test_rejects_misaligned_lengths(self):
        with pytest.raises(ValueError):
            make_problem([1.0, 0.5], [1.0], [0.0, 0.0])

    def test_rejects_increasing_frequencies(self):
        with pytest.raises(ValueError, match="non-increasing"):
            make_problem([1.0, 2.0], [1.0, 1.0], [0.0, 0.0])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            make_problem([-1.0], [1.0], [0.0])
        with pytest.raises(ValueError):
            make_problem([1.0], [-1.0], [0.0])
        with pytest.raises(ValueError):
            make_problem([1.0], [1.0], [-0.1])

    def test_objective_rejects_unsorted_indices(self):
        problem = make_problem([2.0, 1.0], [1.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            problem.objective([1, 0])

    def test_objective_rejects_duplicates(self):
        problem = make_problem([2.0, 1.0], [1.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            problem.objective([0, 0])

    def test_objective_rejects_out_of_range(self):
        problem = make_problem([2.0, 1.0], [1.0, 1.0], [0.0, 0.0])
        with pytest.raises(IndexError):
            problem.objective([2])


class TestObjective:
    def test_empty_selection_is_zero(self):
        problem = make_problem([2.0, 1.0], [1.0, 1.0], [0.5, 0.5])
        assert problem.objective([]) == 0.0

    def test_single_node_formula(self):
        # Delta-cost({i}) = f_i * m_i - l_i (f_{r+1} = 0).
        problem = make_problem([3.0, 2.0], [1.5, 4.0], [0.5, 1.0])
        assert problem.objective([0]) == pytest.approx(3.0 * 1.5 - 0.5)
        assert problem.objective([1]) == pytest.approx(2.0 * 4.0 - 1.0)

    def test_two_node_caching_dependency(self):
        # Caching downstream shields the upstream copy: the upstream term
        # uses (f_v1 - f_v2), not f_v1.
        problem = make_problem([3.0, 2.0], [1.0, 2.0], [0.0, 0.0])
        expected = (3.0 - 2.0) * 1.0 + 2.0 * 2.0
        assert problem.objective([0, 1]) == pytest.approx(expected)


class TestSolvePlacement:
    def test_all_losses_prohibitive_yields_empty(self):
        problem = make_problem([1.0, 0.5], [1.0, 1.0], [10.0, 10.0])
        solution = solve_placement(problem)
        assert solution.indices == ()
        assert solution.gain == 0.0

    def test_single_beneficial_node(self):
        problem = make_problem([2.0], [3.0], [1.0])
        solution = solve_placement(problem)
        assert solution.indices == (0,)
        assert solution.gain == pytest.approx(5.0)

    def test_prefers_high_gain_node(self):
        # Node 1 alone gives 2*5-0=10; node 0 alone 3*1=3; both:
        # (3-2)*1 + 2*5 = 11.
        problem = make_problem([3.0, 2.0], [1.0, 5.0], [0.0, 0.0])
        solution = solve_placement(problem)
        assert solution.indices == (0, 1)
        assert solution.gain == pytest.approx(11.0)

    def test_skips_locally_harmful_node(self):
        # Theorem 2: a node with f*m < l can never be in the optimum.
        problem = make_problem([3.0, 2.0, 1.0], [1.0, 1.0, 4.0], [0.0, 5.0, 0.0])
        solution = solve_placement(problem)
        assert 1 not in solution.indices

    def test_zero_frequencies_yield_empty(self):
        problem = make_problem([0.0, 0.0], [5.0, 5.0], [0.0, 0.0])
        solution = solve_placement(problem)
        assert solution.indices == ()

    def test_free_caching_everywhere_when_lossless(self):
        # With zero losses and penalties growing towards the client,
        # caching at every node is uniquely optimal: each downstream copy
        # adds (f_i - f_{i+1}) * m_i > 0 on top of shielding upstream ones.
        problem = make_problem(
            [4.0, 3.0, 2.0, 1.0], [1.0, 2.0, 3.0, 4.0], [0.0] * 4
        )
        solution = solve_placement(problem)
        assert solution.indices == (0, 1, 2, 3)
        assert solution.gain == pytest.approx(1 * 1 + 1 * 2 + 1 * 3 + 1 * 4)

    def test_gain_matches_objective_of_indices(self):
        problem = make_problem(
            [5.0, 4.0, 2.5, 1.0], [0.5, 1.0, 2.0, 4.0], [0.6, 0.3, 1.5, 0.2]
        )
        solution = solve_placement(problem)
        assert solution.gain == pytest.approx(problem.objective(solution.indices))

    def test_matches_brute_force_on_fixed_cases(self):
        cases = [
            ([1.0], [1.0], [0.5]),
            ([2.0, 2.0], [1.0, 1.0], [0.0, 3.0]),
            ([9.0, 7.0, 7.0, 3.0, 1.0], [1, 2, 1, 5, 9], [2, 0, 3, 4, 1]),
            ([5.0, 5.0, 5.0], [2.0, 2.0, 2.0], [1.0, 1.0, 1.0]),
        ]
        for freqs, penalties, losses in cases:
            problem = make_problem(
                freqs, [float(p) for p in penalties], [float(l) for l in losses]
            )
            dp = solve_placement(problem)
            bf = brute_force_placement(problem)
            assert dp.gain == pytest.approx(bf.gain), (freqs, penalties, losses)

    def test_indices_strictly_increasing(self):
        problem = make_problem(
            [8.0, 6.0, 5.0, 2.0], [1.0, 3.0, 0.5, 6.0], [0.1] * 4
        )
        solution = solve_placement(problem)
        assert list(solution.indices) == sorted(set(solution.indices))


@st.composite
def placement_problems(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    raw = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    freqs = sorted(raw, reverse=True)
    penalties = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=n, max_size=n
        )
    )
    losses = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=200.0), min_size=n, max_size=n
        )
    )
    return make_problem(freqs, penalties, losses)


class TestDPProperties:
    @given(placement_problems())
    @settings(max_examples=300, deadline=None)
    def test_dp_equals_brute_force(self, problem):
        dp = solve_placement(problem)
        bf = brute_force_placement(problem)
        assert math.isclose(dp.gain, bf.gain, rel_tol=1e-9, abs_tol=1e-6)

    @given(placement_problems())
    @settings(max_examples=200, deadline=None)
    def test_gain_is_nonnegative_and_consistent(self, problem):
        solution = solve_placement(problem)
        assert solution.gain >= 0.0
        assert math.isclose(
            solution.gain,
            problem.objective(solution.indices),
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    @given(placement_problems())
    @settings(max_examples=200, deadline=None)
    def test_theorem2_local_benefit(self, problem):
        """Every selected node satisfies f_v * m_v >= l_v (paper Theorem 2)."""
        solution = solve_placement(problem)
        for index in solution.indices:
            benefit = problem.frequencies[index] * problem.penalties[index]
            assert benefit >= problem.losses[index] - 1e-6


class TestApproximateSolvers:
    """Greedy and single-copy placement against the exact DP."""

    def test_method_tags_and_is_exact(self):
        problem = make_problem([5.0, 3.0, 1.0], [2.0, 4.0, 8.0], [1.0] * 3)
        assert solve_placement(problem).method == "dp"
        assert solve_placement(problem).is_exact
        assert greedy_placement(problem).method == "greedy"
        assert not greedy_placement(problem).is_exact
        assert single_copy_placement(problem).method == "single"
        assert not single_copy_placement(problem).is_exact

    def test_method_excluded_from_equality(self):
        """Tagging the solver must not break solution comparisons."""
        a = solve_placement(
            make_problem([5.0, 3.0, 1.0], [2.0, 4.0, 8.0], [1.0] * 3)
        )
        from repro.core.placement import PlacementSolution

        b = PlacementSolution(indices=a.indices, gain=a.gain, method="greedy")
        assert a == b

    def test_single_copy_places_at_most_one(self):
        problem = make_problem(
            [8.0, 6.0, 5.0, 2.0], [1.0, 3.0, 0.5, 6.0], [0.1] * 4
        )
        solution = single_copy_placement(problem)
        assert len(solution.indices) <= 1
        assert solution.gain == pytest.approx(
            max(
                0.0,
                max(
                    problem.objective((i,))
                    for i in range(problem.num_nodes)
                ),
            )
        )

    def test_single_copy_caches_less_when_nothing_pays(self):
        """Araldo's rule: no copy at all when no position pays for its
        eviction loss ('cache less for more')."""
        problem = make_problem([1.0, 0.5], [0.1, 0.1], [100.0, 100.0])
        solution = single_copy_placement(problem)
        assert solution.indices == ()
        assert solution.gain == 0.0

    @given(placement_problems())
    @settings(max_examples=200, deadline=None)
    def test_greedy_never_exceeds_dp(self, problem):
        dp = solve_placement(problem)
        greedy = greedy_placement(problem)
        assert greedy.gain <= dp.gain + 1e-6
        assert greedy.gain >= 0.0
        assert math.isclose(
            greedy.gain,
            problem.objective(greedy.indices),
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    @given(placement_problems())
    @settings(max_examples=200, deadline=None)
    def test_single_copy_never_exceeds_dp(self, problem):
        dp = solve_placement(problem)
        single = single_copy_placement(problem)
        assert single.gain <= dp.gain + 1e-6
        assert math.isclose(
            single.gain,
            problem.objective(single.indices) if single.indices else 0.0,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    @given(placement_problems())
    @settings(max_examples=100, deadline=None)
    def test_approximate_solvers_deterministic(self, problem):
        assert greedy_placement(problem) == greedy_placement(problem)
        assert single_copy_placement(problem) == single_copy_placement(problem)

    def test_greedy_indices_sorted_and_unique(self):
        problem = make_problem(
            [8.0, 6.0, 5.0, 2.0], [1.0, 3.0, 0.5, 6.0], [0.1] * 4
        )
        solution = greedy_placement(problem)
        assert list(solution.indices) == sorted(set(solution.indices))


class TestEnforceMonotone:
    def test_already_monotone_unchanged(self):
        assert enforce_monotone_frequencies([3.0, 2.0, 1.0]) == [3.0, 2.0, 1.0]

    def test_repairs_violations_with_running_max(self):
        assert enforce_monotone_frequencies([1.0, 5.0, 2.0]) == [5.0, 5.0, 2.0]

    def test_clamps_negative_to_zero(self):
        assert enforce_monotone_frequencies([-1.0, -2.0]) == [0.0, 0.0]

    def test_empty_input(self):
        assert enforce_monotone_frequencies([]) == []

    @given(
        st.lists(st.floats(min_value=-10, max_value=1e6), max_size=30)
    )
    def test_output_is_monotone_and_pointwise_ge(self, values):
        repaired = enforce_monotone_frequencies(values)
        assert all(a >= b for a, b in zip(repaired, repaired[1:]))
        assert all(r >= min(v, 0.0) or r >= 0.0 for r, v in zip(repaired, values))
        assert all(r >= v or v < 0 for r, v in zip(repaired, values))
