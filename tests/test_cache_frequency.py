"""Tests for the sliding-window frequency estimator (paper section 3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.frequency import SlidingWindowFrequencyEstimator


class TestValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowFrequencyEstimator(window=0)

    def test_rejects_bad_aging_interval(self):
        with pytest.raises(ValueError):
            SlidingWindowFrequencyEstimator(aging_interval=0.0)

    def test_rejects_time_going_backwards(self):
        est = SlidingWindowFrequencyEstimator()
        est.record(10.0)
        with pytest.raises(ValueError):
            est.record(5.0)


class TestEstimation:
    def test_empty_estimator_is_zero(self):
        est = SlidingWindowFrequencyEstimator()
        assert est.value(100.0) == 0.0
        assert est.reference_count == 0

    def test_formula_with_full_window(self):
        # f = K' / (t - t_K'): 3 references at 0, 10, 20 -> at t=20,
        # f = 3 / 20.
        est = SlidingWindowFrequencyEstimator(window=3)
        est.record(0.0)
        est.record(10.0)
        f = est.record(20.0)
        assert f == pytest.approx(3 / 20)

    def test_window_drops_oldest(self):
        est = SlidingWindowFrequencyEstimator(window=2)
        est.record(0.0)
        est.record(10.0)
        f = est.record(20.0)  # window now [10, 20]
        assert f == pytest.approx(2 / 10)
        assert est.reference_count == 2

    def test_singleton_zero_elapsed_uses_prior(self):
        est = SlidingWindowFrequencyEstimator(aging_interval=600.0)
        f = est.record(5.0)
        assert f == pytest.approx(1 / 600.0)

    def test_lazy_aging_refresh(self):
        est = SlidingWindowFrequencyEstimator(window=3, aging_interval=100.0)
        est.record(0.0)
        est.record(10.0)
        # Within the aging interval the cached value is returned.
        cached = est.value(50.0)
        assert cached == est.peek()
        # Far beyond the interval, the estimate decays.
        decayed = est.value(1000.0)
        assert decayed == pytest.approx(2 / 1000)
        assert decayed < cached

    def test_value_does_not_refresh_before_interval(self):
        est = SlidingWindowFrequencyEstimator(window=3, aging_interval=1000.0)
        est.record(0.0)
        est.record(10.0)
        before = est.peek()
        est.value(500.0)  # < aging interval since last refresh at t=10
        assert est.peek() == before

    def test_clone_is_independent(self):
        est = SlidingWindowFrequencyEstimator(window=3)
        est.record(0.0)
        est.record(5.0)
        copy = est.clone()
        assert copy.value(5.0) == est.value(5.0)
        copy.record(6.0)
        assert copy.reference_count == 3
        assert est.reference_count == 2


class TestProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_estimate_always_nonnegative_and_finite(self, raw_times):
        times = sorted(raw_times)
        est = SlidingWindowFrequencyEstimator(window=3)
        for t in times:
            f = est.record(t)
            assert f >= 0.0
            assert f < float("inf")

    @given(st.integers(min_value=1, max_value=10))
    def test_reference_count_never_exceeds_window(self, window):
        est = SlidingWindowFrequencyEstimator(window=window)
        for i in range(50):
            est.record(float(i))
        assert est.reference_count == min(50, window)
