"""Tests for the multi-seed robustness runner."""

from __future__ import annotations

import pytest

from repro.experiments.presets import ExperimentPreset
from repro.experiments.robustness import run_robustness
from repro.workload.generator import WorkloadConfig

PRESET = ExperimentPreset(
    name="mini",
    workload=WorkloadConfig(
        num_objects=80,
        num_servers=4,
        num_clients=10,
        num_requests=2_500,
        zipf_theta=0.8,
    ),
)


@pytest.fixture(scope="module")
def result():
    return run_robustness(
        PRESET,
        "hierarchical",
        scheme_names=("lru", "coordinated"),
        seeds=(1, 2, 3),
        relative_cache_size=0.05,
    )


class TestRunRobustness:
    def test_sample_shape(self, result):
        assert result.num_seeds == 3
        assert set(result.samples) == {"lru", "coordinated"}
        assert all(len(v) == 3 for v in result.samples.values())

    def test_statistics(self, result):
        for scheme in ("lru", "coordinated"):
            assert result.mean(scheme) > 0
            assert result.std(scheme) >= 0

    def test_wins_counting(self, result):
        wins = result.wins("coordinated", "lru")
        losses = result.wins("lru", "coordinated")
        assert wins + losses <= 3
        assert wins >= 2  # coordinated should win on most seeds

    def test_format_table(self, result):
        text = result.format_table()
        assert "latency on hierarchical over 3 seeds" in text
        assert "coordinated" in text

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_robustness(
                PRESET, "hierarchical", ("lru",), seeds=(),
                relative_cache_size=0.05,
            )

    def test_different_metrics(self):
        result = run_robustness(
            PRESET,
            "hierarchical",
            scheme_names=("lru",),
            seeds=(4,),
            relative_cache_size=0.05,
            metric="byte_hit_ratio",
        )
        assert 0 <= result.mean("lru") <= 1
