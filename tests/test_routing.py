"""Tests for Dijkstra and distribution trees."""

from __future__ import annotations

import math

import pytest

from repro.routing.distribution_tree import DistributionTree, RoutingTable
from repro.routing.shortest_path import dijkstra
from repro.topology.builder import build_chain, build_star
from repro.topology.graph import Network, NodeKind
from repro.topology.tiers import TiersConfig, TiersTopologyGenerator


class TestDijkstra:
    def test_chain_distances(self):
        net = build_chain([1.0, 2.0, 3.0])
        dist, parent = dijkstra(net, 0)
        assert dist == [0.0, 1.0, 3.0, 6.0]
        assert parent == [-1, 0, 1, 2]

    def test_picks_shorter_of_two_routes(self):
        net = Network()
        for _ in range(3):
            net.add_node(NodeKind.MAN)
        net.add_link(0, 1, 10.0)
        net.add_link(0, 2, 1.0)
        net.add_link(2, 1, 1.0)
        dist, parent = dijkstra(net, 0)
        assert dist[1] == pytest.approx(2.0)
        assert parent[1] == 2

    def test_unreachable_nodes_are_inf(self):
        net = Network()
        net.add_node(NodeKind.MAN)
        net.add_node(NodeKind.MAN)
        dist, parent = dijkstra(net, 0)
        assert math.isinf(dist[1])
        assert parent[1] == -1

    def test_unknown_source_raises(self):
        net = build_chain([1.0])
        with pytest.raises(KeyError):
            dijkstra(net, 9)


class TestDistributionTree:
    def test_path_to_root(self):
        net = build_chain([1.0, 1.0, 1.0])
        tree = DistributionTree(net, root=3)
        assert tree.path_to_root(0) == [0, 1, 2, 3]
        assert tree.path_to_root(3) == [3]
        assert tree.depth(0) == 3
        assert tree.depth(3) == 0

    def test_distance_matches_delay_sum(self):
        net = build_chain([1.0, 2.0, 4.0])
        tree = DistributionTree(net, root=3)
        assert tree.distance(0) == pytest.approx(7.0)

    def test_path_memoization_returns_same_object(self):
        net = build_chain([1.0, 1.0])
        tree = DistributionTree(net, root=2)
        assert tree.path_to_root(0) is tree.path_to_root(0)

    def test_unreachable_raises(self):
        net = Network()
        net.add_node(NodeKind.MAN)
        net.add_node(NodeKind.MAN)
        tree = DistributionTree(net, root=0)
        assert not tree.is_reachable(1)
        with pytest.raises(ValueError):
            tree.path_to_root(1)

    def test_paths_form_tree(self):
        """Every node has a single parent: paths are suffix-consistent."""
        net = TiersTopologyGenerator(TiersConfig(seed=4)).generate()
        tree = DistributionTree(net, root=0)
        for node in net.nodes():
            path = tree.path_to_root(node)
            assert path[0] == node
            assert path[-1] == 0
            # Consecutive path nodes must be linked.
            for u, v in zip(path, path[1:]):
                assert net.has_link(u, v)
            # The parent's path is this path minus the first hop.
            if len(path) > 1:
                assert tree.path_to_root(path[1]) == path[1:]


class TestRoutingTable:
    def test_trees_are_memoized_by_root(self):
        net = build_chain([1.0, 1.0])
        table = RoutingTable(net)
        assert table.tree(2) is table.tree(2)

    def test_request_path(self):
        net = build_star([1.0, 2.0])
        table = RoutingTable(net)
        assert table.request_path(1, 2) == [1, 0, 2]

    def test_mean_path_hops(self):
        net = build_chain([1.0, 1.0, 1.0])
        table = RoutingTable(net)
        # Clients at 0 and 1, server at 3: depths 3 and 2.
        assert table.mean_path_hops([0, 1], [3]) == pytest.approx(2.5)

    def test_mean_path_hops_requires_populations(self):
        table = RoutingTable(build_chain([1.0]))
        with pytest.raises(ValueError):
            table.mean_path_hops([], [0])
