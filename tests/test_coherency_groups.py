"""Invalidation groups and group-targeted update streams."""

from __future__ import annotations

import hashlib

import pytest

from repro.workload.groups import GroupAssignment
from repro.workload.updates import (
    GroupUpdateEvent,
    expand_group_events,
    generate_group_update_events,
    generate_update_events,
)


class TestGroupAssignment:
    def test_per_object_is_identity(self):
        groups = GroupAssignment.per_object(5)
        assert groups.group_count == 5
        assert [groups.group_of(i) for i in range(5)] == [0, 1, 2, 3, 4]
        assert groups.members(3) == (3,)
        assert groups.params.get("per_object") is True

    def test_generate_covers_every_object(self):
        groups = GroupAssignment.generate(
            num_objects=100, group_count=7, skew=0.8, seed=3
        )
        assert groups.group_count == 7
        seen = []
        for gid in range(7):
            members = groups.members(gid)
            assert list(members) == sorted(members)
            for object_id in members:
                assert groups.group_of(object_id) == gid
            seen.extend(members)
        assert sorted(seen) == list(range(100))
        assert sum(groups.group_sizes().values()) == 100

    def test_generate_deterministic_by_seed(self):
        a = GroupAssignment.generate(100, 7, skew=0.8, seed=3)
        b = GroupAssignment.generate(100, 7, skew=0.8, seed=3)
        c = GroupAssignment.generate(100, 7, skew=0.8, seed=4)
        assert a.group_of_object == b.group_of_object
        assert a.group_of_object != c.group_of_object

    def test_skew_makes_sizes_uneven(self):
        groups = GroupAssignment.generate(500, 10, skew=1.2, seed=0)
        sizes = groups.group_sizes().values()
        assert max(sizes) > min(sizes)

    def test_more_groups_than_objects_rejected(self):
        with pytest.raises(ValueError):
            GroupAssignment.generate(num_objects=3, group_count=4)

    def test_params_round_trip(self):
        for groups in (
            GroupAssignment.per_object(20),
            GroupAssignment.generate(50, 6, skew=0.5, seed=9),
        ):
            rebuilt = GroupAssignment.from_params(groups.params)
            assert rebuilt.group_of_object == groups.group_of_object
            assert rebuilt.group_count == groups.group_count


class TestGroupUpdateEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupUpdateEvent(-1.0, 0)
        with pytest.raises(ValueError):
            GroupUpdateEvent(0.0, -1)
        groups = GroupAssignment.per_object(10)
        with pytest.raises(ValueError):
            generate_group_update_events(groups, -1.0, 1.0)
        with pytest.raises(ValueError):
            generate_group_update_events(groups, 10.0, -1.0)

    def test_stream_shape(self):
        groups = GroupAssignment.generate(100, 8, seed=1)
        events = generate_group_update_events(
            groups, duration=200.0, update_rate=1.0, seed=2
        )
        assert events
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= e.group_id < 8 for e in events)
        again = generate_group_update_events(groups, 200.0, 1.0, seed=2)
        assert events == again

    def test_expand_preserves_time_and_orders_members(self):
        groups = GroupAssignment.generate(30, 3, seed=0)
        events = [GroupUpdateEvent(5.0, 1), GroupUpdateEvent(9.0, 0)]
        expanded = expand_group_events(events, groups)
        assert len(expanded) == len(groups.members(1)) + len(groups.members(0))
        first = [e for e in expanded if e.time == 5.0]
        assert tuple(e.object_id for e in first) == groups.members(1)


class TestPerObjectStreamUnchanged:
    """Golden pin: the group extension must not perturb the original RNG.

    ``generate_update_events`` draws (count, times, targets) in a fixed
    order; any reordering or extra draw would silently shift every
    downstream experiment.  The hash pins the exact stream.
    """

    def test_golden_stream(self):
        events = generate_update_events(
            200, duration=30.0, update_rate=0.9, seed=7
        )
        assert len(events) == 29
        digest = hashlib.sha256(
            repr([(e.time, e.object_id) for e in events]).encode()
        ).hexdigest()
        assert digest == (
            "d2fcd4c669ddc1bdd49b18b5a48b390a"
            "f50db11c726663f8d272e6b5cfa93f10"
        )

    def test_group_generation_same_draw_structure(self):
        """Per-object events == group events over per-object groups."""
        groups = GroupAssignment.per_object(200)
        per_object = generate_update_events(200, 100.0, 0.7, seed=5)
        grouped = generate_group_update_events(groups, 100.0, 0.7, seed=5)
        assert [(e.time, e.object_id) for e in per_object] == [
            (e.time, e.group_id) for e in grouped
        ]
