"""Tests for the analytical companions (tree placement DP, Che approximation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.che import (
    characteristic_time,
    expected_byte_hit_ratio,
    lru_hit_ratios,
)
from repro.analysis.tree_placement import (
    TreePlacementProblem,
    brute_force_tree_placement,
    optimal_tree_placement,
)
from repro.core.placement import PlacementProblem, solve_placement


def chain_problem(link_costs, demands, losses):
    """A chain rooted at node 0: 0 <- 1 <- 2 <- ..."""
    n = len(demands)
    parents = tuple([-1] + list(range(n - 1)))
    return TreePlacementProblem(
        parents=parents,
        link_costs=tuple(link_costs),
        demands=tuple(demands),
        losses=tuple(losses),
    )


class TestProblemValidation:
    def test_requires_single_root(self):
        with pytest.raises(ValueError):
            TreePlacementProblem((0,), (0.0,), (0.0,), (0.0,))
        with pytest.raises(ValueError):
            TreePlacementProblem((-1, -1), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0))

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            TreePlacementProblem(
                (-1, 2, 1), (0.0, 1.0, 1.0), (0.0, 0.0, 0.0), (0.0, 0.0, 0.0)
            )

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            chain_problem([0.0, -1.0], [0.0, 0.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            chain_problem([0.0, 1.0], [0.0, -1.0], [0.0, 0.0])

    def test_total_cost_of_empty_placement(self):
        # Demand 2 at node 2, two unit links up to the root.
        problem = chain_problem([0.0, 1.0, 1.0], [0.0, 0.0, 2.0], [0.0] * 3)
        assert problem.total_cost(set()) == pytest.approx(4.0)
        assert problem.total_cost({1}) == pytest.approx(2.0)
        assert problem.total_cost({2}) == pytest.approx(0.0)


class TestOptimalTreePlacement:
    def test_caches_at_demand_hotspot(self):
        problem = chain_problem([0.0, 1.0, 1.0], [0.0, 0.0, 5.0], [0.5, 0.5, 0.5])
        solution = optimal_tree_placement(problem)
        assert solution.nodes == frozenset({2})
        assert solution.saving == pytest.approx(5.0 * 2 - 0.5)

    def test_empty_when_losses_prohibitive(self):
        problem = chain_problem([0.0, 1.0], [0.0, 1.0], [0.0, 100.0])
        solution = optimal_tree_placement(problem)
        assert solution.nodes == frozenset()
        assert solution.saving == 0.0

    def test_branching_tree(self):
        #       0 (root)
        #      / \
        #     1   2     demands at leaves 3 (under 1) and 4 (under 2)
        #     |   |
        #     3   4
        problem = TreePlacementProblem(
            parents=(-1, 0, 0, 1, 2),
            link_costs=(0.0, 1.0, 1.0, 1.0, 1.0),
            demands=(0.0, 0.0, 0.0, 4.0, 4.0),
            losses=(0.0, 1.0, 1.0, 1.0, 1.0),
        )
        solution = optimal_tree_placement(problem)
        assert solution.nodes == frozenset({3, 4})

    def test_shared_parent_beats_two_leaves_when_losses_high(self):
        # One node serving both leaves is cheaper when leaf losses are big.
        problem = TreePlacementProblem(
            parents=(-1, 0, 1, 1),
            link_costs=(0.0, 5.0, 0.1, 0.1),
            demands=(0.0, 0.0, 3.0, 3.0),
            losses=(0.0, 0.5, 40.0, 40.0),
        )
        solution = optimal_tree_placement(problem)
        assert solution.nodes == frozenset({1})

    def test_matches_brute_force_fixed_cases(self):
        cases = [
            chain_problem([0, 2, 1, 3], [0, 1, 5, 2], [0, 1, 2, 1]),
            TreePlacementProblem(
                parents=(-1, 0, 0, 1, 1, 2, 2),
                link_costs=(0, 1, 2, 1, 3, 2, 1),
                demands=(0, 1, 0, 4, 2, 0, 5),
                losses=(0, 2, 1, 3, 1, 0.5, 2),
            ),
        ]
        for problem in cases:
            dp = optimal_tree_placement(problem)
            bf = brute_force_tree_placement(problem)
            assert dp.saving == pytest.approx(bf.saving)
            assert dp.total_cost == pytest.approx(bf.total_cost)

    def test_solution_cost_matches_objective(self):
        problem = chain_problem([0, 1, 2, 1, 1], [0, 2, 0, 3, 1], [0, 1, 1, 1, 1])
        solution = optimal_tree_placement(problem)
        assert solution.total_cost == pytest.approx(
            problem.total_cost(set(solution.nodes))
        )
        assert solution.saving == pytest.approx(
            problem.total_cost(set()) - solution.total_cost
        )


@st.composite
def random_trees(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    parents = [-1]
    for v in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=v - 1)))
    link_costs = [0.0] + [
        draw(st.floats(min_value=0.0, max_value=10.0)) for _ in range(n - 1)
    ]
    demands = [
        draw(st.floats(min_value=0.0, max_value=10.0)) for _ in range(n)
    ]
    losses = [
        draw(st.floats(min_value=0.0, max_value=30.0)) for _ in range(n)
    ]
    return TreePlacementProblem(
        tuple(parents), tuple(link_costs), tuple(demands), tuple(losses)
    )


class TestTreePlacementProperties:
    @given(random_trees())
    @settings(max_examples=150, deadline=None)
    def test_dp_equals_brute_force(self, problem):
        dp = optimal_tree_placement(problem)
        bf = brute_force_tree_placement(problem)
        assert dp.saving == pytest.approx(bf.saving, abs=1e-6)

    @given(random_trees())
    @settings(max_examples=100, deadline=None)
    def test_saving_nonnegative_and_consistent(self, problem):
        solution = optimal_tree_placement(problem)
        assert solution.saving >= -1e-9
        assert solution.total_cost == pytest.approx(
            problem.total_cost(set(solution.nodes)), abs=1e-6
        )


class TestPathEquivalence:
    def test_chain_tree_matches_path_dp(self):
        """On a chain, the tree DP and the paper's path DP agree.

        Path positions A_1..A_n (server-adjacent first) map to chain
        nodes 1..n below the root; the paper's cumulative frequency f_i
        equals the sum of local demands at positions i..n.
        """
        link_costs = [0.0, 1.0, 2.0, 0.5, 1.5]
        local_demands = [0.0, 1.0, 0.5, 3.0, 0.25]
        losses = [0.0, 0.7, 0.2, 1.1, 0.4]
        tree = chain_problem(link_costs, local_demands, losses)
        tree_solution = optimal_tree_placement(tree)

        n = len(link_costs) - 1
        cumulative = [sum(local_demands[i:]) for i in range(1, n + 1)]
        penalties = [sum(link_costs[1 : i + 1]) for i in range(1, n + 1)]
        path = PlacementProblem(
            frequencies=tuple(cumulative),
            penalties=tuple(penalties),
            losses=tuple(losses[1:]),
        )
        path_solution = solve_placement(path)
        assert tree_solution.saving == pytest.approx(path_solution.gain)
        assert tree_solution.nodes == frozenset(
            i + 1 for i in path_solution.indices
        )


class TestCheApproximation:
    def test_validation(self):
        with pytest.raises(ValueError):
            characteristic_time([], [], 10)
        with pytest.raises(ValueError):
            characteristic_time([1.0], [1.0, 2.0], 10)
        with pytest.raises(ValueError):
            characteristic_time([-1.0], [1.0], 10)
        with pytest.raises(ValueError):
            characteristic_time([1.0], [0.0], 10)

    def test_zero_capacity(self):
        assert characteristic_time([1.0], [10.0], 0.0) == 0.0
        assert expected_byte_hit_ratio([1.0], [10.0], 0.0) == 0.0

    def test_infinite_capacity_hits_everything(self):
        ratios = lru_hit_ratios([1.0, 2.0], [10.0, 10.0], 1000.0)
        assert (ratios == 1.0).all()
        assert expected_byte_hit_ratio([1.0, 2.0], [10.0, 10.0], 1000.0) == 1.0

    def test_characteristic_time_fills_capacity(self):
        rng = np.random.default_rng(0)
        rates = rng.random(100) * 5
        sizes = rng.integers(1, 100, size=100).astype(float)
        capacity = 0.3 * sizes.sum()
        t = characteristic_time(rates, sizes, capacity)
        occupied = np.sum(sizes * -np.expm1(-rates * t))
        assert occupied == pytest.approx(capacity, rel=1e-6)

    def test_hit_ratio_monotone_in_capacity(self):
        rates = 1.0 / np.arange(1, 51)
        sizes = np.full(50, 10.0)
        ratios = [
            expected_byte_hit_ratio(rates, sizes, c) for c in (50, 150, 400)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_matches_simulated_lru_cache(self):
        """Simulated single-LRU byte hit ratio ~= Che prediction."""
        from repro.costs.model import LatencyCostModel
        from repro.schemes.lru_everywhere import LRUEverywhereScheme
        from repro.topology.builder import build_chain
        from repro.workload.generator import (
            BoeingLikeTraceGenerator,
            WorkloadConfig,
        )
        from repro.workload.zipf import ZipfSampler

        config = WorkloadConfig(
            num_objects=300,
            num_servers=1,
            num_clients=1,
            num_requests=60_000,
            zipf_theta=0.8,
            seed=17,
        )
        generator = BoeingLikeTraceGenerator(config)
        trace = generator.generate()
        catalog = generator.catalog
        capacity = int(0.1 * catalog.total_bytes)

        network = build_chain([1.0])
        cost = LatencyCostModel(network, catalog.mean_size)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=capacity)
        hits = requested = 0
        warmup = len(trace) // 2
        for index, record in enumerate(trace):
            outcome = scheme.process_request(
                [0, 1], record.object_id, record.size, record.time
            )
            if index >= warmup:
                requested += record.size
                if outcome.served_by_cache:
                    hits += record.size
        simulated = hits / requested

        # Build the theoretical per-object rates from the generator's
        # actual popularity mapping: rank r has Zipf probability p_r.
        sampler = ZipfSampler(config.num_objects, config.zipf_theta)
        rng = np.random.default_rng(config.seed + 1)
        rank_to_object = rng.permutation(config.num_objects)
        rates = np.zeros(config.num_objects)
        for rank in range(config.num_objects):
            rates[rank_to_object[rank]] = (
                sampler.probability(rank) * config.request_rate
            )
        sizes = catalog.sizes.astype(float)
        # Skip objects too large to cache at all (Che assumes they churn).
        cacheable = sizes <= capacity
        theory = expected_byte_hit_ratio(
            rates[cacheable], sizes[cacheable], capacity
        ) * (rates[cacheable] * sizes[cacheable]).sum() / (rates * sizes).sum()
        assert simulated == pytest.approx(theory, abs=0.08)
