"""Tests for the experiment-grid execution layer (repro.experiments.runner)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.presets import build_architecture
from repro.experiments.results_io import (
    load_checkpoint,
    load_run_records,
    save_run_records,
)
from repro.experiments.runner import GridTask, run_grid
from repro.experiments.sweeps import (
    run_cache_size_sweep,
    run_modulo_radius_sweep,
)
from repro.sim.config import SimulationConfig
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

SCHEMES = ["lru", "coordinated"]
SIZES = [0.01, 0.03, 0.1, 0.3]


@pytest.fixture(scope="module")
def mini_setup():
    workload = WorkloadConfig(
        num_objects=50,
        num_servers=4,
        num_clients=8,
        num_requests=800,
        zipf_theta=0.8,
        seed=7,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    arch = build_architecture("hierarchical", workload, seed=0)
    return arch, trace, generator.catalog


def _sweep(mini_setup, **kwargs):
    arch, trace, catalog = mini_setup
    return run_cache_size_sweep(
        arch, trace, catalog, scheme_names=SCHEMES, cache_sizes=SIZES, **kwargs
    )


class TestParallelParity:
    def test_workers4_matches_sequential(self, mini_setup):
        """Acceptance: 2 schemes x 4 sizes, workers=4 == sequential run."""
        sequential = _sweep(mini_setup)
        parallel = _sweep(mini_setup, workers=4)
        assert parallel == sequential
        assert len(parallel) == len(SCHEMES) * len(SIZES)

    def test_rejects_nonpositive_workers(self, mini_setup):
        with pytest.raises(ValueError):
            _sweep(mini_setup, workers=0)


class TestCheckpointResume:
    def test_killed_then_resumed_runs_only_missing_points(
        self, mini_setup, tmp_path
    ):
        """A resumed sweep must re-execute exactly the missing points."""
        arch, trace, catalog = mini_setup
        checkpoint = tmp_path / "sweep.jsonl"

        # Simulate a sweep killed after finishing the 4 lru points.
        partial = run_cache_size_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["lru"],
            cache_sizes=SIZES,
            checkpoint_path=checkpoint,
        )
        assert len(load_checkpoint(checkpoint)) == len(SIZES)

        events = []
        resumed = _sweep(
            mini_setup,
            checkpoint_path=checkpoint,
            resume=True,
            progress=events.append,
        )
        # Executed tasks counted via the checkpoint file: the resumed run
        # appended only the coordinated points.
        assert len(load_checkpoint(checkpoint)) == len(SCHEMES) * len(SIZES)
        executed = [e for e in events if not e.record.reused]
        reused = [e for e in events if e.record.reused]
        assert len(executed) == len(SIZES)  # only the missing scheme ran
        assert len(reused) == len(SIZES)
        assert all(e.record.scheme == "coordinated" for e in executed)

        # Reused summaries are bit-identical to a fresh sequential run.
        assert resumed == _sweep(mini_setup)
        assert [p for p in resumed if p.scheme == "lru"] == partial

    def test_without_resume_checkpoint_is_overwritten(self, mini_setup, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        _sweep(mini_setup, checkpoint_path=checkpoint)
        events = []
        _sweep(mini_setup, checkpoint_path=checkpoint, progress=events.append)
        assert all(not e.record.reused for e in events)
        assert len(load_checkpoint(checkpoint)) == len(SCHEMES) * len(SIZES)

    def test_truncated_trailing_line_is_ignored(self, mini_setup, tmp_path):
        """A line cut short by a kill re-executes; intact lines are kept."""
        checkpoint = tmp_path / "sweep.jsonl"
        _sweep(mini_setup, checkpoint_path=checkpoint)
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        done = load_checkpoint(checkpoint)
        assert len(done) == len(SCHEMES) * len(SIZES) - 1

        events = []
        points = _sweep(
            mini_setup,
            checkpoint_path=checkpoint,
            resume=True,
            progress=events.append,
        )
        assert sum(1 for e in events if not e.record.reused) == 1
        assert points == _sweep(mini_setup)


class TestObservability:
    def test_progress_events_cover_the_grid(self, mini_setup):
        events = []
        _sweep(mini_setup, progress=events.append)
        total = len(SCHEMES) * len(SIZES)
        assert [e.completed for e in events] == list(range(1, total + 1))
        assert all(e.total == total for e in events)
        assert all("req/s" in e.format() for e in events)

    def test_run_records_carry_timing_and_worker(self, mini_setup, tmp_path):
        events = []
        _sweep(mini_setup, progress=events.append)
        records = [e.record for e in events]
        assert all(r.duration_seconds > 0 for r in records)
        assert all(r.requests_per_second > 0 for r in records)
        assert all(r.worker > 0 for r in records)
        assert all(r.requests == 800 for r in records)

        path = tmp_path / "records.json"
        save_run_records(records, path)
        loaded = load_run_records(path)
        assert len(loaded) == len(records)
        assert loaded[0]["scheme"] == records[0].scheme
        assert loaded[0]["duration_seconds"] == records[0].duration_seconds

    def test_parallel_run_uses_multiple_workers(self, mini_setup):
        events = []
        _sweep(mini_setup, workers=4, progress=events.append)
        workers = {e.record.worker for e in events}
        assert len(workers) > 1  # the grid really fanned out


class TestRunGrid:
    def test_duplicate_tasks_rejected(self, mini_setup):
        arch, trace, catalog = mini_setup
        config = SimulationConfig(relative_cache_size=0.05)
        task = GridTask(scheme="lru", config=config)
        with pytest.raises(ValueError, match="duplicate"):
            run_grid(arch, trace, catalog, [task, task])

    def test_task_key_is_stable_and_param_sensitive(self, mini_setup):
        arch, _, _ = mini_setup
        config = SimulationConfig(relative_cache_size=0.05)
        a = GridTask(scheme="modulo", config=config, params={"radius": 2})
        b = GridTask(scheme="modulo", config=config, params={"radius": 4})
        assert a.key(arch.name) != b.key(arch.name)
        assert a.key(arch.name) == GridTask(
            scheme="modulo", config=config, params={"radius": 2}
        ).key(arch.name)


class TestModuloRadiusSweep:
    def test_dcache_ratio_threaded_into_point_identity(
        self, mini_setup, tmp_path
    ):
        """dcache_ratio reaches the runner config (parity with size sweep)."""
        arch, trace, catalog = mini_setup
        checkpoint = tmp_path / "radius.jsonl"
        points = run_modulo_radius_sweep(
            arch,
            trace,
            catalog,
            radii=[1, 2],
            relative_cache_size=0.05,
            dcache_ratio=5.0,
            checkpoint_path=checkpoint,
        )
        assert [p.scheme for p in points] == ["modulo(r=1)", "modulo(r=2)"]
        keys = [json.loads(k) for k in load_checkpoint(checkpoint)]
        assert all(k["dcache_ratio"] == 5.0 for k in keys)

    def test_parallel_matches_sequential(self, mini_setup):
        arch, trace, catalog = mini_setup
        kwargs = dict(radii=[1, 2, 4], relative_cache_size=0.05)
        assert run_modulo_radius_sweep(
            arch, trace, catalog, workers=3, **kwargs
        ) == run_modulo_radius_sweep(arch, trace, catalog, **kwargs)
