"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.costs.model import LatencyCostModel
from repro.topology.builder import build_chain
from repro.workload.catalog import ObjectCatalog
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig


@pytest.fixture
def chain4():
    """A 5-node chain 0-1-2-3-4 with unit link delays.

    Node 4 plays the origin-server attachment; node 0 the client node.
    """
    return build_chain([1.0, 1.0, 1.0, 1.0])


@pytest.fixture
def chain_costs(chain4):
    """Latency cost model on the chain, avg size 100 (so size 100 -> cost 1/hop)."""
    return LatencyCostModel(chain4, avg_size=100.0)


@pytest.fixture
def tiny_catalog():
    return ObjectCatalog.generate(num_objects=50, num_servers=5, seed=3)


@pytest.fixture
def tiny_workload():
    return WorkloadConfig(
        num_objects=80,
        num_servers=5,
        num_clients=10,
        num_requests=2_000,
        zipf_theta=0.8,
        seed=11,
    )


@pytest.fixture
def tiny_trace(tiny_workload):
    generator = BoeingLikeTraceGenerator(tiny_workload)
    return generator.generate(), generator.catalog
