"""Tests for the cascaded (tree) Che approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.che import (
    cascade_byte_hit_ratio,
    cascade_lru_hit_ratios,
    expected_byte_hit_ratio,
)


class TestCascadeLRUHitRatios:
    def test_shape_and_bounds(self):
        rates = 1.0 / np.arange(1, 31)
        sizes = np.full(30, 10.0)
        hit = cascade_lru_hit_ratios(rates, sizes, 60.0, fanouts=[3, 3])
        assert hit.shape == (3, 30)
        assert ((hit >= 0) & (hit <= 1)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            cascade_lru_hit_ratios([1.0], [1.0], 10.0, fanouts=[0])

    def test_single_level_matches_plain_che(self):
        """With no fanouts the cascade is one cache seeing full demand."""
        rates = 1.0 / np.arange(1, 51)
        sizes = np.full(50, 10.0)
        cascade = cascade_byte_hit_ratio(rates, sizes, 100.0, fanouts=[])
        plain = expected_byte_hit_ratio(rates, sizes, 100.0)
        assert cascade == pytest.approx(plain)

    def test_upper_levels_catch_less_popular_mass(self):
        """Leaves absorb the head; upper levels see flattened demand."""
        rates = 1.0 / np.arange(1, 101) ** 0.8
        sizes = np.full(100, 10.0)
        hit = cascade_lru_hit_ratios(rates, sizes, 200.0, fanouts=[3, 3])
        # The hottest object hits hard at the leaves; its residual miss
        # stream upward is tiny relative to colder objects.
        assert hit[0, 0] > 0.9
        # Overall coverage exceeds any single level's coverage.
        rates_arr = rates / rates.sum()
        overall = cascade_byte_hit_ratio(rates, sizes, 200.0, fanouts=[3, 3])
        single = expected_byte_hit_ratio(rates, sizes, 200.0)
        assert overall > single * 0.99

    def test_matches_simulated_lru_tree(self):
        """Cascade Che vs a simulated LRU-everywhere cache hierarchy."""
        from repro.costs.model import LatencyCostModel
        from repro.schemes.lru_everywhere import LRUEverywhereScheme
        from repro.sim.architecture import build_hierarchical_architecture
        from repro.sim.engine import SimulationEngine
        from repro.topology.tree import TreeConfig
        from repro.workload.catalog import SizeDistribution
        from repro.workload.generator import (
            BoeingLikeTraceGenerator,
            WorkloadConfig,
        )
        from repro.workload.zipf import ZipfSampler

        workload = WorkloadConfig(
            num_objects=200,
            num_servers=1,
            num_clients=27,
            num_requests=60_000,
            zipf_theta=0.8,
            seed=19,
            # Bounded sizes keep every object cacheable (Che's regime).
            size_distribution=SizeDistribution(
                tail_fraction=0.0, body_median=2048, body_sigma=0.5,
                max_size=8192,
            ),
        )
        generator = BoeingLikeTraceGenerator(workload)
        trace = generator.generate()
        catalog = generator.catalog
        arch = build_hierarchical_architecture(
            workload.num_clients, workload.num_servers,
            tree_config=TreeConfig(depth=3, fanout=3), seed=1,
        )
        cost = LatencyCostModel(arch.network, catalog.mean_size)
        capacity = int(0.05 * catalog.total_bytes)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=capacity)
        result = SimulationEngine(arch, cost, scheme, warmup_fraction=0.5).run(trace)
        simulated = result.summary.byte_hit_ratio

        sampler = ZipfSampler(workload.num_objects, workload.zipf_theta)
        rng = np.random.default_rng(workload.seed + 1)
        rank_to_object = rng.permutation(workload.num_objects)
        rates = np.zeros(workload.num_objects)
        for rank in range(workload.num_objects):
            rates[rank_to_object[rank]] = (
                sampler.probability(rank) * workload.request_rate
            )
        # Clients attach to leaves non-uniformly (random), so the even-
        # split assumption is approximate -- hence the loose tolerance.
        theory = cascade_byte_hit_ratio(
            rates, catalog.sizes.astype(float), capacity, fanouts=[3, 3]
        )
        assert simulated == pytest.approx(theory, abs=0.12)
