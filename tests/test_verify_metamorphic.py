"""Metamorphic relations: delay scaling and the zero-capacity degeneracy."""

from __future__ import annotations

import pytest

from repro.experiments.presets import build_architecture
from repro.verify.metamorphic import (
    latency_scaling_violations,
    zero_capacity_violations,
)


@pytest.fixture
def en_route(tiny_workload, tiny_trace):
    trace, catalog = tiny_trace
    architecture = build_architecture(
        "en-route", tiny_workload, seed=tiny_workload.seed
    )
    return architecture, trace, catalog


@pytest.mark.parametrize("scheme", ["lru", "lnc-r", "coordinated"])
def test_latency_scales_with_link_delays(en_route, scheme):
    architecture, trace, catalog = en_route
    assert latency_scaling_violations(architecture, trace, catalog, scheme) == []


@pytest.mark.parametrize("scheme", ["lru", "coordinated"])
def test_zero_capacity_degenerates_to_no_cache(en_route, scheme):
    architecture, trace, catalog = en_route
    assert zero_capacity_violations(architecture, trace, catalog, scheme) == []


def test_relations_hold_on_hierarchical_architecture(tiny_workload, tiny_trace):
    trace, catalog = tiny_trace
    architecture = build_architecture(
        "hierarchical", tiny_workload, seed=tiny_workload.seed
    )
    assert (
        latency_scaling_violations(architecture, trace, catalog, "coordinated")
        == []
    )
    assert zero_capacity_violations(architecture, trace, catalog, "lru") == []
