"""Tests for exporters and the observability CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.export import (
    escape_label_value,
    format_node_stats,
    parse_prometheus_text,
    prometheus_text,
    summarize_trace_events,
)

SIM_BASE = [
    "sim",
    "--schemes",
    "coordinated",
    "--scale",
    "small",
    "--size",
    "0.01",
]


def sample_stats():
    return {
        2: {"hits": 3, "misses": 7, "insertions": 4, "evictions": 1,
            "evicted_bytes": 100, "bytes_read": 300, "bytes_written": 400,
            "occupancy_hwm": 500, "piggyback_bytes": 24,
            "dcache_evictions": 2, "invalidations": 0},
        10: {"hits": 0, "misses": 5, "insertions": 0, "evictions": 0,
             "evicted_bytes": 0, "bytes_read": 0, "bytes_written": 0,
             "occupancy_hwm": 0, "piggyback_bytes": 2,
             "dcache_evictions": 0, "invalidations": 1},
    }


class TestNodeTable:
    def test_empty(self):
        assert format_node_stats({}) == "no node stats recorded"

    def test_table_contents(self):
        text = format_node_stats(sample_stats())
        lines = text.splitlines()
        assert len(lines) == 3
        assert "hit%" in lines[0]
        assert lines[1].split()[:2] == ["2", "30.0"]
        assert lines[2].split()[:2] == ["10", "0.0"]

    def test_string_keys_sort_numerically(self):
        stats = {str(k): v for k, v in sample_stats().items()}
        lines = format_node_stats(stats).splitlines()
        assert lines[1].split()[0] == "2"
        assert lines[2].split()[0] == "10"


class TestPrometheus:
    def test_exposition_format(self):
        text = prometheus_text(sample_stats())
        assert '# TYPE repro_cache_hits_total counter' in text
        assert '# TYPE repro_cache_occupancy_hwm_bytes gauge' in text
        assert 'repro_cache_hits_total{node="2"} 3' in text
        assert 'repro_cache_piggyback_bytes_total{node="10"} 2' in text
        assert text.endswith("\n")

    def test_custom_prefix(self):
        text = prometheus_text(sample_stats(), prefix="x")
        assert 'x_hits_total{node="2"} 3' in text

    def test_help_precedes_type_per_metric(self):
        text = prometheus_text(sample_stats())
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE"):
                name = line.split()[2]
                assert lines[i - 1].startswith(f"# HELP {name} ")

    def test_label_escaping(self):
        assert escape_label_value('pla"in') == 'pla\\"in'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("two\nlines") == "two\\nlines"
        stats = {'no"de\n1': {"hits": 1, "misses": 0}}
        text = prometheus_text(stats)
        assert 'node="no\\"de\\n1"' in text

    def test_resilience_and_shard_counters_exported(self):
        stats = sample_stats()
        stats[2]["busy_rejections"] = 6
        stats[2]["cross_shard_fwds"] = 9
        text = prometheus_text(stats)
        assert "# TYPE repro_cache_busy_rejections_total counter" in text
        assert 'repro_cache_busy_rejections_total{node="2"} 6' in text
        assert 'repro_cache_cross_shard_fwds_total{node="2"} 9' in text
        # A node lacking the counter still scrapes (as zero).
        assert 'repro_cache_busy_rejections_total{node="10"} 0' in text

    def test_unknown_counters_pass_through(self):
        stats = {1: {"hits": 1, "misses": 2, "future_counter": 5}}
        text = prometheus_text(stats)
        assert "# TYPE repro_cache_future_counter_total counter" in text
        assert 'repro_cache_future_counter_total{node="1"} 5' in text

    def test_parse_inverts_render(self):
        stats = sample_stats()
        stats[2]["busy_rejections"] = 4
        samples = list(parse_prometheus_text(prometheus_text(stats)))
        assert samples, "parser saw no samples"
        by_metric = {
            (metric, labels["node"]): value
            for metric, labels, value in samples
        }
        assert by_metric[("repro_cache_hits_total", "2")] == 3
        assert by_metric[("repro_cache_busy_rejections_total", "2")] == 4
        assert by_metric[("repro_cache_occupancy_hwm_bytes", "10")] == 0

    def test_parse_unescapes_labels(self):
        text = 'm_total{node="a\\"b\\nc\\\\d"} 1\n'
        ((metric, labels, value),) = parse_prometheus_text(text)
        assert metric == "m_total"
        assert labels["node"] == 'a"b\nc\\d'
        assert value == 1.0


class TestTraceSummary:
    def test_folds_all_kinds(self):
        events = [
            {"kind": "request", "hit_node": 4},
            {"kind": "request", "hit_node": None},
            {"kind": "placement", "inserted": [1, 2]},
            {"kind": "placement", "inserted": [2]},
            {"kind": "eviction", "node": 2, "victims": [7, 8], "freed": 50},
            {"kind": "dcache-eviction", "node": 1, "victims": [9]},
            {"kind": "invalidation", "copies": 3},
        ]
        summary = summarize_trace_events(events)
        assert summary.events == 7
        assert summary.requests == 2
        assert summary.origin_served == 1
        assert summary.hits_by_node == {4: 1}
        assert summary.insertions_by_node == {1: 1, 2: 2}
        assert summary.evictions_by_node == {2: 2}
        assert summary.freed_bytes_by_node == {2: 50}
        assert summary.dcache_evictions_by_node == {1: 1}
        assert summary.invalidated_copies == 3
        text = summary.format()
        assert "7 events" in text
        assert "1 cache-served" in text

    def test_mixed_sim_events_and_serve_spans(self):
        """Satellite gate: spans fold into their own totals and never
        leak into the simulator-side request/hit accounting."""
        events = [
            {"kind": "request", "hit_node": 4},
            {"kind": "request", "hit_node": None},
            {"kind": "span", "trace": "t3.1", "span": "s3.2", "node": 3,
             "shard": 0, "status": "ok", "retries": 1},
            {"kind": "span", "trace": "t3.1", "span": "s8.1", "node": 8,
             "shard": 1, "status": "ok", "failovers": 1},
            {"kind": "span", "trace": "t3.3", "span": "s3.4", "node": 3,
             "status": "NodeUnreachable"},
            {"kind": "placement", "inserted": [4]},
        ]
        summary = summarize_trace_events(events)
        # Sim-side accounting untouched by the interleaved spans.
        assert summary.requests == 2
        assert summary.origin_served == 1
        assert summary.hits_by_node == {4: 1}
        assert summary.insertions_by_node == {4: 1}
        # Span-side accounting attributed to spans alone.
        assert summary.spans == 3
        assert summary.span_traces == 2
        assert summary.spans_by_node == {3: 2, 8: 1}
        assert summary.span_shards == {0, 1}
        assert summary.span_retries == 1
        assert summary.span_failovers == 1
        assert summary.span_errors == 1
        text = summary.format()
        assert "serve spans: 3 across 2 traces over 2 shards" in text
        assert "retries 1, failovers 1, errors 1" in text

    def test_span_without_ids_still_counts_safely(self):
        summary = summarize_trace_events([{"kind": "span"}])
        assert summary.spans == 1
        assert summary.span_traces == 0
        assert summary.spans_by_node == {}


class TestSimObservabilityFlags:
    def test_trace_out_and_node_stats(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            SIM_BASE + ["--trace-out", str(trace_path), "--node-stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "hit%" in out
        events = [json.loads(l) for l in trace_path.read_text().splitlines()]
        assert {"request", "placement"} <= {e["kind"] for e in events}

    def test_multi_scheme_paths_get_infix(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "sim",
                "--schemes",
                "lru,lnc-r",
                "--scale",
                "small",
                "--size",
                "0.01",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "run.lru.jsonl").exists()
        assert (tmp_path / "run.lnc-r.jsonl").exists()
        assert not trace_path.exists()

    def test_prom_out_and_timers(self, capsys, tmp_path):
        prom_path = tmp_path / "metrics.prom"
        code = main(SIM_BASE + ["--prom-out", str(prom_path), "--timers"])
        assert code == 0
        out = capsys.readouterr().out
        assert "us/call" in out
        assert "dp-solve" in out
        assert "# TYPE repro_cache_hits_total counter" in prom_path.read_text()

    def test_timeseries_out(self, capsys, tmp_path):
        csv_path = tmp_path / "series.csv"
        code = main(
            SIM_BASE
            + ["--timeseries-window", "60", "--timeseries-out", str(csv_path)]
        )
        assert code == 0
        header = csv_path.read_text().splitlines()[0]
        assert "hit_ratio" in header
        assert "mean_read_load" in header

    def test_timeseries_json_by_suffix(self, capsys, tmp_path):
        json_path = tmp_path / "series.json"
        code = main(
            SIM_BASE
            + ["--timeseries-window", "60", "--timeseries-out", str(json_path)]
        )
        assert code == 0
        series = json.loads(json_path.read_text())
        assert series
        assert "mean_write_load" in series[0]

    def test_timeseries_out_requires_window(self, capsys, tmp_path):
        code = main(SIM_BASE + ["--timeseries-out", str(tmp_path / "x.csv")])
        assert code == 2
        assert "--timeseries-window" in capsys.readouterr().err

    def test_sampled_trace_is_deterministic(self, capsys, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(
                SIM_BASE
                + [
                    "--trace-out",
                    str(path),
                    "--trace-sample-rate",
                    "0.2",
                    "--probe-seed",
                    "7",
                ]
            ) == 0
        capsys.readouterr()
        assert paths[0].read_text() == paths[1].read_text()


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(SIM_BASE + ["--trace-out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_summary(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "requests:" in out

    def test_kind_filter_and_events(self, trace_file, capsys):
        code = main(
            [
                "trace",
                str(trace_file),
                "--kinds",
                "placement",
                "--events",
                "--limit",
                "5",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 5
        assert all(json.loads(l)["kind"] == "placement" for l in lines)

    def test_unknown_kind_rejected(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--kinds", "bogus"]) == 2
        assert "unknown event kinds" in capsys.readouterr().err

    def test_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestGridNodeStatsFlag:
    def test_sweep_node_stats_in_records(self, capsys, tmp_path):
        save = tmp_path / "points.json"
        code = main(
            [
                "sweep",
                "--arch",
                "hierarchical",
                "--schemes",
                "lru",
                "--sizes",
                "0.05",
                "--scale",
                "small",
                "--metrics",
                "latency",
                "--node-stats",
                "--save",
                str(save),
            ]
        )
        assert code == 0
        capsys.readouterr()
        document = json.loads(
            (tmp_path / "points.json.records.json").read_text()
        )
        assert document["records"][0]["node_stats"]
