"""Tests for the LFU descriptor cache (paper section 2.4)."""

from __future__ import annotations

import pytest

from repro.cache.dcache import DescriptorCache
from repro.cache.descriptors import ObjectDescriptor


def desc(object_id: int, size: int = 100) -> ObjectDescriptor:
    return ObjectDescriptor(object_id, size)


class TestDescriptorCache:
    def test_insert_and_get(self):
        dcache = DescriptorCache(2)
        d = desc(1)
        assert dcache.insert(d) == []
        assert dcache.get(1) is d
        assert len(dcache) == 1

    def test_zero_capacity_rejects_everything(self):
        dcache = DescriptorCache(0)
        d = desc(1)
        assert dcache.insert(d) == [d]
        assert 1 not in dcache

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DescriptorCache(-1)

    def test_lfu_eviction(self):
        dcache = DescriptorCache(2)
        dcache.insert(desc(1))
        dcache.insert(desc(2))
        dcache.get(1)  # 1 now has 2 references, 2 has 1
        evicted = dcache.insert(desc(3))
        assert [d.object_id for d in evicted] == [2]
        assert 1 in dcache and 3 in dcache

    def test_peek_does_not_promote(self):
        dcache = DescriptorCache(2)
        dcache.insert(desc(1))
        dcache.insert(desc(2))
        dcache.peek(1)  # no LFU promotion: 1 and 2 tie, 1 is older
        evicted = dcache.insert(desc(3))
        assert [d.object_id for d in evicted] == [1]

    def test_reinsert_existing_replaces_without_eviction(self):
        dcache = DescriptorCache(1)
        dcache.insert(desc(1, size=10))
        replacement = desc(1, size=20)
        assert dcache.insert(replacement) == []
        assert dcache.peek(1) is replacement

    def test_remove(self):
        dcache = DescriptorCache(2)
        d = desc(5)
        dcache.insert(d)
        assert dcache.remove(5) is d
        assert dcache.remove(5) is None
        assert len(dcache) == 0

    def test_capacity_never_exceeded(self):
        dcache = DescriptorCache(3)
        for i in range(20):
            dcache.insert(desc(i))
            dcache.check_invariants()
        assert len(dcache) == 3

    def test_miss_returns_none(self):
        dcache = DescriptorCache(2)
        assert dcache.get(42) is None
        assert dcache.peek(42) is None
