"""Tests for metric aggregation."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.schemes.base import RequestOutcome


def outcome(path_len=4, hit=1, size=100, inserted=(), evictions=0):
    return RequestOutcome(
        path=list(range(path_len)),
        hit_index=hit,
        size=size,
        inserted_nodes=tuple(inserted),
        evicted_objects=evictions,
    )


class TestRequestOutcome:
    def test_served_by_cache(self):
        assert outcome(hit=1).served_by_cache
        assert not outcome(hit=3).served_by_cache

    def test_hops_and_loads(self):
        o = outcome(hit=2, size=50, inserted=(0, 1))
        assert o.hops == 2
        assert o.bytes_read == 50
        assert o.bytes_written == 100

    def test_origin_hit_reads_nothing(self):
        assert outcome(hit=3).bytes_read == 0

    def test_rejects_bad_hit_index(self):
        with pytest.raises(ValueError):
            outcome(path_len=3, hit=3)


class TestMetricsCollector:
    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().summary()

    def test_rejects_negative_latency(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.record(outcome(), latency=-1.0)

    def test_single_request_summary(self):
        collector = MetricsCollector()
        collector.record(outcome(hit=2, size=100, inserted=(0,)), latency=3.0)
        s = collector.summary()
        assert s.requests == 1
        assert s.mean_latency == 3.0
        assert s.mean_response_ratio == pytest.approx(0.03)
        assert s.byte_hit_ratio == 1.0
        assert s.hit_ratio == 1.0
        assert s.mean_traffic_byte_hops == 200.0
        assert s.mean_hops == 2.0
        assert s.mean_read_load == 100.0
        assert s.mean_write_load == 100.0
        assert s.mean_cache_load == 200.0
        assert s.read_load_share == pytest.approx(0.5)

    def test_mixed_hits_and_misses(self):
        collector = MetricsCollector()
        collector.record(outcome(hit=1, size=100), latency=1.0)  # cache hit
        collector.record(outcome(hit=3, size=300), latency=3.0)  # origin
        s = collector.summary()
        assert s.requests == 2
        assert s.mean_latency == 2.0
        assert s.byte_hit_ratio == pytest.approx(100 / 400)
        assert s.hit_ratio == 0.5
        assert s.mean_hops == 2.0

    def test_read_load_share_zero_when_no_load(self):
        collector = MetricsCollector()
        collector.record(outcome(hit=3, size=10), latency=1.0)
        assert collector.summary().read_load_share == 0.0

    def test_latency_percentiles_ordering(self):
        collector = MetricsCollector()
        for i in range(1000):
            collector.record(outcome(), latency=float(i))
        p50, p90, p99 = collector.summary().latency_percentiles
        assert p50 <= p90 <= p99
        assert abs(p50 - 500) < 25
        assert abs(p90 - 900) < 25
        assert abs(p99 - 990) < 15

    def test_percentiles_deterministic_across_collectors(self):
        def build():
            collector = MetricsCollector()
            for i in range(20_000):
                collector.record(outcome(), latency=float(i % 997))
            return collector.summary().latency_percentiles

        assert build() == build()

    def test_single_request_percentiles(self):
        collector = MetricsCollector()
        collector.record(outcome(), latency=4.0)
        assert collector.summary().latency_percentiles == (4.0, 4.0, 4.0)
