"""The results warehouse: every artifact format in, exact tables out.

Two acceptance gates pin the tentpole down:

* **fidelity** -- the ``scheme-arch`` canned query reproduces a sweep's
  metric values bit-identically (floats round-trip through sqlite REAL
  unchanged);
* **idempotency** -- ingesting any artifact twice (including a
  checkpoint rewritten by ``--resume``) changes zero rows, because rows
  are keyed by a content hash of the source record, not by file or
  offset.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.costs.model import LatencyCostModel
from repro.experiments.points import SweepPoint
from repro.experiments.presets import build_architecture
from repro.experiments.results_io import (
    CheckpointWriter,
    save_points_json,
    save_run_records,
)
from repro.obs.export import prometheus_text
from repro.obs.warehouse import Warehouse, format_table, write_csv
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=60,
    num_servers=2,
    num_clients=6,
    num_requests=250,
    zipf_theta=0.8,
    seed=5,
)
CONFIG = SimulationConfig(relative_cache_size=0.02)
SCHEMES = ("lru", "coordinated")


@pytest.fixture(scope="module")
def sweep_points():
    """A real two-scheme mini-sweep (so metric floats are non-trivial)."""
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", WORKLOAD, seed=2)
    cost_model = LatencyCostModel(arch.network, catalog.mean_size)
    capacity = CONFIG.capacity_bytes(catalog.total_bytes)
    dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
    points = []
    for scheme_name in SCHEMES:
        summary = SimulationEngine(
            arch,
            cost_model,
            build_scheme(scheme_name, cost_model, capacity, dcache),
            warmup_fraction=CONFIG.warmup_fraction,
        ).run(trace).summary
        points.append(
            SweepPoint(
                architecture=arch.name,
                scheme=scheme_name,
                relative_cache_size=CONFIG.relative_cache_size,
                summary=summary,
            )
        )
    return points


def grid_key(point: SweepPoint) -> str:
    return json.dumps(
        {
            "architecture": point.architecture,
            "scheme": point.scheme,
            "relative_cache_size": point.relative_cache_size,
            "dcache_ratio": CONFIG.dcache_ratio,
            "warmup_fraction": CONFIG.warmup_fraction,
            "params": {},
        },
        sort_keys=True,
    )


def run_record(point: SweepPoint, violations=()) -> dict:
    return {
        "key": grid_key(point),
        "scheme": point.scheme,
        "relative_cache_size": point.relative_cache_size,
        "duration_seconds": 0.25,
        "requests": point.summary.requests,
        "requests_per_second": 1000.0,
        "worker": 0,
        "reused": False,
        "audit_checks": 12,
        "audit_violations": list(violations),
        "node_stats": {
            "3": {"hits": 10, "misses": 5, "piggyback_bytes": 64},
            "8": {"hits": 2, "misses": 9, "cross_shard_fwds": 4},
        },
    }


class TestPointsFidelity:
    def test_scheme_arch_query_is_bit_identical(self, sweep_points, tmp_path):
        results = tmp_path / "points.json"
        save_points_json(sweep_points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            ingested = warehouse.ingest(results)
            assert ingested.added == {"points": len(sweep_points)}
            headers, rows = warehouse.query("scheme-arch")
            assert len(rows) == len(sweep_points)
            by_scheme = {row[headers.index("scheme")]: row for row in rows}
            for point in sweep_points:
                row = by_scheme[point.scheme]
                # Floats through sqlite REAL, exactly -- no formatting,
                # no rounding, no drift.
                assert row[headers.index("hit_ratio")] == (
                    point.summary.hit_ratio
                )
                assert row[headers.index("byte_hit_ratio")] == (
                    point.summary.byte_hit_ratio
                )
                assert row[headers.index("mean_latency")] == (
                    point.summary.mean_latency
                )
                assert row[headers.index("mean_hops")] == (
                    point.summary.mean_hops
                )
                assert row[headers.index("mean_cache_load")] == (
                    point.summary.mean_read_load
                    + point.summary.mean_write_load
                )

    def test_double_ingest_changes_zero_rows(self, sweep_points, tmp_path):
        results = tmp_path / "points.json"
        save_points_json(sweep_points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            warehouse.ingest(results)
            before = warehouse.table_counts()
            again = warehouse.ingest(results)
            assert again.total_added == 0
            assert again.total_duplicates == len(sweep_points)
            assert warehouse.table_counts() == before

    def test_same_content_other_file_still_dedupes(
        self, sweep_points, tmp_path
    ):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_points_json(sweep_points, a)
        save_points_json(sweep_points, b)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            warehouse.ingest(a)
            assert warehouse.ingest(b).total_added == 0


class TestProvisioningPoints:
    def _provisioned(self, sweep_points):
        import dataclasses

        uniform, provisioned = sweep_points[0], sweep_points[1]
        provisioned = dataclasses.replace(
            provisioned,
            provision={
                "profile": "edge-heavy",
                "level_multipliers": {"0": 0.5, "1": 2.0},
            },
        )
        return [uniform, provisioned]

    def test_provisioning_query_renders_profiles(self, sweep_points, tmp_path):
        points = self._provisioned(sweep_points)
        results = tmp_path / "points.json"
        save_points_json(points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(results).added == {"points": 2}
            headers, rows = warehouse.query("provisioning")
            assert len(rows) == 2
            profiles = {row[headers.index("profile")] for row in rows}
            # Points without provisioning surface as the uniform profile.
            assert profiles == {"uniform", "edge-heavy"}

    def test_provision_multipliers_stored_canonically(
        self, sweep_points, tmp_path
    ):
        points = self._provisioned(sweep_points)
        results = tmp_path / "points.json"
        save_points_json(points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            warehouse.ingest(results)
            headers, rows = warehouse.sql(
                "SELECT provision_profile, provision_multipliers "
                "FROM points ORDER BY provision_profile"
            )
            # NULLs (unprovisioned points) sort first in sqlite.
            assert rows[0] == (None, None)
            assert rows[1] == ("edge-heavy", '{"0":0.5,"1":2.0}')

    def test_provisioned_and_uniform_points_dedupe_independently(
        self, sweep_points, tmp_path
    ):
        """Same scheme and size, different provisioning: two rows."""
        points = self._provisioned(sweep_points)
        import dataclasses

        points[1] = dataclasses.replace(points[1], scheme=points[0].scheme)
        results = tmp_path / "points.json"
        save_points_json(points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(results).added == {"points": 2}
            assert warehouse.ingest(results).total_added == 0

    def test_migration_adds_missing_provision_columns(
        self, sweep_points, tmp_path
    ):
        """A warehouse created before the provisioning columns upgrades
        in place on open and ingests provisioned points."""
        import sqlite3

        db = tmp_path / "w.sqlite"
        with Warehouse(db) as warehouse:
            pass
        if sqlite3.sqlite_version_info < (3, 35):
            pytest.skip("sqlite too old for DROP COLUMN")
        conn = sqlite3.connect(db)
        conn.execute("ALTER TABLE points DROP COLUMN provision_profile")
        conn.execute("ALTER TABLE points DROP COLUMN provision_multipliers")
        conn.commit()
        conn.close()
        results = tmp_path / "points.json"
        save_points_json(self._provisioned(sweep_points), results)
        with Warehouse(db) as warehouse:
            assert warehouse.ingest(results).added == {"points": 2}
            headers, rows = warehouse.query("provisioning")
            profiles = {row[headers.index("profile")] for row in rows}
            assert profiles == {"uniform", "edge-heavy"}


class TestCheckpointIngest:
    def test_resume_duplicates_never_double_count(
        self, sweep_points, tmp_path
    ):
        """The satellite gate: a checkpoint re-written by ``--resume``
        repeats completed points verbatim; ingest counts each once."""
        checkpoint = tmp_path / "sweep.ckpt"
        with CheckpointWriter(checkpoint) as writer:
            for point in sweep_points:
                writer.write(grid_key(point), point, run_record(point))
            # --resume appends the re-executed (deterministic, so
            # identical) first point again.
            writer.write(
                grid_key(sweep_points[0]),
                sweep_points[0],
                run_record(sweep_points[0]),
            )
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            result = warehouse.ingest(checkpoint)
            assert result.added["points"] == len(sweep_points)
            assert result.added["runs"] == len(sweep_points)
            assert result.duplicates["points"] == 1
            headers, rows = warehouse.query("scheme-arch")
            assert len(rows) == len(sweep_points)
            # The run key's JSON recovered the architecture column.
            headers, rows = warehouse.sql(
                "SELECT architecture, scheme FROM runs ORDER BY scheme"
            )
            assert all(row[0] == sweep_points[0].architecture for row in rows)

    def test_truncated_lines_skipped(self, sweep_points, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"
        with CheckpointWriter(checkpoint) as writer:
            writer.write(
                grid_key(sweep_points[0]),
                sweep_points[0],
                run_record(sweep_points[0]),
            )
        with open(checkpoint, "a") as f:
            f.write('{"schema_version": 1, "key": "half')  # killed mid-write
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(checkpoint).added["points"] == 1


class TestRunRecordsIngest:
    def test_sidecar_with_violations_and_node_stats(
        self, sweep_points, tmp_path
    ):
        violation = {"check": "hit_ratio", "detail": "bad", "request_index": 7}
        records = [
            run_record(sweep_points[0], violations=[violation]),
            run_record(sweep_points[1]),
        ]
        sidecar = tmp_path / "records.json"
        save_run_records(records, sidecar)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            result = warehouse.ingest(sidecar)
            assert result.added["runs"] == 2
            assert result.added["node_stats"] == 4
            assert result.added["audit_violations"] == 1
            _, rows = warehouse.query("violations")
            assert rows == [(sweep_points[0].scheme, "hit_ratio", 1)]
            _, rows = warehouse.query("overhead")
            assert len(rows) == 2
            assert warehouse.ingest(sidecar).total_added == 0


class TestBenchIngest:
    def test_bench_sim_with_nested_quick(self, tmp_path):
        document = {
            "preset": "medium",
            "trace_build": {"seconds": 1.0},
            "runs": {
                "lru": {"reference_rps": 100.0, "fast_rps": 400.0,
                        "speedup": 4.0},
                "coordinated": {"reference_rps": 50.0, "fast_rps": 100.0,
                                "speedup": 2.0},
            },
            "quick": {
                "preset": "quick",
                "trace_build": {"seconds": 0.1},
                "runs": {
                    "lru": {"reference_rps": 90.0, "fast_rps": 360.0,
                            "speedup": 4.0},
                },
            },
        }
        path = tmp_path / "BENCH_sim.json"
        path.write_text(json.dumps(document))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(path).added["bench_sim"] == 3
            headers, rows = warehouse.query("perf-trajectory")
            assert len(rows) == 3
            quick = [r for r in rows if r[headers.index("quick")] == 1]
            assert len(quick) == 1
            assert warehouse.ingest(path).total_added == 0

    def test_bench_serve_levels_and_saturation(self, tmp_path):
        document = {
            "preset": "medium",
            "scheme": "coordinated",
            "arch": "hierarchical",
            "shards": 2,
            "levels": [
                {"offered_rps": 100.0, "offered_requests": 500,
                 "completed": 500, "achieved_rps": 99.0,
                 "achieved_ratio": 0.99, "errors": 0, "rejected": 0,
                 "shed": 0, "busy_retries": 0, "wall_p50": 0.001,
                 "wall_p90": 0.002, "wall_p99": 0.004},
                {"offered_rps": 400.0, "offered_requests": 2000,
                 "completed": 1800, "achieved_rps": 310.0,
                 "achieved_ratio": 0.775, "errors": 0, "rejected": 150,
                 "shed": 50, "busy_retries": 300, "wall_p50": 0.004,
                 "wall_p90": 0.03, "wall_p99": 0.09},
            ],
            "saturation": {"offered_rps": 400.0, "achieved_rps": 310.0,
                           "wall_p99": 0.09},
        }
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(document))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            result = warehouse.ingest(path)
            assert result.added["bench_serve_levels"] == 2
            assert result.added["bench_serve_saturation"] == 1
            _, rows = warehouse.query("saturation-knee")
            assert len(rows) == 1
            assert rows[0][-1] == 0.09


class TestLoadReportIngest:
    def test_report_out_round_trips(self, tmp_path):
        document = {
            "mode": "open",
            "requests_total": 4000,
            "requests_measured": 2000,
            "cache_served": 1500,
            "origin_served": 2500,
            "duration_seconds": 2.0,
            "requests_per_second": 2000.0,
            "wall_latency_mean": 0.001,
            "wall_latency_p50": 0.0009,
            "wall_latency_p90": 0.002,
            "wall_latency_p99": 0.005,
            "updates_applied": 3,
            "copies_invalidated": 9,
            "errors": 0,
            "rejected": 12,
            "shed": 5,
            "busy_retries": 40,
            "aborted": False,
            "modelled": {
                "mean_latency": 0.42,
                "mean_response_ratio": 0.8,
                "byte_hit_ratio": 0.31,
                "hit_ratio": 0.37,
                "mean_traffic_byte_hops": 1.9,
                "mean_hops": 1.5,
                "mean_read_load": 0.3,
                "mean_write_load": 0.1,
            },
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(document))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(path).added == {"load_reports": 1}
            headers, rows = warehouse.query("loadgen")
            row = dict(zip(headers, rows[0]))
            assert row["requests_per_second"] == 2000.0
            assert row["hit_ratio"] == 0.37
            assert row["shed"] == 5


class TestScrapesAndSpans:
    def test_prometheus_scrape_ingest(self, tmp_path):
        stats = {
            3: {"hits": 11, "misses": 4, "piggyback_bytes": 128,
                "busy_rejections": 2},
            8: {"hits": 0, "misses": 9},
        }
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(prometheus_text(stats))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            result = warehouse.ingest(scrape)
            assert result.added["metrics_samples"] > 0
            headers, rows = warehouse.query("metrics-latest")
            values = {
                (row[0], row[1]): row[2] for row in rows
            }
            assert values[("repro_cache_hits_total", "3")] == 11.0
            assert values[("repro_cache_busy_rejections_total", "8")] == 0.0
            assert warehouse.ingest(scrape).total_added == 0

    def test_span_trace_ingest(self, tmp_path):
        events = [
            {"kind": "span", "trace": "t3.1", "span": "s3.2", "parent": None,
             "node": 3, "shard": 0, "op": "walk", "status": "ok", "index": 0,
             "wall": 0.002, "retries": 1, "xshard": True},
            {"kind": "span", "trace": "t3.1", "span": "s8.1",
             "parent": "s3.2", "node": 8, "shard": 1, "op": "walk",
             "status": "ok", "index": 1, "hit_index": 1, "wall": 0.001},
            {"kind": "request", "hit_node": 3},  # sim event: ignored
        ]
        path = tmp_path / "spans.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(path).added == {"spans": 2}
            headers, rows = warehouse.query("trace-shards")
            assert rows == [("t3.1", 2, 2, 2, 1)]
            _, slow = warehouse.query("slow-traces")
            assert slow[0][0] == "t3.1" and slow[0][-1] == 0.002

    def test_cluster_snapshot_ingest(self, tmp_path):
        snapshot = {
            "scheme": "coordinated",
            "architecture": "hierarchical",
            "nodes": {
                "3": {"requests_handled": 10, "cached_bytes": 100,
                      "stats": {"hits": 4, "misses": 6}},
                "8": {"requests_handled": 0, "cached_bytes": 0,
                      "stats": {"hits": 0, "misses": 0}},
            },
        }
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            assert warehouse.ingest(path).added == {"node_stats": 2}
            _, rows = warehouse.sql(
                "SELECT node, hits FROM node_stats ORDER BY node"
            )
            assert rows == [("3", 4), ("8", 0)]


class TestRejectsAndRendering:
    def test_unrecognized_artifact_raises(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text('{"hello": "world"}')
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            with pytest.raises(ValueError, match="unrecognized"):
                warehouse.ingest(path)

    def test_non_artifact_text_raises(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("just some prose\nwith no samples\n")
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            with pytest.raises(ValueError):
                warehouse.ingest(path)

    def test_format_table_and_csv(self):
        headers = ["scheme", "hit_ratio"]
        rows = [("lru", 0.25), ("coordinated", None)]
        table = format_table(headers, rows)
        assert "scheme" in table and "0.25" in table and "-" in table
        csv_text = write_csv(headers, rows)
        assert csv_text.splitlines()[0] == "scheme,hit_ratio"
        assert format_table(headers, []) == "(no rows)"


class TestWarehouseCli:
    def test_ingest_query_report(self, sweep_points, tmp_path, capsys):
        results = tmp_path / "points.json"
        save_points_json(sweep_points, results)
        db = str(tmp_path / "w.sqlite")
        assert main(["warehouse", "--db", db, "ingest", str(results)]) == 0
        out = capsys.readouterr().out
        assert "points+2" in out
        assert main(["warehouse", "--db", db, "query", "scheme-arch"]) == 0
        out = capsys.readouterr().out
        assert "hit_ratio" in out and "coordinated" in out
        assert main(
            ["warehouse", "--db", db, "query", "scheme-arch", "--csv"]
        ) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.startswith("architecture,scheme")
        assert main(["warehouse", "--db", db, "report"]) == 0
        out = capsys.readouterr().out
        assert "points" in out and "scheme-arch" in out

    def test_query_catalog_and_errors(self, tmp_path, capsys):
        db = str(tmp_path / "w.sqlite")
        assert main(["warehouse", "--db", db, "query"]) == 0
        out = capsys.readouterr().out
        assert "scheme-arch" in out and "saturation-knee" in out
        assert main(["warehouse", "--db", db, "query", "nope"]) == 2
        assert "unknown canned query" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["warehouse", "--db", db, "ingest", str(bad)]) == 1
        assert "unrecognized" in capsys.readouterr().err

    def test_sql_escape_hatch(self, sweep_points, tmp_path, capsys):
        results = tmp_path / "points.json"
        save_points_json(sweep_points, results)
        db = str(tmp_path / "w.sqlite")
        assert main(["warehouse", "--db", db, "ingest", str(results)]) == 0
        capsys.readouterr()
        assert main(
            [
                "warehouse", "--db", db, "query",
                "--sql", "SELECT COUNT(*) AS n FROM points",
            ]
        ) == 0
        assert "2" in capsys.readouterr().out


class TestLoadgenReportFlagAlias:
    def test_report_out_and_json_are_one_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["loadgen", "--report-out", "/tmp/r.json"]
        )
        assert args.report_out == "/tmp/r.json"
        legacy = parser.parse_args(["loadgen", "--json", "/tmp/r.json"])
        assert legacy.report_out == "/tmp/r.json"
