"""Tests for the experiment harness (sweeps, tables, presets)."""

from __future__ import annotations

import pytest

from repro.experiments.presets import (
    DEFAULT_CACHE_SIZES,
    SMALL_SCALE,
    STANDARD_SCALE,
    build_architecture,
)
from repro.experiments.sweeps import (
    PROVISION_PROFILES,
    run_cache_size_sweep,
    run_modulo_radius_sweep,
    run_provisioning_sweep,
    run_single,
)
from repro.experiments.tables import (
    figure_series,
    format_sweep_table,
    format_table1,
    metric_value,
    topology_characteristics,
)
from repro.sim.config import SimulationConfig
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def mini_setup():
    workload = WorkloadConfig(
        num_objects=60,
        num_servers=4,
        num_clients=8,
        num_requests=1_500,
        zipf_theta=0.8,
        seed=5,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    arch = build_architecture("hierarchical", workload, seed=0)
    return arch, trace, generator.catalog


class TestPresets:
    def test_default_cache_sizes_span_paper_range(self):
        assert DEFAULT_CACHE_SIZES[0] == 0.001
        assert DEFAULT_CACHE_SIZES[-1] == 0.1

    def test_preset_modifiers(self):
        seeded = SMALL_SCALE.with_seed(42)
        assert seeded.workload.seed == 42
        assert seeded.workload.num_objects == SMALL_SCALE.workload.num_objects
        thetaed = STANDARD_SCALE.with_theta(0.6)
        assert thetaed.workload.zipf_theta == 0.6

    def test_build_architecture_names(self):
        workload = SMALL_SCALE.workload
        assert build_architecture("en-route", workload).name == "en-route"
        assert build_architecture("hierarchical", workload).name == "hierarchical"
        with pytest.raises(ValueError):
            build_architecture("mesh", workload)


class TestSweeps:
    def test_run_single_point(self, mini_setup):
        arch, trace, catalog = mini_setup
        point = run_single(
            arch, trace, catalog, "lru", SimulationConfig(relative_cache_size=0.05)
        )
        assert point.scheme == "lru"
        assert point.relative_cache_size == 0.05
        assert point.summary.requests > 0

    def test_cache_size_sweep_covers_grid(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_cache_size_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["lru", "coordinated"],
            cache_sizes=[0.02, 0.1],
        )
        assert len(points) == 4
        assert {p.scheme for p in points} == {"lru", "coordinated"}
        assert {p.relative_cache_size for p in points} == {0.02, 0.1}

    def test_sweep_passes_scheme_params(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_cache_size_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["modulo"],
            cache_sizes=[0.05],
            scheme_params={"modulo": {"radius": 2}},
        )
        assert points[0].scheme == "modulo(r=2)"

    def test_modulo_radius_sweep(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_modulo_radius_sweep(
            arch, trace, catalog, radii=[1, 2, 4], relative_cache_size=0.05
        )
        assert [p.scheme for p in points] == [
            "modulo(r=1)",
            "modulo(r=2)",
            "modulo(r=4)",
        ]

    def test_provisioning_sweep_covers_profile_grid(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_provisioning_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["costaware", "adaptive"],
            cache_sizes=[0.05],
        )
        assert len(points) == 2 * len(PROVISION_PROFILES)
        profiles = {
            (p.provision or {}).get("profile", "uniform") for p in points
        }
        assert profiles == set(PROVISION_PROFILES)
        for point in points:
            if point.provision is None:
                continue
            assert set(point.provision) == {"profile", "level_multipliers"}
            expected = PROVISION_PROFILES[point.provision["profile"]]
            assert point.provision["level_multipliers"] == {
                str(level): float(m) for level, m in expected.items()
            }

    def test_uniform_profile_matches_plain_sweep(self, mini_setup):
        """The uniform profile is the plain sweep, bit for bit."""
        arch, trace, catalog = mini_setup
        provisioned = run_provisioning_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["costaware"],
            cache_sizes=[0.05],
            profiles={"uniform": {}},
        )
        plain = run_cache_size_sweep(
            arch, trace, catalog, scheme_names=["costaware"], cache_sizes=[0.05]
        )
        assert len(provisioned) == len(plain) == 1
        assert provisioned[0].provision is None
        assert provisioned[0].summary == plain[0].summary

    def test_provisioning_sweep_rejects_empty_profiles(self, mini_setup):
        arch, trace, catalog = mini_setup
        with pytest.raises(ValueError, match="at least one profile"):
            run_provisioning_sweep(
                arch,
                trace,
                catalog,
                scheme_names=["lru"],
                cache_sizes=[0.05],
                profiles={},
            )

    def test_provision_round_trips_through_results_io(
        self, mini_setup, tmp_path
    ):
        from repro.experiments.results_io import (
            load_points_json,
            save_points_json,
        )

        arch, trace, catalog = mini_setup
        points = run_provisioning_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["adaptive"],
            cache_sizes=[0.05],
            profiles={"uniform": {}, "edge-heavy": PROVISION_PROFILES["edge-heavy"]},
        )
        path = tmp_path / "points.json"
        save_points_json(points, path)
        loaded = load_points_json(path)
        assert [p.provision for p in loaded] == [p.provision for p in points]
        assert [p.summary for p in loaded] == [p.summary for p in points]

    def test_provisioned_points_labelled_in_sweep_table(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_provisioning_sweep(
            arch,
            trace,
            catalog,
            scheme_names=["costaware"],
            cache_sizes=[0.05],
            profiles={"uniform": {}, "root-heavy": PROVISION_PROFILES["root-heavy"]},
        )
        table = format_sweep_table(points, metrics=["latency"])
        assert "costaware[root-heavy]" in table
        # Uniform rows keep the bare scheme label.
        assert "costaware[uniform]" not in table

    def test_larger_cache_never_hurts_byte_hit_ratio(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_cache_size_sweep(
            arch, trace, catalog, scheme_names=["lru"], cache_sizes=[0.01, 0.3]
        )
        small, large = sorted(points, key=lambda p: p.relative_cache_size)
        assert large.summary.byte_hit_ratio >= small.summary.byte_hit_ratio


class TestTables:
    def test_table1_characteristics(self):
        arch = build_architecture(
            "en-route",
            WorkloadConfig(
                num_objects=50, num_servers=5, num_clients=10, num_requests=10
            ),
            seed=0,
        )
        chars = topology_characteristics(arch)
        assert chars["total_nodes"] == 100
        assert chars["wan_nodes"] == 50
        assert chars["man_nodes"] == 50
        assert chars["links"] == 173
        text = format_table1(chars)
        assert "Total number of nodes" in text
        assert "100" in text

    def test_metric_value_rejects_unknown(self, mini_setup):
        arch, trace, catalog = mini_setup
        point = run_single(
            arch, trace, catalog, "lru", SimulationConfig(relative_cache_size=0.05)
        )
        with pytest.raises(ValueError):
            metric_value(point.summary, "bogus")

    def test_figure_series_sorted_by_size(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_cache_size_sweep(
            arch, trace, catalog, scheme_names=["lru"], cache_sizes=[0.1, 0.02]
        )
        series = figure_series(points, "latency")
        xs = [x for x, _ in series["lru"]]
        assert xs == sorted(xs)

    def test_format_sweep_table_contains_rows(self, mini_setup):
        arch, trace, catalog = mini_setup
        points = run_cache_size_sweep(
            arch, trace, catalog, scheme_names=["lru"], cache_sizes=[0.05]
        )
        text = format_sweep_table(points, ["latency", "byte_hit_ratio"], title="T")
        assert text.splitlines()[0] == "T"
        assert "lru" in text
        assert "latency" in text
