"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.arch == "en-route"
        assert args.scale == "small"
        assert "coordinated" in args.schemes

    def test_csv_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--sizes", "0.01,0.1", "--schemes", "lru, coordinated"]
        )
        assert args.sizes == [0.01, 0.1]
        assert args.schemes == ["lru", "coordinated"]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Number of WAN nodes" in out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--arch",
                "hierarchical",
                "--schemes",
                "lru",
                "--sizes",
                "0.05",
                "--scale",
                "small",
                "--metrics",
                "latency,byte_hit_ratio",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lru" in out
        assert "byte_hit_ratio" in out

    def test_sweep_rejects_unknown_scheme(self, capsys):
        code = main(["sweep", "--schemes", "bogus", "--sizes", "0.05"])
        assert code == 2
        assert "unknown schemes" in capsys.readouterr().err

    def test_unknown_scheme_error_lists_valid_names(self, capsys):
        from repro.sim.factory import SCHEME_NAMES

        code = main(["sweep", "--schemes", "bogus", "--sizes", "0.05"])
        assert code == 2
        err = capsys.readouterr().err
        for name in SCHEME_NAMES:
            assert name in err

    def test_sweep_profiles_require_provision_flag(self, capsys):
        code = main(
            ["sweep", "--schemes", "lru", "--sizes", "0.05",
             "--profiles", "edge-heavy"]
        )
        assert code == 2
        assert "--provision" in capsys.readouterr().err

    def test_sweep_rejects_unknown_profile(self, capsys):
        code = main(
            ["sweep", "--schemes", "lru", "--sizes", "0.05",
             "--provision", "--profiles", "bogus-profile"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus-profile" in err
        assert "edge-heavy" in err

    def test_provisioning_sweep_runs_new_schemes(self, capsys, tmp_path):
        out_path = tmp_path / "points.json"
        code = main(
            [
                "sweep",
                "--arch",
                "hierarchical",
                "--schemes",
                "costaware,adaptive",
                "--sizes",
                "0.05",
                "--scale",
                "small",
                "--provision",
                "--profiles",
                "uniform,edge-heavy",
                "--metrics",
                "latency",
                "--save",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "costaware[edge-heavy]" in out
        assert "adaptive[edge-heavy]" in out
        assert out_path.exists()

    def test_sweep_chart_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "points.json"
        code = main(
            [
                "sweep",
                "--arch",
                "hierarchical",
                "--schemes",
                "lru",
                "--sizes",
                "0.02,0.1",
                "--metrics",
                "latency",
                "--chart",
                "--save",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "relative cache size (log scale)" in out
        assert out_path.exists()
        from repro.experiments.results_io import load_points_json

        assert len(load_points_json(out_path)) == 2

    def test_analyze_and_replay(self, capsys, tmp_path):
        from repro.workload.generator import (
            BoeingLikeTraceGenerator,
            WorkloadConfig,
        )
        from repro.workload.trace import write_trace_csv

        workload = WorkloadConfig(
            num_objects=60,
            num_servers=4,
            num_clients=8,
            num_requests=2_000,
            seed=4,
        )
        trace = BoeingLikeTraceGenerator(workload).generate()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)

        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "zipf theta" in out
        assert "requests          2000" in out

        assert main(
            ["replay", str(path), "--arch", "hierarchical",
             "--scheme", "lru", "--size", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "byte hit ratio" in out
        assert "latency p50/p90/p99" in out

    def test_replay_rejects_unknown_scheme(self, capsys, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,client_id,object_id,server_id,size\n0.0,0,0,0,10\n")
        assert main(["replay", str(path), "--scheme", "bogus"]) == 2

    def test_radius_ablation(self, capsys):
        code = main(
            [
                "radius",
                "--arch",
                "hierarchical",
                "--radii",
                "1,4",
                "--size",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "modulo(r=1)" in out
        assert "modulo(r=4)" in out


class TestVersionFlag:
    def test_version_long(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_short(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["-V"])
        assert exit_info.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestServeParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scheme == "coordinated"
        assert args.manifest == "cluster.json"
        assert not args.no_metrics

    def test_serve_rejects_unknown_scheme(self, capsys):
        assert main(["serve", "--scheme", "bogus"]) == 2

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.mode == "closed"
        assert args.concurrency == 8

    def test_loadgen_missing_manifest(self, capsys, tmp_path):
        code = main(
            ["loadgen", "--manifest", str(tmp_path / "none.json"),
             "--wait", "0.2"]
        )
        assert code == 2
        assert "not published" in capsys.readouterr().err
