"""End-to-end tests of the instrumentation layer on real runs.

The two properties ISSUE-level acceptance pins down:

* instruments never change metrics -- summaries are bit-identical with
  and without them (including a disabled probe, which must normalize to
  the uninstrumented path);
* the channels agree with each other -- the JSONL placement events
  reconstruct the registry's per-node insertion counts, and the
  coordinated scheme's per-node piggyback attribution sums exactly to
  ``ProtocolStats.overhead_bytes()``.
"""

from __future__ import annotations

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.runner import GridTask, run_grid
from repro.obs import Instruments, PhaseTimers, Probe, StatRegistry
from repro.obs.export import summarize_trace_events
from repro.obs.timers import (
    PHASE_DP_SOLVE,
    PHASE_ROUTING,
    PHASE_SCHEME,
    PHASE_VICTIM_SELECT,
)
from repro.sim.architecture import build_hierarchical_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator


@pytest.fixture(scope="module")
def setup():
    from repro.workload.generator import WorkloadConfig

    workload = WorkloadConfig(
        num_objects=80,
        num_servers=5,
        num_clients=10,
        num_requests=2_000,
        zipf_theta=0.8,
        seed=11,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    arch = build_hierarchical_architecture(
        num_clients=workload.num_clients,
        num_servers=workload.num_servers,
        seed=0,
    )
    return arch, trace, generator.catalog


def run_scheme(setup, name, instruments=None, capacity=60_000):
    arch, trace, catalog = setup
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    scheme = build_scheme(name, cost, capacity, 30)
    engine = SimulationEngine(arch, cost, scheme, warmup_fraction=0.5)
    result = engine.run(trace, instruments=instruments)
    return result, scheme


class TestMetricsUnchanged:
    @pytest.mark.parametrize("name", sorted(SCHEME_NAMES))
    def test_summary_bit_identical_with_instruments(self, setup, name):
        plain, _ = run_scheme(setup, name)
        events = []
        instruments = Instruments(
            probe=Probe(events.append),
            registry=StatRegistry(),
            timers=PhaseTimers(),
            snapshot_every=500,
        )
        instrumented, _ = run_scheme(setup, name, instruments)
        assert instrumented.summary == plain.summary
        assert instrumented.node_stats is not None
        assert events

    def test_disabled_probe_normalizes_to_uninstrumented(self, setup):
        plain, _ = run_scheme(setup, "coordinated")
        sink_calls = []
        bundle = Instruments(probe=Probe(sink_calls.append, enabled=False))
        assert not bundle.active
        result, _ = run_scheme(setup, "coordinated", bundle)
        assert result.summary == plain.summary
        assert result.node_stats is None
        assert result.phase_timings is None
        assert sink_calls == []


class TestRegistryConsistency:
    @pytest.fixture(scope="class")
    def instrumented(self, setup):
        events = []
        instruments = Instruments(
            probe=Probe(events.append),
            registry=StatRegistry(),
            timers=PhaseTimers(),
            snapshot_every=500,
        )
        result, scheme = run_scheme(setup, "coordinated", instruments)
        return result, scheme, instruments, events

    def test_every_request_counted(self, setup, instrumented):
        _, trace, _ = setup
        _, _, instruments, events = instrumented
        registry = instruments.registry
        requests = [e for e in events if e["kind"] == "request"]
        assert len(requests) == len(trace)
        # Each cache-served request hits exactly one node.
        assert registry.total("hits") == sum(
            1 for e in requests if e["hit_node"] is not None
        )

    def test_placement_events_reconstruct_registry_insertions(
        self, instrumented
    ):
        result, _, instruments, events = instrumented
        summary = summarize_trace_events(events)
        registry_insertions = {
            node: stats["insertions"]
            for node, stats in result.node_stats.items()
            if stats["insertions"]
        }
        assert summary.insertions_by_node == registry_insertions

    def test_piggyback_attribution_sums_to_protocol_overhead(
        self, instrumented
    ):
        result, scheme, instruments, _ = instrumented
        total = sum(
            stats["piggyback_bytes"] for stats in result.node_stats.values()
        )
        assert total == scheme.protocol_stats.overhead_bytes()
        assert total > 0

    def test_occupancy_hwm_within_capacity(self, instrumented):
        result, scheme, _, _ = instrumented
        for node, stats in result.node_stats.items():
            assert 0 <= stats["occupancy_hwm"] <= scheme.capacity_for(node)

    def test_eviction_events_match_registry(self, instrumented):
        result, _, _, events = instrumented
        summary = summarize_trace_events(events)
        registry_evictions = {
            node: stats["evictions"]
            for node, stats in result.node_stats.items()
            if stats["evictions"]
        }
        assert summary.evictions_by_node == registry_evictions
        freed = {
            node: stats["evicted_bytes"]
            for node, stats in result.node_stats.items()
            if stats["evicted_bytes"]
        }
        assert summary.freed_bytes_by_node == freed

    def test_phase_timers_cover_all_phases(self, instrumented):
        result = instrumented[0]
        timings = result.phase_timings
        assert set(timings) >= {
            PHASE_ROUTING,
            PHASE_SCHEME,
            PHASE_DP_SOLVE,
            PHASE_VICTIM_SELECT,
        }
        for phase in (PHASE_ROUTING, PHASE_SCHEME):
            assert timings[phase]["calls"] == 2_000
            assert timings[phase]["seconds"] > 0
        # DP solving is a strict sub-phase of scheme processing.
        assert (
            timings[PHASE_DP_SOLVE]["seconds"]
            < timings[PHASE_SCHEME]["seconds"]
        )

    def test_periodic_snapshots_taken(self, instrumented, setup):
        _, trace, _ = setup
        _, _, instruments, events = instrumented
        expected = len(trace) // 500
        assert len(instruments.registry.snapshots) == expected
        snapshot_events = [e for e in events if e["kind"] == "snapshot"]
        assert len(snapshot_events) == expected
        assert snapshot_events[0]["request_index"] == 500
        # Counters are monotone across snapshots.
        first = instruments.registry.snapshots[0]["nodes"]
        last = instruments.registry.snapshots[-1]["nodes"]
        for node, stats in first.items():
            assert last[node]["misses"] >= stats["misses"]


class TestRunnerIntegration:
    def test_run_grid_node_stats_roundtrip(self, setup, tmp_path):
        arch, trace, catalog = setup
        config = SimulationConfig(relative_cache_size=0.02)
        tasks = [GridTask(scheme=name, config=config) for name in ("lru", "lnc-r")]
        ckpt = tmp_path / "grid.jsonl"
        result = run_grid(
            arch, trace, catalog, tasks, checkpoint_path=ckpt, node_stats=True
        )
        for record in result.records:
            assert record.node_stats
            assert all(isinstance(k, str) for k in record.node_stats)
            assert sum(s["misses"] for s in record.node_stats.values()) > 0
        # Resume reuses the checkpointed snapshots verbatim.
        resumed = run_grid(
            arch,
            trace,
            catalog,
            tasks,
            checkpoint_path=ckpt,
            resume=True,
            node_stats=True,
        )
        assert all(r.reused for r in resumed.records)
        assert [r.node_stats for r in resumed.records] == [
            r.node_stats for r in result.records
        ]

    def test_node_stats_off_by_default(self, setup):
        arch, trace, catalog = setup
        config = SimulationConfig(relative_cache_size=0.02)
        result = run_grid(
            arch, trace, catalog, [GridTask(scheme="lru", config=config)]
        )
        assert result.records[0].node_stats is None
