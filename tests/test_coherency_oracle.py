"""The coherency differential oracle and protocol-overhead goldens.

Three contracts pin the invalidation subsystem:

* **Seam transparency** -- running the engine with an explicit
  ``InbandCoherency`` policy is bit-identical to running with none (the
  default path), for every scheme on both architectures.
* **Channel oracle** -- a zero-latency channel over per-object groups
  delivers each event at exactly the code point in-band invalidation
  uses, so metrics reproduce in-band bit-for-bit with zero staleness.
* **Golden protocol counters** -- the exact ``ProtocolStats`` counters
  (including the new in-band ``invalidations`` frames) for the
  coordinated scheme on a pinned workload.  The pre-existing counters
  (reports, tags, decisions, accumulators) are the regression guard:
  pricing invalidation traffic must not perturb them.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.coherency import CoherencyConfig, build_policy
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=200,
    num_servers=4,
    num_clients=12,
    num_requests=1500,
    zipf_theta=0.8,
    seed=11,
)
CONFIG = SimulationConfig(relative_cache_size=0.02, dcache_ratio=3.0)
UPDATE_RATE = 0.8
UPDATE_SEED = 7


@pytest.fixture(scope="module")
def workload():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    from repro.workload.updates import generate_update_events

    updates = generate_update_events(
        WORKLOAD.num_objects,
        trace.duration,
        update_rate=UPDATE_RATE,
        seed=UPDATE_SEED,
    )
    assert updates, "the oracle needs a non-empty update stream"
    return trace, generator.catalog, updates


def run_once(arch_name, scheme_name, trace, catalog, updates, coherency=None):
    arch = build_architecture(arch_name, WORKLOAD, seed=0)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    scheme = build_scheme(
        scheme_name,
        cost,
        CONFIG.capacity_bytes(catalog.total_bytes),
        CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size),
    )
    policy = (
        build_policy(coherency, catalog.num_objects)
        if coherency is not None
        else None
    )
    engine = SimulationEngine(arch, cost, scheme)
    result = engine.run(trace, updates=updates, coherency=policy)
    return result, scheme


class TestDifferentialOracle:
    @pytest.mark.parametrize("arch_name", ["hierarchical", "en-route"])
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_NAMES))
    def test_channel_zero_latency_matches_inband(
        self, workload, arch_name, scheme_name
    ):
        trace, catalog, updates = workload
        default, _ = run_once(
            arch_name, scheme_name, trace, catalog, updates
        )
        inband, _ = run_once(
            arch_name, scheme_name, trace, catalog, updates,
            CoherencyConfig(mode="inband"),
        )
        channel, _ = run_once(
            arch_name, scheme_name, trace, catalog, updates,
            CoherencyConfig(mode="channel"),
        )
        # Seam transparency: the explicit in-band policy is the default.
        assert inband.summary == default.summary
        assert inband.updates_applied == default.updates_applied
        assert inband.copies_invalidated == default.copies_invalidated
        # The oracle: zero-latency channel + per-object groups == in-band.
        assert channel.summary == inband.summary
        assert channel.updates_applied == inband.updates_applied
        assert channel.copies_invalidated == inband.copies_invalidated
        # Accounting surfaces only on explicit policies.
        assert default.coherency is None
        assert inband.coherency is not None
        assert channel.coherency is not None
        assert channel.coherency["mode"] == "channel"
        assert channel.coherency["stale_hits"] == 0
        assert channel.coherency["stale_bytes"] == 0
        assert channel.coherency["events_published"] == len(updates)
        assert inband.coherency["events_published"] == len(updates)
        assert inband.coherency["inv_bytes"] > 0
        assert channel.coherency["inv_bytes"] == 0
        assert channel.coherency["channel_bytes"] > 0

    def test_polled_channel_measures_staleness(self, workload):
        trace, catalog, updates = workload
        inband, _ = run_once(
            "en-route", "lru", trace, catalog, updates,
            CoherencyConfig(mode="inband"),
        )
        polled, _ = run_once(
            "en-route", "lru", trace, catalog, updates,
            CoherencyConfig(mode="channel", poll_interval=5.0),
        )
        stats = polled.coherency
        assert stats["polls"] > 0
        assert stats["event_deliveries"] > 0
        # Copies linger between polls, so some stale service shows up
        # either as stale hits or as recorded staleness windows.
        assert stats["staleness_windows"] > 0
        assert stats["staleness_p99"] >= stats["staleness_p50"] >= 0.0
        assert stats["staleness_max"] <= 5.0 + trace.duration
        # One window per stale copy the channel actually removed.
        assert stats["staleness_windows"] <= stats["copies_invalidated"]
        # In-band pays inv frames; the channel pays event/poll bytes.
        assert stats["inv_bytes"] == 0
        assert inband.coherency["channel_bytes"] == 0

    def test_grouped_streams_keep_modes_comparable(self, workload):
        """Group events: in-band expansion == zero-latency channel."""
        trace, catalog, _ = workload
        from repro.workload.updates import generate_group_update_events

        config = CoherencyConfig(mode="inband", group_count=12)
        groups = config.build_groups(catalog.num_objects)
        group_updates = generate_group_update_events(
            groups, trace.duration, update_rate=UPDATE_RATE, seed=UPDATE_SEED
        )
        assert group_updates
        inband, _ = run_once(
            "hierarchical", "coordinated", trace, catalog, group_updates,
            config,
        )
        channel, _ = run_once(
            "hierarchical", "coordinated", trace, catalog, group_updates,
            CoherencyConfig(mode="channel", group_count=12),
        )
        assert channel.summary == inband.summary
        assert channel.copies_invalidated == inband.copies_invalidated
        # One published event per group update on the channel; one
        # per *member object* in-band (the expansion is the price).
        assert channel.coherency["events_published"] == len(group_updates)
        assert inband.coherency["events_published"] >= len(group_updates)


class TestGoldenProtocolCounters:
    """Exact counters for coordinated on the pinned workload.

    requests/reports/no_descriptor_tags/decisions/accumulators existed
    before invalidation pricing; their values here were captured at the
    commit introducing it and must never drift.
    """

    GOLDEN = {
        "hierarchical": dict(
            requests=1500,
            reports=473,
            no_descriptor_tags=3964,
            decisions=261,
            responses_with_accumulator=1242,
            invalidations=1120,
            overhead=43700,
            updates=28,
            copies=4,
            hit_ratio=0.39066666666666666,
            mean_latency=0.6838547319635208,
        ),
        "en-route": dict(
            requests=1500,
            reports=960,
            no_descriptor_tags=8046,
            decisions=296,
            responses_with_accumulator=1250,
            invalidations=2800,
            overhead=83916,
            updates=28,
            copies=8,
            hit_ratio=0.5,
            mean_latency=0.3572798075195245,
        ),
    }

    @pytest.mark.parametrize("arch_name", sorted(GOLDEN))
    def test_counters(self, workload, arch_name):
        trace, catalog, updates = workload
        result, scheme = run_once(
            arch_name, "coordinated", trace, catalog, updates
        )
        stats = scheme.protocol_stats
        golden = self.GOLDEN[arch_name]
        assert stats.requests == golden["requests"]
        assert stats.reports == golden["reports"]
        assert stats.no_descriptor_tags == golden["no_descriptor_tags"]
        assert stats.decisions == golden["decisions"]
        assert (
            stats.responses_with_accumulator
            == golden["responses_with_accumulator"]
        )
        assert stats.invalidations == golden["invalidations"]
        assert stats.overhead_bytes() == golden["overhead"]
        assert result.updates_applied == golden["updates"]
        assert result.copies_invalidated == golden["copies"]
        assert result.summary.hit_ratio == golden["hit_ratio"]
        assert result.summary.mean_latency == golden["mean_latency"]

    def test_overhead_prices_invalidations(self, workload):
        """inv frames are 12 B each on top of the pre-existing bytes."""
        trace, catalog, updates = workload
        _, scheme = run_once(
            "hierarchical", "coordinated", trace, catalog, updates
        )
        stats = scheme.protocol_stats
        assert (
            stats.overhead_bytes()
            - stats.overhead_bytes(inv_frame_bytes=0)
            == stats.invalidations * 12
        )
