"""Span-tree reconstruction: ids back into request trees.

Pure-data tests over :mod:`repro.obs.spans`: synthetic span events (the
exact dicts the serve tracer emits) must reassemble into parent-linked
trees regardless of event order, file interleaving, duplicates, missing
parents or foreign event kinds mixed in.  The live end of the pipeline
-- real clusters emitting real spans -- is covered by
``tests/test_serve_tracing.py``.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.spans import Span, SpanTree, reconstruct_traces
from repro.serve.tracing import shard_trace_path


def walk_event(trace, span, parent, node, index, **extra):
    event = {
        "kind": "span",
        "trace": trace,
        "span": span,
        "parent": parent,
        "node": node,
        "index": index,
        "op": "walk",
        "status": "ok",
    }
    event.update(extra)
    return event


def chain_events():
    """A three-hop walk 3 -> 8 -> 0, served at index 2."""
    return [
        walk_event("t3.1", "s3.2", None, 3, 0, shard=0,
                   path=[3, 8, 0], piggyback=10),
        walk_event("t3.1", "s8.1", "s3.2", 8, 1, shard=1, xshard=True),
        walk_event("t3.1", "s0.1", "s8.1", 0, 2, shard=1, hit_index=2),
    ]


class TestReconstruction:
    def test_chain_links_and_order(self):
        trees = reconstruct_traces(chain_events())
        assert set(trees) == {"t3.1"}
        tree = trees["t3.1"]
        assert tree.span_count == 3
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.span_id == "s3.2" and root.index == 0
        assert [s.node for s in tree.walk_spans()] == [3, 8, 0]
        assert tree.nodes_visited() == [3, 8, 0]
        assert tree.shards() == {0, 1}
        assert tree.hit_index() == 2
        # One child per hop down the chain.
        assert root.children[0].span_id == "s8.1"
        assert root.children[0].children[0].span_id == "s0.1"

    def test_order_and_interleaving_agnostic(self):
        events = chain_events()
        other = [
            walk_event("t5.1", "s5.2", None, 5, 0),
            walk_event("t5.1", "s9.1", "s5.2", 9, 1, hit_index=1),
        ]
        shuffled = [other[1], events[2], events[0], other[0], events[1]]
        trees = reconstruct_traces(shuffled)
        assert trees["t3.1"].nodes_visited() == [3, 8, 0]
        assert trees["t5.1"].nodes_visited() == [5, 9]

    def test_foreign_kinds_and_malformed_spans_skipped(self):
        events = chain_events() + [
            {"kind": "request", "hit_node": 4},
            {"kind": "eviction", "node": 2, "victims": [1]},
            {"kind": "span", "trace": None, "span": "sX"},
            {"kind": "span", "span": "orphaned-no-trace"},
            {},
        ]
        trees = reconstruct_traces(events)
        assert set(trees) == {"t3.1"}
        assert trees["t3.1"].span_count == 3

    def test_duplicate_span_last_event_wins(self):
        events = chain_events()
        events.append(
            walk_event("t3.1", "s0.1", "s8.1", 0, 2, hit_index=2, retries=4)
        )
        tree = reconstruct_traces(events)["t3.1"]
        assert tree.span_count == 3
        assert tree.total_retries() == 4

    def test_missing_parent_promotes_orphan_to_root(self):
        events = chain_events()
        del events[1]  # the middle hop's span was sampled away / lost
        tree = reconstruct_traces(events)["t3.1"]
        assert tree.span_count == 2
        assert {root.span_id for root in tree.roots} == {"s3.2", "s0.1"}
        # The walk view still renders both surviving hops in path order.
        assert tree.nodes_visited() == [3, 0]

    def test_self_parent_cannot_recurse(self):
        event = walk_event("t1.1", "s1.1", "s1.1", 1, 0)
        tree = reconstruct_traces([event])["t1.1"]
        assert len(tree.roots) == 1
        assert tree.roots[0].children == []

    def test_failover_facts(self):
        events = [
            walk_event("t3.1", "s3.2", None, 3, 0, path=[3, 8, 5, 0]),
            walk_event("t3.1", "s5.1", "s3.2", 5, 2, skipped=[1],
                       failovers=1, retries=2),
            walk_event("t3.1", "s0.1", "s5.1", 0, 3, hit_index=3),
        ]
        tree = reconstruct_traces(events)["t3.1"]
        assert tree.skipped_indices() == [1]
        assert tree.total_failovers() == 1
        assert tree.total_retries() == 2
        assert tree.nodes_visited() == [3, 5, 0]

    def test_inv_spans_form_flat_forest(self):
        events = [
            {"kind": "span", "trace": "tinv.1", "span": f"s{n}.1",
             "parent": None, "node": n, "op": "inv", "status": "ok"}
            for n in (0, 3, 8)
        ]
        tree = reconstruct_traces(events)["tinv.1"]
        assert tree.span_count == 3
        assert len(tree.roots) == 3
        assert tree.walk_spans() == []  # inv spans are not walk hops
        assert tree.hit_index() is None

    def test_format_renders_every_span(self):
        tree = reconstruct_traces(chain_events())["t3.1"]
        text = tree.format()
        assert "trace t3.1: 3 spans" in text
        assert "node 8@shard1" in text
        assert "hit_index=2" in text

    def test_from_event_rejects_non_spans(self):
        assert Span.from_event({"kind": "request"}) is None
        assert Span.from_event({"kind": "span", "trace": "t"}) is None


class TestShardTracePath:
    def test_suffix_inserted_before_extension(self):
        assert shard_trace_path("trace.jsonl", 0) == Path("trace.shard0.jsonl")
        assert shard_trace_path(Path("/x/t.jsonl"), 3) == Path(
            "/x/t.shard3.jsonl"
        )

    def test_bare_name_gets_suffix_appended(self):
        assert shard_trace_path("spans", 1) == Path("spans.shard1")
