"""Tests for the coherency extension (update events + invalidation)."""

from __future__ import annotations

import pytest

from repro.core.coordinated import CoordinatedScheme
from repro.costs.model import LatencyCostModel
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.sim.architecture import build_hierarchical_architecture
from repro.sim.engine import SimulationEngine
from repro.topology.builder import build_chain
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.updates import UpdateEvent, generate_update_events


class TestUpdateEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateEvent(-1.0, 0)
        with pytest.raises(ValueError):
            UpdateEvent(0.0, -1)
        with pytest.raises(ValueError):
            generate_update_events(0, 10.0, 1.0)
        with pytest.raises(ValueError):
            generate_update_events(10, -1.0, 1.0)
        with pytest.raises(ValueError):
            generate_update_events(10, 10.0, -1.0)

    def test_zero_rate_empty(self):
        assert generate_update_events(10, 100.0, 0.0) == []
        assert generate_update_events(10, 0.0, 5.0) == []

    def test_events_time_ordered_and_in_range(self):
        events = generate_update_events(
            50, duration=100.0, update_rate=2.0, seed=3
        )
        assert events
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= e.time <= 100.0 for e in events)
        assert all(0 <= e.object_id < 50 for e in events)

    def test_deterministic_by_seed(self):
        a = generate_update_events(50, 100.0, 2.0, seed=4)
        b = generate_update_events(50, 100.0, 2.0, seed=4)
        assert a == b

    def test_rate_roughly_respected(self):
        events = generate_update_events(100, 1000.0, 3.0, seed=0)
        assert 2500 < len(events) < 3500


class TestInvalidation:
    def test_lru_scheme_invalidation(self):
        network = build_chain([1.0] * 3)
        cost = LatencyCostModel(network, 100.0)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=1000)
        path = [0, 1, 2, 3]
        scheme.process_request(path, 7, 100, now=0.0)
        assert scheme.has_object(0, 7) and scheme.has_object(2, 7)
        removed = scheme.invalidate_object(7)
        assert removed == 3
        assert not any(scheme.has_object(n, 7) for n in range(3))
        assert scheme.invalidate_object(7) == 0

    def test_coordinated_invalidation_keeps_statistics(self):
        network = build_chain([1.0] * 3)
        cost = LatencyCostModel(network, 100.0)
        scheme = CoordinatedScheme(cost, capacity_bytes=1000, dcache_entries=8)
        path = [0, 1, 2, 3]
        for t in range(5):
            scheme.process_request(path, 7, 100, now=float(t * 10))
        cached = [n for n in range(3) if scheme.has_object(n, 7)]
        assert cached
        removed = scheme.invalidate_object(7)
        assert removed == len(cached)
        # Descriptors (with history) survived in the d-caches.
        for node in cached:
            descriptor = scheme.node_state(node).dcache.peek(7)
            assert descriptor is not None
            assert descriptor.estimator.reference_count > 1
        scheme.check_invariants()


class TestEngineWithUpdates:
    def _run(self, update_rate):
        workload = WorkloadConfig(
            num_objects=80,
            num_servers=4,
            num_clients=10,
            num_requests=3_000,
            seed=6,
        )
        generator = BoeingLikeTraceGenerator(workload)
        trace = generator.generate()
        arch = build_hierarchical_architecture(
            workload.num_clients, workload.num_servers, seed=0
        )
        cost = LatencyCostModel(arch.network, generator.catalog.mean_size)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=100_000)
        updates = generate_update_events(
            workload.num_objects, trace.duration, update_rate, seed=1
        )
        engine = SimulationEngine(arch, cost, scheme)
        return engine.run(trace, updates=updates)

    def test_no_updates_reports_zero(self):
        result = self._run(update_rate=0.0)
        assert result.updates_applied == 0
        assert result.copies_invalidated == 0

    def test_updates_applied_and_hurt_hit_ratio(self):
        quiet = self._run(update_rate=0.0)
        churned = self._run(update_rate=5.0)
        assert churned.updates_applied > 0
        assert churned.copies_invalidated > 0
        assert churned.summary.byte_hit_ratio < quiet.summary.byte_hit_ratio
