"""Tests for the workload substrate: catalog, Zipf sampling, traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.catalog import ObjectCatalog, SizeDistribution
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.trace import Trace, TraceRecord, read_trace_csv, write_trace_csv
from repro.workload.zipf import ZipfSampler


class TestSizeDistribution:
    def test_sizes_within_bounds(self):
        dist = SizeDistribution()
        rng = np.random.default_rng(0)
        sizes = dist.sample(5000, rng)
        assert (sizes >= dist.min_size).all()
        assert (sizes <= dist.max_size).all()

    def test_heavy_tail_raises_mean_above_median(self):
        dist = SizeDistribution()
        rng = np.random.default_rng(1)
        sizes = dist.sample(20000, rng)
        assert sizes.mean() > np.median(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeDistribution(tail_fraction=1.5)
        with pytest.raises(ValueError):
            SizeDistribution(min_size=0)
        with pytest.raises(ValueError):
            SizeDistribution(min_size=100, max_size=50)
        with pytest.raises(ValueError):
            SizeDistribution(tail_alpha=0)


class TestObjectCatalog:
    def test_generate_shapes(self):
        catalog = ObjectCatalog.generate(num_objects=100, num_servers=7, seed=0)
        assert catalog.num_objects == 100
        assert catalog.num_servers <= 7
        assert catalog.total_bytes == catalog.sizes.sum()
        assert catalog.mean_size == pytest.approx(catalog.total_bytes / 100)

    def test_deterministic_by_seed(self):
        a = ObjectCatalog.generate(50, 5, seed=9)
        b = ObjectCatalog.generate(50, 5, seed=9)
        assert (a.sizes == b.sizes).all()
        assert (a.servers == b.servers).all()

    def test_objects_of_server_partition(self):
        catalog = ObjectCatalog.generate(200, 4, seed=2)
        all_objects = sorted(
            oid
            for server in range(catalog.num_servers)
            for oid in catalog.objects_of_server(server)
        )
        assert all_objects == list(range(200))

    def test_size_and_server_lookup(self, tiny_catalog):
        for oid in range(tiny_catalog.num_objects):
            assert tiny_catalog.size(oid) > 0
            assert 0 <= tiny_catalog.server(oid) < tiny_catalog.num_servers

    def test_views_are_readonly(self, tiny_catalog):
        with pytest.raises(ValueError):
            tiny_catalog.sizes[0] = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectCatalog(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            ObjectCatalog(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            ObjectCatalog(np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            ObjectCatalog(np.array([5]), np.array([-1]))
        with pytest.raises(ValueError):
            ObjectCatalog.generate(0, 1)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, theta=0.8)
        total = sum(sampler.probability(r) for r in range(100))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(50, theta=0.8)
        probs = [sampler.probability(r) for r in range(50)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_zipf_law_ratio(self):
        # p(rank 0) / p(rank 9) == 10^theta.
        theta = 0.7
        sampler = ZipfSampler(1000, theta=theta)
        ratio = sampler.probability(0) / sampler.probability(9)
        assert ratio == pytest.approx(10**theta)

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, theta=0.0)
        for r in range(10):
            assert sampler.probability(r) == pytest.approx(0.1)

    def test_samples_in_range_and_skewed(self):
        sampler = ZipfSampler(100, theta=1.0)
        rng = np.random.default_rng(0)
        samples = sampler.sample(20000, rng)
        assert samples.min() >= 0
        assert samples.max() < 100
        top_share = (samples < 10).mean()
        assert top_share > 0.4  # head dominates under theta=1

    def test_empirical_matches_theory(self):
        sampler = ZipfSampler(20, theta=0.8)
        rng = np.random.default_rng(7)
        samples = sampler.sample(200_000, rng)
        empirical = np.bincount(samples, minlength=20) / len(samples)
        theoretical = np.array([sampler.probability(r) for r in range(20)])
        assert np.abs(empirical - theoretical).max() < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.8)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.1)
        sampler = ZipfSampler(10, 0.8)
        with pytest.raises(IndexError):
            sampler.probability(10)
        with pytest.raises(ValueError):
            sampler.sample(-1, np.random.default_rng(0))


class TestTrace:
    def _records(self):
        return [
            TraceRecord(0.0, client_id=0, object_id=5, server_id=1, size=100),
            TraceRecord(1.0, client_id=1, object_id=5, server_id=1, size=100),
            TraceRecord(2.0, client_id=0, object_id=7, server_id=2, size=300),
            TraceRecord(3.5, client_id=2, object_id=5, server_id=1, size=100),
        ]

    def test_basic_accessors(self):
        trace = Trace(self._records())
        assert len(trace) == 4
        assert trace.duration == 3.5
        assert trace.unique_objects() == 2
        assert trace[1].client_id == 1
        assert trace.total_requested_bytes() == 600
        assert trace.total_requested_bytes(start=2) == 400

    def test_rejects_unordered_records(self):
        records = self._records()
        records[0], records[1] = records[1], records[0]
        with pytest.raises(ValueError):
            Trace(records)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1.0, 0, 0, 0, 10)
        with pytest.raises(ValueError):
            TraceRecord(0.0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            TraceRecord(0.0, -1, 0, 0, 10)

    def test_warmup_split(self):
        trace = Trace(self._records())
        assert trace.split_warmup(0.5) == (2, 4)
        assert trace.split_warmup(0.0) == (0, 4)
        with pytest.raises(ValueError):
            trace.split_warmup(1.0)

    def test_most_popular_and_filter(self):
        trace = Trace(self._records())
        assert trace.most_popular(1) == [5]
        sub = trace.filter_objects([5])
        assert len(sub) == 3
        assert sub.unique_objects() == 1

    def test_csv_roundtrip(self, tmp_path):
        trace = Trace(self._records())
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a == b

    def test_csv_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError):
            read_trace_csv(path)


class TestBoeingLikeGenerator:
    def test_trace_matches_config(self, tiny_workload):
        generator = BoeingLikeTraceGenerator(tiny_workload)
        trace = generator.generate()
        assert len(trace) == tiny_workload.num_requests
        assert all(r.object_id < tiny_workload.num_objects for r in trace)
        assert all(r.client_id < tiny_workload.num_clients for r in trace)

    def test_records_consistent_with_catalog(self, tiny_workload):
        generator = BoeingLikeTraceGenerator(tiny_workload)
        trace = generator.generate()
        catalog = generator.catalog
        for record in trace:
            assert record.size == catalog.size(record.object_id)
            assert record.server_id == catalog.server(record.object_id)

    def test_deterministic_by_seed(self, tiny_workload):
        a = BoeingLikeTraceGenerator(tiny_workload).generate()
        b = BoeingLikeTraceGenerator(tiny_workload).generate()
        assert a.records == b.records

    def test_popularity_is_zipf_skewed(self):
        config = WorkloadConfig(
            num_objects=200,
            num_servers=5,
            num_clients=20,
            num_requests=30_000,
            zipf_theta=0.9,
            seed=3,
        )
        trace = BoeingLikeTraceGenerator(config).generate()
        counts = {}
        for record in trace:
            counts[record.object_id] = counts.get(record.object_id, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        top10_share = sum(ranked[:10]) / len(trace)
        assert top10_share > 0.25

    def test_times_nondecreasing(self, tiny_workload):
        trace = BoeingLikeTraceGenerator(tiny_workload).generate()
        times = [r.time for r in trace]
        assert times == sorted(times)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_objects=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=0)
        with pytest.raises(ValueError):
            WorkloadConfig(request_rate=0)
        with pytest.raises(ValueError):
            WorkloadConfig(zipf_theta=-1)
