"""Coherency accounting through the warehouse: every artifact family.

Sweep points, loadgen reports and cluster snapshots all carry the same
:meth:`CoherencyStats.to_dict`-shaped section; each must land as one
row in the ``coherency`` table with the right ``context``, and the
``coherency-modes`` canned query must line in-band and channel runs up
side by side.  Ingest stays idempotent.
"""

from __future__ import annotations

import json

import pytest

from repro.coherency import CoherencyConfig
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.experiments.results_io import save_points_json
from repro.experiments.runner import GridTask, execute_point
from repro.obs.warehouse import Warehouse
from repro.sim.config import SimulationConfig
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.updates import generate_update_events

WORKLOAD = WorkloadConfig(
    num_objects=60,
    num_servers=2,
    num_clients=6,
    num_requests=250,
    zipf_theta=0.8,
    seed=5,
)
CONFIG = SimulationConfig(relative_cache_size=0.02)


@pytest.fixture(scope="module")
def mode_points():
    """One real sim point per coherency mode, same workload."""
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    updates = generate_update_events(
        WORKLOAD.num_objects, trace.duration, update_rate=0.6, seed=3
    )
    arch = build_architecture("hierarchical", WORKLOAD, seed=2)
    points = []
    for mode in ("inband", "channel"):
        point, _ = execute_point(
            arch,
            trace,
            catalog,
            GridTask(scheme="lru", config=CONFIG, params={}),
            updates=updates,
            coherency=CoherencyConfig(mode=mode),
        )
        points.append(point)
    return points


class TestSimPoints:
    def test_one_row_per_mode(self, mode_points, tmp_path):
        results = tmp_path / "results.json"
        save_points_json(mode_points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            ingested = warehouse.ingest(results)
            assert ingested.added["coherency"] == 2
            headers, rows = warehouse.query("coherency-modes")
            assert rows and len(rows) == 2
            by_mode = {row[headers.index("mode")]: row for row in rows}
            assert set(by_mode) == {"inband", "channel"}
            for row in rows:
                assert row[headers.index("context")] == "sim"
                assert row[headers.index("scheme")] == "lru"
                assert row[headers.index("architecture")] == "hierarchical"

    def test_origin_load_is_miss_traffic(self, mode_points, tmp_path):
        results = tmp_path / "results.json"
        save_points_json(mode_points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            warehouse.ingest(results)
            headers, rows = warehouse.query("coherency-modes")
            point = mode_points[0]
            expected = point.summary.requests * (
                1.0 - point.summary.hit_ratio
            )
            origin = rows[0][headers.index("origin_load")]
            assert origin == pytest.approx(expected)

    def test_reingest_adds_nothing(self, mode_points, tmp_path):
        results = tmp_path / "results.json"
        save_points_json(mode_points, results)
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            warehouse.ingest(results)
            again = warehouse.ingest(results)
            assert again.total_added == 0


def channel_stats(**overrides):
    stats = {
        "mode": "channel",
        "events_published": 9,
        "event_deliveries": 36,
        "polls": 0,
        "subscriptions": 4,
        "catchups": 1,
        "channel_bytes": 800,
        "inv_frames": 0,
        "inv_bytes": 0,
        "protocol_bytes": 800,
        "stale_hits": 2,
        "stale_bytes": 64,
        "copies_invalidated": 5,
        "stale_copies_evicted": 1,
        "staleness_windows": 5,
        "staleness_p50": 0.5,
        "staleness_p99": 2.0,
        "staleness_max": 2.5,
    }
    stats.update(overrides)
    return stats


class TestLoadReportAndSnapshot:
    def test_load_report_row(self, tmp_path):
        document = {
            "mode": "sequential",
            "requests_total": 100,
            "requests_measured": 50,
            "modelled": {"hit_ratio": 0.4, "mean_latency": 0.8},
            "origin_served": 30,
            "scheme": "lru",
            "arch": "hierarchical",
            "coherency": channel_stats(),
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(document))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            ingested = warehouse.ingest(path)
            assert ingested.added["coherency"] == 1
            headers, rows = warehouse.query("coherency-modes")
            (row,) = rows
            assert row[headers.index("context")] == "loadgen"
            assert row[headers.index("origin_load")] == 30
            assert row[headers.index("stale_hits")] == 2
            assert row[headers.index("staleness_p99")] == 2.0

    def test_snapshot_row(self, tmp_path):
        document = {
            "scheme": "coordinated",
            "architecture": "en-route",
            "nodes": {},
            "coherency": channel_stats(mode="inband", inv_frames=40,
                                       inv_bytes=480, channel_bytes=0),
        }
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(document))
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            ingested = warehouse.ingest(path)
            assert ingested.added["coherency"] == 1
            headers, rows = warehouse.query("coherency-modes")
            (row,) = rows
            assert row[headers.index("context")] == "snapshot"
            assert row[headers.index("mode")] == "inband"
            # A snapshot has no request totals: origin load is unknown,
            # never fabricated.
            assert row[headers.index("origin_load")] is None

    def test_modes_line_up_across_contexts(self, mode_points, tmp_path):
        """The comparison-table query: sim + live rows, both modes."""
        results = tmp_path / "results.json"
        save_points_json(mode_points, results)
        report = tmp_path / "report.json"
        report.write_text(
            json.dumps(
                {
                    "mode": "sequential",
                    "modelled": {},
                    "origin_served": 11,
                    "scheme": "lru",
                    "arch": "hierarchical",
                    "coherency": channel_stats(),
                }
            )
        )
        with Warehouse(tmp_path / "w.sqlite") as warehouse:
            warehouse.ingest(results)
            warehouse.ingest(report)
            headers, rows = warehouse.query("coherency-modes")
            assert len(rows) == 3
            contexts = {row[headers.index("context")] for row in rows}
            assert contexts == {"sim", "loadgen"}
            modes = {row[headers.index("mode")] for row in rows}
            assert modes == {"inband", "channel"}
