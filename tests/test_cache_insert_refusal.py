"""Regression tests for the NCL cost_loss shadowing fix and for graceful
refusal of infeasible insertions (never a bare AssertionError)."""

from __future__ import annotations

import random

import pytest

from repro.cache.base import CacheTooSmallError
from repro.cache.descriptors import ObjectDescriptor
from repro.cache.gds import GDSCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.ncl import NCLCache
from repro.cache.ncl_heap import HeapNCLCache

ALL_CACHE_TYPES = [LRUCache, LFUCache, NCLCache, HeapNCLCache, GDSCache]


def desc(object_id: int, size: int, penalty: float = 1.0) -> ObjectDescriptor:
    return ObjectDescriptor(object_id, size, miss_penalty=penalty)


class TestCostLossRegression:
    """cost_loss must not let its victim loop clobber the parameter."""

    def _loaded_cache(self) -> NCLCache:
        cache = NCLCache(100)
        for object_id, size, penalty in ((1, 40, 1.0), (2, 30, 2.0), (3, 30, 3.0)):
            d = desc(object_id, size, penalty)
            d.record_access(0.0)
            cache.insert(d, now=0.0)
        return cache

    def test_greedy_prefix_loss_matches_manual_sum(self):
        cache = self._loaded_cache()
        # Needs 50 B; free 0 B.  Greedy prefix over ascending NCL.
        order = cache.eviction_order()
        expected = 0.0
        freed = 0
        for victim in order:
            entry = cache.entry(victim)
            expected += entry.descriptor.cost_rate(1.0)
            freed += entry.size
            if freed >= 50:
                break
        assert cache.cost_loss(99, 50, now=1.0) == pytest.approx(expected)

    def test_loop_does_not_clobber_parameter(self):
        cache = self._loaded_cache()
        # Same call repeated must be pure: identical result, no reordering.
        before = cache.eviction_order()
        first = cache.cost_loss(99, 50, now=1.0)
        second = cache.cost_loss(99, 50, now=1.0)
        assert first == second
        assert cache.eviction_order() == before

    def test_infeasible_returns_none_for_uncached_object(self):
        cache = self._loaded_cache()
        # 100 B capacity entirely full; asking for a 100 B object is
        # feasible (purge everything), anything above capacity is None.
        assert cache.cost_loss(99, 100, now=1.0) is not None
        assert cache.cost_loss(99, 101, now=1.0) is None
        # A *cached* object costs nothing regardless of the loop's state.
        assert cache.cost_loss(1, 40, now=1.0) == 0.0

    def test_list_and_heap_agree(self):
        for needed in (10, 35, 60, 100):
            caches = []
            for cache_type in (NCLCache, HeapNCLCache):
                cache = cache_type(100)
                for object_id, size, penalty in (
                    (1, 40, 1.0),
                    (2, 30, 2.0),
                    (3, 30, 3.0),
                ):
                    d = desc(object_id, size, penalty)
                    d.record_access(0.0)
                    cache.insert(d, now=0.0)
                caches.append(cache)
            assert caches[0].cost_loss(99, needed, now=1.0) == pytest.approx(
                caches[1].cost_loss(99, needed, now=1.0)
            )


class _StingyCache(LRUCache):
    """Pathological policy whose victim selection frees too little."""

    def select_victims(self, needed_bytes, now, exclude=None):
        victims = super().select_victims(needed_bytes, now, exclude)
        return victims[:1] if victims else []


class TestInfeasibleEvictionRefusal:
    def test_insufficient_victims_refuse_cleanly(self):
        cache = _StingyCache(100)
        cache.insert(desc(1, 30), now=0.0)
        cache.insert(desc(2, 30), now=1.0)
        cache.insert(desc(3, 30), now=2.0)
        with pytest.raises(CacheTooSmallError):
            cache.insert(desc(4, 80), now=3.0)
        # Refusal must leave the cache untouched: no partial eviction.
        assert sorted(cache.object_ids()) == [1, 2, 3]
        assert cache.used_bytes == 90
        cache.check_invariants()

    @pytest.mark.parametrize("cache_type", ALL_CACHE_TYPES)
    def test_insert_never_raises_assertion_error(self, cache_type):
        """Property: random churn either caches or refuses -- never asserts."""
        rng = random.Random(0xCAFE)
        cache = cache_type(500)
        now = 0.0
        for step in range(600):
            now += 1.0
            object_id = rng.randrange(40)
            size = rng.choice((10, 60, 180, 450, 501, 700))
            try:
                if object_id in cache:
                    cache.access(object_id, now)
                else:
                    d = desc(object_id, size, penalty=rng.uniform(0.1, 5.0))
                    d.record_access(now)
                    cache.insert(d, now)
            except CacheTooSmallError:
                # With well-behaved policies, only an oversize object is
                # refused; the cache must be left consistent either way.
                assert size > cache.capacity_bytes
            except AssertionError as error:  # pragma: no cover - regression
                pytest.fail(f"insert raised AssertionError: {error}")
            if step % 50 == 0:
                cache.check_invariants()
        cache.check_invariants()
