"""Tests for ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.experiments.charts import render_ascii_chart


@pytest.fixture
def two_series():
    return {
        "lru": [(0.001, 10.0), (0.01, 8.0), (0.1, 5.0)],
        "coordinated": [(0.001, 9.0), (0.01, 5.0), (0.1, 2.0)],
    }


class TestRenderAsciiChart:
    def test_contains_title_axis_and_legend(self, two_series):
        chart = render_ascii_chart(two_series, title="Figure X")
        assert chart.splitlines()[0] == "Figure X"
        assert "o=coordinated" in chart
        assert "x=lru" in chart
        assert "relative cache size" in chart

    def test_y_range_labels(self, two_series):
        chart = render_ascii_chart(two_series)
        assert "10" in chart  # max
        assert "2" in chart  # min

    def test_x_range_labels(self, two_series):
        chart = render_ascii_chart(two_series)
        assert "0.001" in chart
        assert "0.1" in chart

    def test_marker_positions_reflect_ordering(self, two_series):
        """The coordinated marker ends up below lru at the right edge."""
        chart = render_ascii_chart(two_series, width=30, height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        coord_row = next(i for i, r in enumerate(rows) if "o" in r and r.rstrip().endswith("o"))
        lru_row = next(i for i, r in enumerate(rows) if r.rstrip().endswith("x"))
        assert coord_row > lru_row  # lower on screen = smaller latency

    def test_flat_series_does_not_crash(self):
        chart = render_ascii_chart({"flat": [(0.01, 1.0), (0.1, 1.0)]})
        assert "flat" in chart

    def test_single_point(self):
        chart = render_ascii_chart({"one": [(0.05, 3.0)]})
        assert "o=one" in chart

    def test_validation(self, two_series):
        with pytest.raises(ValueError):
            render_ascii_chart({})
        with pytest.raises(ValueError):
            render_ascii_chart({"s": []})
        with pytest.raises(ValueError):
            render_ascii_chart({"s": [(0.0, 1.0)]})
        with pytest.raises(ValueError):
            render_ascii_chart(two_series, width=5)
