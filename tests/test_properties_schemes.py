"""Property-based tests: scheme invariants under random request replay.

For every scheme, replaying an arbitrary request sequence over a random
chain must preserve the core invariants of cascaded caching:

* no cache ever exceeds its byte capacity (and byte accounting balances);
* the reported hit index is the lowest node holding the object at request
  time, and the object genuinely was there;
* an object is never stored twice at one node, nor in both a node's main
  cache and d-cache;
* outcome accounting (reads/writes/evictions) is internally consistent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinated import CoordinatedScheme
from repro.costs.model import LatencyCostModel
from repro.schemes.lncr import LNCRScheme
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.schemes.modulo import ModuloScheme
from repro.topology.builder import build_chain


def _make_scheme(name, cost_model, capacity):
    if name == "lru":
        return LRUEverywhereScheme(cost_model, capacity)
    if name == "modulo":
        return ModuloScheme(cost_model, capacity, radius=2)
    if name == "lnc-r":
        return LNCRScheme(cost_model, capacity, dcache_entries=8)
    return CoordinatedScheme(cost_model, capacity, dcache_entries=8)


requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),   # object id
        st.integers(min_value=1, max_value=400),  # size
        st.integers(min_value=0, max_value=4),    # requester position
    ),
    min_size=1,
    max_size=120,
)


@st.composite
def replay_cases(draw):
    scheme_name = draw(st.sampled_from(["lru", "modulo", "lnc-r", "coordinated"]))
    capacity = draw(st.integers(min_value=0, max_value=1200))
    reqs = draw(requests)
    return scheme_name, capacity, reqs


class TestSchemeInvariants:
    @given(replay_cases())
    @settings(max_examples=120, deadline=None)
    def test_replay_preserves_invariants(self, case):
        scheme_name, capacity, reqs = case
        network = build_chain([1.0] * 5)
        cost_model = LatencyCostModel(network, avg_size=100.0)
        scheme = _make_scheme(scheme_name, cost_model, capacity)
        # Object sizes must be stable per object id: derive size from id.
        now = 0.0
        for object_id, raw_size, start in reqs:
            size = 1 + (object_id * 37 + raw_size) % 400
            path = list(range(start, 6))
            # Lowest copy before serving must match hit_index.
            expected_hit = len(path) - 1
            for i, node in enumerate(path[:-1]):
                if scheme.has_object(node, object_id):
                    expected_hit = i
                    break
            outcome = scheme.process_request(path, object_id, size, now)
            assert outcome.hit_index == expected_hit
            # Inserted nodes now hold the object; never the origin node.
            for node in outcome.inserted_nodes:
                assert node in path[: outcome.hit_index]
                assert scheme.has_object(node, object_id)
            assert outcome.bytes_written == size * len(outcome.inserted_nodes)
            assert outcome.evicted_objects >= 0
            scheme.check_invariants()
            now += 1.0

    @given(replay_cases())
    @settings(max_examples=60, deadline=None)
    def test_cached_bytes_bounded_by_total_capacity(self, case):
        scheme_name, capacity, reqs = case
        network = build_chain([1.0] * 5)
        cost_model = LatencyCostModel(network, avg_size=100.0)
        scheme = _make_scheme(scheme_name, cost_model, capacity)
        now = 0.0
        for object_id, raw_size, start in reqs:
            size = 1 + (object_id * 37 + raw_size) % 400
            scheme.process_request(list(range(start, 6)), object_id, size, now)
            now += 1.0
        assert scheme.total_cached_bytes() <= capacity * 5
        for cache in scheme.caches().values():
            assert cache.used_bytes <= cache.capacity_bytes
