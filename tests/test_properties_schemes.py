"""Property-based tests: scheme invariants under random request replay.

For every registered scheme (the :data:`repro.sim.factory.SCHEME_NAMES`
registry, so new schemes are covered automatically), replaying an
arbitrary request sequence over a random chain must preserve the core
invariants of cascaded caching:

* no cache ever exceeds its byte capacity (and byte accounting balances);
* the reported hit index is the lowest node holding the object at request
  time, and the object genuinely was there;
* an object is never stored twice at one node, nor in both a node's main
  cache and d-cache;
* outcome accounting (reads/writes/evictions) is internally consistent;
* zero capacity degenerates to pure origin serving;
* repeating one request only ever moves its hit closer to the client,
  and a hit at the requesting node is a pure read (no state written);
* uniformly scaling every link delay never changes a placement decision
  (costs are relative); replay is online and deterministic, so any
  trace prefix reproduces the full run's first outcomes exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.model import LatencyCostModel
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.topology.builder import build_chain
from repro.verify.fastpath_diff import assert_cache_state_identical

ALL_SCHEMES = sorted(SCHEME_NAMES)


def _make_scheme(name, cost_model, capacity):
    return build_scheme(name, cost_model, capacity, 8)


def _chain_cost_model(scale=1.0):
    network = build_chain([scale] * 5)
    return LatencyCostModel(network, avg_size=100.0)


requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),   # object id
        st.integers(min_value=1, max_value=400),  # size
        st.integers(min_value=0, max_value=4),    # requester position
    ),
    min_size=1,
    max_size=120,
)


@st.composite
def replay_cases(draw):
    scheme_name = draw(st.sampled_from(ALL_SCHEMES))
    capacity = draw(st.integers(min_value=0, max_value=1200))
    reqs = draw(requests)
    return scheme_name, capacity, reqs


def _materialize(reqs):
    """Stable per-object sizes: derive size from the object id."""
    out = []
    for object_id, raw_size, start in reqs:
        size = 1 + (object_id * 37 + raw_size) % 400
        out.append((object_id, size, start))
    return out


class TestSchemeInvariants:
    @given(replay_cases())
    @settings(max_examples=120, deadline=None)
    def test_replay_preserves_invariants(self, case):
        scheme_name, capacity, reqs = case
        scheme = _make_scheme(scheme_name, _chain_cost_model(), capacity)
        # Object sizes must be stable per object id: derive size from id.
        now = 0.0
        for object_id, raw_size, start in reqs:
            size = 1 + (object_id * 37 + raw_size) % 400
            path = list(range(start, 6))
            # Lowest copy before serving must match hit_index.
            expected_hit = len(path) - 1
            for i, node in enumerate(path[:-1]):
                if scheme.has_object(node, object_id):
                    expected_hit = i
                    break
            outcome = scheme.process_request(path, object_id, size, now)
            assert outcome.hit_index == expected_hit
            # Inserted nodes now hold the object; never the origin node.
            for node in outcome.inserted_nodes:
                assert node in path[: outcome.hit_index]
                assert scheme.has_object(node, object_id)
            assert outcome.bytes_written == size * len(outcome.inserted_nodes)
            assert outcome.evicted_objects >= 0
            scheme.check_invariants()
            now += 1.0

    @given(replay_cases())
    @settings(max_examples=60, deadline=None)
    def test_cached_bytes_bounded_by_total_capacity(self, case):
        scheme_name, capacity, reqs = case
        scheme = _make_scheme(scheme_name, _chain_cost_model(), capacity)
        now = 0.0
        for object_id, size, start in _materialize(reqs):
            scheme.process_request(list(range(start, 6)), object_id, size, now)
            now += 1.0
        assert scheme.total_cached_bytes() <= capacity * 5
        for cache in scheme.caches().values():
            assert cache.used_bytes <= cache.capacity_bytes


class TestZeroCapacityDegeneracy:
    """With zero cache capacity every request degenerates to the origin."""

    @given(st.sampled_from(ALL_SCHEMES), requests)
    @settings(max_examples=40, deadline=None)
    def test_everything_served_by_origin(self, scheme_name, reqs):
        scheme = _make_scheme(scheme_name, _chain_cost_model(), 0)
        now = 0.0
        for object_id, size, start in _materialize(reqs):
            path = list(range(start, 6))
            outcome = scheme.process_request(path, object_id, size, now)
            assert outcome.hit_index == len(path) - 1
            assert not outcome.served_by_cache
            assert outcome.inserted_nodes == ()
            assert outcome.bytes_written == 0
            now += 1.0
        assert scheme.total_cached_bytes() == 0


class TestDuplicateRequestIdempotence:
    """Repeating one request can only move its hit toward the client."""

    @given(
        st.sampled_from(ALL_SCHEMES),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=2, max_value=6),
        requests,
    )
    @settings(max_examples=40, deadline=None)
    def test_hit_index_monotone_under_repeats(
        self, scheme_name, object_id, start, repeats, warm_reqs
    ):
        scheme = _make_scheme(scheme_name, _chain_cost_model(), 900)
        now = 0.0
        for oid, size, s in _materialize(warm_reqs):
            scheme.process_request(list(range(s, 6)), oid, size, now)
            now += 1.0
        size = 1 + (object_id * 37) % 400
        path = list(range(start, 6))
        # Between identical requests no other traffic runs, so the
        # object's copies are only ever added -- never displaced -- and
        # the hit index cannot move away from the client.
        previous = len(path) - 1
        for _ in range(repeats):
            outcome = scheme.process_request(path, object_id, size, now)
            assert outcome.hit_index <= previous
            previous = outcome.hit_index
            now += 1.0

    @given(st.sampled_from(ALL_SCHEMES), requests)
    @settings(max_examples=40, deadline=None)
    def test_hit_at_requesting_node_is_pure_read(self, scheme_name, reqs):
        scheme = _make_scheme(scheme_name, _chain_cost_model(), 900)
        now = 0.0
        for object_id, size, start in _materialize(reqs):
            path = list(range(start, 6))
            outcome = scheme.process_request(path, object_id, size, now)
            if outcome.hit_index == 0:
                # Nothing downstream of the hit: a local hit writes no
                # bytes anywhere, whatever the scheme.
                assert outcome.inserted_nodes == ()
                assert outcome.bytes_written == 0
                assert outcome.bytes_read == size
            now += 1.0


class TestDelayScalingInvariance:
    """Placement decisions depend on relative, not absolute, delays.

    Scaling every link delay by a power of two (exact in floating
    point) rescales every cost, gain, and miss penalty uniformly, so
    each scheme's comparisons -- DP placements, greedy marginal gains,
    cost-density priorities -- resolve identically and the replay
    produces bit-identical cache states.
    """

    @given(replay_cases())
    @settings(max_examples=40, deadline=None)
    def test_scaled_delays_same_decisions(self, case):
        scheme_name, capacity, reqs = case
        base = _make_scheme(scheme_name, _chain_cost_model(1.0), capacity)
        scaled = _make_scheme(scheme_name, _chain_cost_model(2.0), capacity)
        now = 0.0
        for object_id, size, start in _materialize(reqs):
            path = list(range(start, 6))
            outcome_base = base.process_request(path, object_id, size, now)
            outcome_scaled = scaled.process_request(path, object_id, size, now)
            assert outcome_scaled.hit_index == outcome_base.hit_index
            assert outcome_scaled.inserted_nodes == outcome_base.inserted_nodes
            assert (
                outcome_scaled.evicted_objects == outcome_base.evicted_objects
            )
            now += 1.0


class TestTracePrefixConsistency:
    """Replay is online: a prefix reproduces the full run's beginning."""

    @given(replay_cases(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_prefix_replay_matches_full_run(self, case, data):
        scheme_name, capacity, reqs = case
        cut = data.draw(
            st.integers(min_value=1, max_value=len(reqs)), label="cut"
        )
        full = _make_scheme(scheme_name, _chain_cost_model(), capacity)
        prefix = _make_scheme(scheme_name, _chain_cost_model(), capacity)
        materialized = _materialize(reqs)
        full_outcomes = []
        now = 0.0
        for object_id, size, start in materialized:
            full_outcomes.append(
                full.process_request(list(range(start, 6)), object_id, size, now)
            )
            now += 1.0
        now = 0.0
        for i, (object_id, size, start) in enumerate(materialized[:cut]):
            outcome = prefix.process_request(
                list(range(start, 6)), object_id, size, now
            )
            assert outcome == full_outcomes[i]
            now += 1.0

    @given(replay_cases())
    @settings(max_examples=30, deadline=None)
    def test_replay_is_deterministic(self, case):
        scheme_name, capacity, reqs = case
        first = _make_scheme(scheme_name, _chain_cost_model(), capacity)
        second = _make_scheme(scheme_name, _chain_cost_model(), capacity)
        now = 0.0
        for object_id, size, start in _materialize(reqs):
            path = list(range(start, 6))
            assert first.process_request(
                path, object_id, size, now
            ) == second.process_request(path, object_id, size, now)
            now += 1.0
        assert_cache_state_identical(first, second, tag=scheme_name)
