"""The audit layer itself: clean runs stay clean, corruption gets caught.

Complements the seeded-mutation self-test (``test_verify_selftest``)
with fast, targeted unit checks of each audit component.
"""

from __future__ import annotations

import pytest

from repro.core.placement import (
    PlacementProblem,
    PlacementSolution,
    solve_placement,
)
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.experiments.runner import GridTask, execute_point
from repro.metrics.collector import MetricsCollector
from repro.schemes.base import RequestOutcome
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.verify import (
    AuditConfig,
    AuditFailure,
    Auditor,
    OutcomeLedger,
    PlacementOracle,
)


@pytest.fixture
def en_route(tiny_workload, tiny_trace):
    trace, catalog = tiny_trace
    architecture = build_architecture(
        "en-route", tiny_workload, seed=tiny_workload.seed
    )
    return architecture, trace, catalog


class TestAuditedRuns:
    @pytest.mark.parametrize("scheme", ["lru", "lnc-r", "coordinated"])
    def test_clean_schemes_pass_full_audit(self, en_route, scheme):
        architecture, trace, catalog = en_route
        config = AuditConfig(
            audit_every=200,
            placement_sample_every=7,
            shadow_replay=True,
            strict=False,
        )
        task = GridTask(
            scheme=scheme, config=SimulationConfig(relative_cache_size=0.03)
        )
        _, record = execute_point(
            architecture, trace, catalog, task, audit=config
        )
        assert record.audit_violations == ()
        assert record.audit_checks > 0

    def test_audited_metrics_bit_identical_to_unaudited(self, en_route):
        """Auditing observes; it must never perturb a single metric bit."""
        architecture, trace, catalog = en_route
        task = GridTask(
            scheme="coordinated",
            config=SimulationConfig(relative_cache_size=0.03),
        )
        plain, plain_record = execute_point(architecture, trace, catalog, task)
        audited, audited_record = execute_point(
            architecture,
            trace,
            catalog,
            task,
            audit=AuditConfig(audit_every=100, strict=False),
        )
        assert plain.summary == audited.summary
        assert plain_record.key == audited_record.key
        assert plain_record.audit_checks == 0
        assert audited_record.audit_checks > 0

    def test_strict_mode_raises_on_corruption(self, chain_costs, chain4):
        scheme = LRUEverywhereScheme(chain_costs, 1000)
        path = (0, 1, 2, 3, 4)
        for i in range(5):
            scheme.process_request(path, i, 100, float(i))
        auditor = Auditor(AuditConfig(strict=True))
        collector = MetricsCollector()
        auditor.audit_now(scheme, collector, request_index=4)  # clean: fine
        next(iter(scheme.caches().values()))._used += 7
        with pytest.raises(AuditFailure) as excinfo:
            auditor.audit_now(scheme, collector, request_index=5)
        assert excinfo.value.violation.check in (
            "cache-accounting",
            "scheme-invariants",
        )

    def test_engine_audit_every_shorthand(self, en_route):
        architecture, trace, catalog = en_route
        cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
        scheme = LRUEverywhereScheme(
            cost_model, max(1, int(0.03 * catalog.total_bytes))
        )
        engine = SimulationEngine(architecture, cost_model, scheme)
        result = engine.run(trace, audit_every=500)
        assert result.audit is not None
        assert result.audit.ok
        assert result.audit.checks_run["invariant-sweep"] >= len(trace) // 500


class TestOutcomeLedger:
    def _outcome(self, hit_index=1, inserted=()):
        return RequestOutcome(
            path=(0, 1, 2, 3),
            hit_index=hit_index,
            size=50,
            inserted_nodes=tuple(inserted),
        )

    def test_matching_books_produce_no_violations(self):
        ledger = OutcomeLedger()
        collector = MetricsCollector()
        for outcome, latency in (
            (self._outcome(1), 1.0),
            (self._outcome(3, inserted=(1,)), 2.5),
        ):
            ledger.record(outcome, latency)
            collector.record(outcome, latency)
        assert ledger.violations_against(collector) == []

    def test_diverging_books_are_flagged(self):
        ledger = OutcomeLedger()
        collector = MetricsCollector()
        outcome = self._outcome(1)
        ledger.record(outcome, 1.0)
        collector.record(outcome, 1.0)
        collector.record(outcome, 1.0)  # collector double-counts
        violations = ledger.violations_against(collector, request_index=3)
        assert violations
        assert all(v.check == "collector-identity" for v in violations)
        assert all(v.request_index == 3 for v in violations)


class TestPlacementOracle:
    def _problem(self):
        return PlacementProblem(
            frequencies=(5.0, 3.0, 1.0),
            penalties=(2.0, 4.0, 8.0),
            losses=(1.0, 1.0, 1.0),
        )

    def test_correct_solution_passes(self):
        found = []
        oracle = PlacementOracle(report=found.append, sample_every=1)
        problem = self._problem()
        oracle(problem, solve_placement(problem))
        assert oracle.problems_checked == 1
        assert found == []

    def test_corrupted_gain_is_flagged(self):
        found = []
        oracle = PlacementOracle(report=found.append, sample_every=1)
        problem = self._problem()
        good = solve_placement(problem)
        oracle(problem, PlacementSolution(indices=good.indices, gain=good.gain + 1.0))
        assert {v.check for v in found} >= {"placement-objective"}

    def test_suboptimal_solution_is_flagged(self):
        found = []
        oracle = PlacementOracle(report=found.append, sample_every=1)
        problem = self._problem()
        empty = PlacementSolution(indices=(), gain=0.0)
        oracle(problem, empty)
        assert any(v.check == "placement-optimality" for v in found)

    def test_sampling_skips_problems(self):
        found = []
        oracle = PlacementOracle(report=found.append, sample_every=3)
        problem = self._problem()
        solution = solve_placement(problem)
        for _ in range(7):
            oracle(problem, solution)
        assert oracle.problems_seen == 7
        assert oracle.problems_checked == 2

    def test_approximate_solution_accumulates_gap_not_violation(self):
        """A suboptimal greedy/single solution is a *gap*, never a bug."""
        from repro.schemes.costaware import single_copy_placement

        found = []
        oracle = PlacementOracle(report=found.append, sample_every=1)
        # An upstream copy skims the delta-frequency cheaply while the
        # downstream copy keeps its high penalty: DP takes both,
        # single-copy can only take one.
        problem = PlacementProblem(
            frequencies=(10.0, 4.0),
            penalties=(2.0, 10.0),
            losses=(1.0, 1.0),
        )
        single = single_copy_placement(problem)
        optimum = solve_placement(problem)
        assert single.gain < optimum.gain  # premise: genuinely suboptimal
        oracle(problem, single)
        assert found == []
        assert oracle.gap_count == 1
        assert oracle.gap_suboptimal == 1
        assert oracle.gap_total == pytest.approx(optimum.gain - single.gain)
        assert oracle.gap_max == pytest.approx(optimum.gain - single.gain)
        assert "below the DP optimum" in oracle.gap_summary()

    def test_optimal_approximate_solution_counts_zero_gap(self):
        from repro.core.placement import greedy_placement

        oracle = PlacementOracle(report=lambda v: None, sample_every=1)
        problem = self._problem()
        greedy = greedy_placement(problem)
        oracle(problem, greedy)
        assert oracle.gap_count == 1
        assert oracle.gap_suboptimal == 0
        assert oracle.gap_total == pytest.approx(0.0)

    def test_approximate_beating_dp_is_flagged(self):
        """An 'approximation' above the DP optimum means a broken solver."""
        found = []
        oracle = PlacementOracle(report=found.append, sample_every=1)
        problem = self._problem()
        good = solve_placement(problem)
        impossible = PlacementSolution(
            indices=good.indices, gain=good.gain + 1.0, method="greedy"
        )
        oracle(problem, impossible)
        checks = {v.check for v in found}
        # The recomputed objective no longer matches the claimed gain, and
        # the claimed gain exceeds the DP optimum: both must fire.
        assert "placement-objective" in checks
        assert "placement-gap" in checks
        # A refuted "approximation" never enters the gap statistics.
        assert oracle.gap_count == 0
