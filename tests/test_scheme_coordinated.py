"""Tests for the coordinated caching scheme (paper sections 2.3-2.4)."""

from __future__ import annotations

import pytest

from repro.core.coordinated import CoordinatedScheme
from repro.core.piggyback import NodeReport, RequestEnvelope
from repro.costs.model import LatencyCostModel
from repro.topology.builder import build_chain


@pytest.fixture
def chain5():
    return build_chain([1.0] * 5)


@pytest.fixture
def costs(chain5):
    return LatencyCostModel(chain5, avg_size=100.0)


@pytest.fixture
def scheme(costs):
    return CoordinatedScheme(costs, capacity_bytes=1000, dcache_entries=16)


PATH = [0, 1, 2, 3, 4, 5]


class TestFirstContact:
    def test_first_request_caches_nowhere(self, scheme):
        """No node has a descriptor yet, so the DP candidate set is empty."""
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.hit_index == 5
        assert outcome.inserted_nodes == ()
        for node in range(5):
            assert not scheme.has_object(node, 7)

    def test_first_request_seeds_dcache_descriptors(self, scheme):
        scheme.process_request(PATH, 7, 100, now=0.0)
        for node in range(5):
            descriptor = scheme.node_state(node).dcache.peek(7)
            assert descriptor is not None
            # Miss penalty = accumulated cost from the origin (size 100 =
            # avg size, so 1.0 per hop): node 4 is 1 hop below the origin.
            assert descriptor.miss_penalty == pytest.approx(5 - node)

    def test_repeated_requests_eventually_cache(self, scheme):
        for t in range(4):
            scheme.process_request(PATH, 7, 100, now=float(t * 10))
        assert any(scheme.has_object(node, 7) for node in range(5))

    def test_cached_copy_serves_later_requests(self, scheme):
        for t in range(5):
            outcome = scheme.process_request(PATH, 7, 100, now=float(t * 10))
        assert outcome.served_by_cache


class TestPlacementDecision:
    def _envelope(self, reports):
        envelope = RequestEnvelope(object_id=1)
        for report in reports:
            envelope.add_report(report)
        return envelope

    def test_empty_candidates_yield_no_placement(self, scheme):
        envelope = self._envelope(
            [NodeReport(0, 0.0, 0.0, None, has_descriptor=False)]
        )
        response = scheme.decide_placement(envelope, now=0.0)
        assert response.cache_at == frozenset()
        assert response.expected_gain == 0.0

    def test_single_beneficial_candidate_selected(self, scheme):
        envelope = self._envelope(
            [NodeReport(0, frequency=2.0, miss_penalty=3.0, cost_loss=1.0,
                        has_descriptor=True)]
        )
        response = scheme.decide_placement(envelope, now=0.0)
        assert response.cache_at == frozenset({0})
        assert response.expected_gain == pytest.approx(5.0)

    def test_harmful_candidate_rejected(self, scheme):
        envelope = self._envelope(
            [NodeReport(0, frequency=1.0, miss_penalty=1.0, cost_loss=10.0,
                        has_descriptor=True)]
        )
        response = scheme.decide_placement(envelope, now=0.0)
        assert response.cache_at == frozenset()

    def test_nodes_without_descriptor_pruned(self, scheme):
        # Reports travel client -> server; node 9 lacks a descriptor.
        envelope = self._envelope(
            [
                NodeReport(9, 0.0, 0.0, None, has_descriptor=False),
                NodeReport(3, frequency=2.0, miss_penalty=3.0, cost_loss=0.0,
                           has_descriptor=True),
            ]
        )
        response = scheme.decide_placement(envelope, now=0.0)
        assert response.cache_at == frozenset({3})

    def test_uncacheable_node_pruned(self, scheme):
        envelope = self._envelope(
            [NodeReport(0, frequency=5.0, miss_penalty=5.0, cost_loss=None,
                        has_descriptor=True)]
        )
        response = scheme.decide_placement(envelope, now=0.0)
        assert response.cache_at == frozenset()

    def test_noisy_frequencies_are_repaired(self, scheme):
        # Downstream frequency larger than upstream: must not raise.
        envelope = self._envelope(
            [
                NodeReport(0, frequency=9.0, miss_penalty=2.0, cost_loss=0.0,
                           has_descriptor=True),
                NodeReport(1, frequency=1.0, miss_penalty=1.0, cost_loss=0.0,
                           has_descriptor=True),
            ]
        )
        response = scheme.decide_placement(envelope, now=0.0)
        assert 0 in response.cache_at


class TestMissPenaltyProtocol:
    def test_accumulator_resets_at_caching_node(self, scheme, costs):
        """After a copy is placed, downstream penalties measure from it."""
        # Warm up until the object is cached somewhere.
        for t in range(6):
            scheme.process_request(PATH, 7, 100, now=float(t * 10))
        cached_nodes = [n for n in range(5) if scheme.has_object(n, 7)]
        assert cached_nodes
        highest = max(cached_nodes)
        # Below the cached node, d-cache descriptors measure from it.
        state = scheme.node_state(highest)
        entry = state.cache.entry(7)
        # Its own penalty measures to the next copy above (or origin).
        upstream = [n for n in cached_nodes if n > highest]
        assert entry.descriptor.miss_penalty <= 5 - highest + 1e-9

    def test_descriptor_penalty_updated_on_pass_through(self, scheme):
        scheme.process_request(PATH, 7, 100, now=0.0)
        first = {
            n: scheme.node_state(n).dcache.peek(7).miss_penalty
            for n in range(5)
        }
        # Penalties decrease with proximity to the origin.
        assert first[4] < first[0]


class TestEndToEnd:
    def test_popular_object_cached_closer_than_unpopular(self, costs):
        scheme = CoordinatedScheme(costs, capacity_bytes=150, dcache_entries=32)
        # Popular object 1 requested often; objects 2..9 once each.
        t = 0.0
        for round_ in range(6):
            scheme.process_request(PATH, 1, 100, now=t)
            t += 5.0
            scheme.process_request(PATH, 2 + round_, 100, now=t)
            t += 5.0
        # The popular object must be cached somewhere; with capacity for
        # only one object per node, it should win the space.
        assert any(scheme.has_object(n, 1) for n in range(5))

    def test_no_cache_thrash_on_alternating_unpopular(self, costs):
        """One-off objects never displace an established popular object."""
        scheme = CoordinatedScheme(costs, capacity_bytes=100, dcache_entries=64)
        t = 0.0
        for _ in range(8):
            scheme.process_request(PATH, 1, 100, now=t)
            t += 1.0
        popular_nodes = {n for n in range(5) if scheme.has_object(n, 1)}
        assert popular_nodes
        for oid in range(100, 110):
            scheme.process_request(PATH, oid, 100, now=t)
            t += 1.0
        still = {n for n in popular_nodes if scheme.has_object(n, 1)}
        assert still  # the popular object survived the one-off parade

    def test_invariants_after_trace_replay(self, costs, tiny_trace):
        trace, _ = tiny_trace
        scheme = CoordinatedScheme(costs, capacity_bytes=5000, dcache_entries=30)
        for record in trace.records[:800]:
            scheme.process_request(PATH, record.object_id, record.size, record.time)
        scheme.check_invariants()

    def test_outcome_accounting_consistency(self, scheme):
        for t in range(10):
            outcome = scheme.process_request(PATH, t % 3, 100, now=float(t))
            assert outcome.bytes_written == 100 * len(outcome.inserted_nodes)
            assert 0 <= outcome.hit_index <= 5
