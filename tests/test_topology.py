"""Tests for the network model and topology generators."""

from __future__ import annotations

import pytest

from repro.topology.builder import build_chain, build_star
from repro.topology.graph import Link, Network, NodeKind
from repro.topology.tiers import TiersConfig, TiersTopologyGenerator
from repro.topology.tree import TreeConfig, build_tree_topology


class TestNetwork:
    def test_add_nodes_and_links(self):
        net = Network()
        a = net.add_node(NodeKind.MAN)
        b = net.add_node(NodeKind.WAN)
        net.add_link(a, b, 0.5)
        assert net.num_nodes == 2
        assert net.num_links == 1
        assert net.link_delay(a, b) == 0.5
        assert net.link_delay(b, a) == 0.5

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Link(1, 1, 0.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Link(0, 1, -0.1)

    def test_rejects_duplicate_link(self):
        net = build_chain([1.0])
        with pytest.raises(ValueError):
            net.add_link(0, 1, 2.0)

    def test_rejects_unknown_node(self):
        net = Network()
        net.add_node(NodeKind.MAN)
        with pytest.raises(KeyError):
            net.add_link(0, 5, 1.0)
        with pytest.raises(KeyError):
            net.link_delay(0, 3)

    def test_missing_link_raises(self):
        net = Network()
        net.add_node(NodeKind.MAN)
        net.add_node(NodeKind.MAN)
        with pytest.raises(KeyError):
            net.link_delay(0, 1)

    def test_kinds_and_levels(self):
        net = Network()
        n = net.add_node(NodeKind.TREE, level=2)
        assert net.kind(n) is NodeKind.TREE
        assert net.level(n) == 2
        assert net.nodes_of_kind(NodeKind.TREE) == [n]

    def test_connectivity(self):
        net = Network()
        a = net.add_node(NodeKind.MAN)
        b = net.add_node(NodeKind.MAN)
        assert not net.is_connected()
        net.add_link(a, b, 1.0)
        assert net.is_connected()

    def test_empty_network_is_connected(self):
        assert Network().is_connected()

    def test_links_iterates_each_once(self):
        net = build_chain([1.0, 2.0, 3.0])
        links = list(net.links())
        assert len(links) == 3
        assert {l.endpoints() for l in links} == {(0, 1), (1, 2), (2, 3)}

    def test_mean_delay_by_kind(self):
        net = Network()
        w1 = net.add_node(NodeKind.WAN)
        w2 = net.add_node(NodeKind.WAN)
        m1 = net.add_node(NodeKind.MAN)
        net.add_link(w1, w2, 0.8)  # WAN link
        net.add_link(w1, m1, 0.2)  # attachment link counts as MAN
        assert net.mean_delay([NodeKind.WAN]) == pytest.approx(0.8)
        assert net.mean_delay([NodeKind.MAN]) == pytest.approx(0.2)
        assert net.mean_delay() == pytest.approx(0.5)


class TestBuilders:
    def test_chain_shape(self):
        net = build_chain([1.0, 2.0])
        assert net.num_nodes == 3
        assert net.num_links == 2
        assert net.link_delay(1, 2) == 2.0

    def test_chain_requires_links(self):
        with pytest.raises(ValueError):
            build_chain([])

    def test_star_shape(self):
        net = build_star([1.0, 2.0, 3.0])
        assert net.num_nodes == 4
        assert net.degree(0) == 3
        assert all(net.degree(i) == 1 for i in range(1, 4))

    def test_star_requires_leaves(self):
        with pytest.raises(ValueError):
            build_star([])


class TestTiersGenerator:
    def test_table1_defaults(self):
        """Default config matches Table 1: 100 nodes, 173 links."""
        cfg = TiersConfig(seed=0)
        net = TiersTopologyGenerator(cfg).generate()
        assert net.num_nodes == 100
        assert len(net.nodes_of_kind(NodeKind.WAN)) == 50
        assert len(net.nodes_of_kind(NodeKind.MAN)) == 50
        assert net.num_links == 173
        assert net.is_connected()

    def test_wan_man_delay_ratio(self):
        """Mean WAN delay is ~8x mean MAN delay (Table 1)."""
        net = TiersTopologyGenerator(TiersConfig(seed=1)).generate()
        wan = net.mean_delay([NodeKind.WAN])
        man = net.mean_delay([NodeKind.MAN])
        assert wan == pytest.approx(0.146, rel=0.05)
        # Attachment links share the MAN delay scale, so allow slack.
        assert 4.0 < wan / man < 12.0

    def test_deterministic_by_seed(self):
        a = TiersTopologyGenerator(TiersConfig(seed=5)).generate()
        b = TiersTopologyGenerator(TiersConfig(seed=5)).generate()
        assert [(l.u, l.v, l.delay) for l in a.links()] == [
            (l.u, l.v, l.delay) for l in b.links()
        ]

    def test_different_seeds_differ(self):
        a = TiersTopologyGenerator(TiersConfig(seed=5)).generate()
        b = TiersTopologyGenerator(TiersConfig(seed=6)).generate()
        assert [(l.u, l.v) for l in a.links()] != [(l.u, l.v) for l in b.links()]

    def test_small_config(self):
        cfg = TiersConfig(
            wan_nodes=4, num_mans=2, man_nodes=3, wan_extra_links=1, man_extra_links=0
        )
        net = TiersTopologyGenerator(cfg).generate()
        assert net.num_nodes == 10
        assert net.is_connected()
        # 3 WAN tree + 1 extra + 2 * 2 MAN tree + 2 attachments
        assert net.num_links == 3 + 1 + 4 + 2

    def test_no_zero_delay_links(self):
        net = TiersTopologyGenerator(TiersConfig(seed=2)).generate()
        assert all(l.delay > 0 for l in net.links())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TiersConfig(wan_nodes=1)
        with pytest.raises(ValueError):
            TiersConfig(num_mans=0)
        with pytest.raises(ValueError):
            TiersConfig(wan_delay_mean=0)
        with pytest.raises(ValueError):
            TiersConfig(wan_extra_links=-1)


class TestTreeTopology:
    def test_paper_defaults(self):
        """Depth 4, fanout 3 -> 40 cache nodes + server node."""
        topo = build_tree_topology(TreeConfig())
        assert topo.config.num_cache_nodes == 40
        assert topo.network.num_nodes == 41
        assert len(topo.leaves) == 27
        assert topo.network.level(topo.root) == 3
        assert all(topo.network.level(l) == 0 for l in topo.leaves)
        assert topo.network.is_connected()

    def test_exponential_level_delays(self):
        cfg = TreeConfig(base_delay=0.008, growth_factor=5.0)
        topo = build_tree_topology(cfg)
        net = topo.network
        # Leaf -> parent link: g^0 * d.
        leaf = topo.leaves[0]
        parent = next(iter(net.neighbors(leaf)))[0]
        assert net.link_delay(leaf, parent) == pytest.approx(0.008)
        # Root -> server link: g^3 * d.
        assert net.link_delay(topo.root, topo.server_node) == pytest.approx(
            0.008 * 125
        )

    def test_depth_one_tree(self):
        topo = build_tree_topology(TreeConfig(depth=1, fanout=3))
        assert topo.leaves == [topo.root]
        assert topo.network.num_nodes == 2  # root + server

    def test_fanout_one_is_chain(self):
        topo = build_tree_topology(TreeConfig(depth=3, fanout=1))
        assert topo.config.num_cache_nodes == 3
        assert len(topo.leaves) == 1

    def test_without_server_node(self):
        topo = build_tree_topology(TreeConfig(include_server_node=False))
        assert topo.server_node is None
        assert topo.network.num_nodes == 40

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TreeConfig(depth=0)
        with pytest.raises(ValueError):
            TreeConfig(fanout=0)
        with pytest.raises(ValueError):
            TreeConfig(base_delay=0)
        with pytest.raises(ValueError):
            TreeConfig(growth_factor=0)
