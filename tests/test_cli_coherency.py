"""Coherency flags across `repro sim` / `serve` / `loadgen`.

The CLI is where a nonsense configuration must die with a clear
message and exit code 2 -- before any socket is bound or any trace is
generated.  `CoherencyConfig` is the shared validator, so its own
contract is pinned here too.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.coherency import CoherencyConfig


class TestCoherencyConfig:
    def test_defaults(self):
        config = CoherencyConfig()
        assert config.mode == "inband"
        assert not config.grouped

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown coherency mode"):
            CoherencyConfig(mode="gossip")

    def test_negative_poll_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CoherencyConfig(mode="channel", poll_interval=-1.0)

    def test_inband_poll_rejected(self):
        with pytest.raises(ValueError, match="only applies to channel"):
            CoherencyConfig(mode="inband", poll_interval=2.0)

    def test_group_count_must_be_positive(self):
        with pytest.raises(ValueError, match="group_count"):
            CoherencyConfig(group_count=0)

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError, match="group_skew"):
            CoherencyConfig(group_skew=-0.1)

    def test_round_trip(self):
        config = CoherencyConfig(
            mode="channel", poll_interval=2.5, group_count=8,
            group_skew=1.1, group_seed=3,
        )
        assert CoherencyConfig.from_dict(config.to_dict()) == config

    def test_build_groups(self):
        per_object = CoherencyConfig(mode="channel").build_groups(10)
        assert per_object.group_count == 10
        grouped = CoherencyConfig(
            mode="channel", group_count=4
        ).build_groups(10)
        assert grouped.group_count == 4


class TestSimFlags:
    def test_group_flags_require_coherency(self, capsys):
        code = main(["sim", "--schemes", "lru", "--group-count", "4"])
        assert code == 2
        assert "require --coherency" in capsys.readouterr().err

    def test_poll_flag_requires_coherency(self, capsys):
        code = main(
            ["sim", "--schemes", "lru", "--channel-poll-interval", "5"]
        )
        assert code == 2
        assert "require --coherency" in capsys.readouterr().err

    def test_coherency_requires_updates(self, capsys):
        code = main(["sim", "--schemes", "lru", "--coherency", "channel"])
        assert code == 2
        assert "measures nothing" in capsys.readouterr().err

    def test_inband_rejects_poll_interval(self, capsys):
        code = main(
            [
                "sim", "--schemes", "lru", "--coherency", "inband",
                "--channel-poll-interval", "5", "--update-rate", "0.5",
            ]
        )
        assert code == 2
        assert "only applies to channel" in capsys.readouterr().err

    def test_sim_saves_coherency_accounting(self, capsys, tmp_path):
        out = tmp_path / "points.json"
        code = main(
            [
                "sim", "--arch", "hierarchical", "--schemes", "lru",
                "--scale", "small", "--size", "0.05",
                "--coherency", "channel", "--channel-poll-interval", "20",
                "--group-count", "10", "--update-rate", "0.5",
                "--save", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "via channel" in stdout
        assert "coherency[channel]" in stdout
        document = json.loads(out.read_text())
        (point,) = document["points"]
        stats = point["coherency"]
        assert stats["mode"] == "channel"
        assert stats["events_published"] > 0
        assert stats["polls"] > 0

    def test_inband_run_prints_inv_bytes(self, capsys):
        code = main(
            [
                "sim", "--arch", "hierarchical", "--schemes", "lru",
                "--scale", "small", "--size", "0.05",
                "--coherency", "inband", "--update-rate", "0.5",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "via inband" in stdout
        assert "coherency[inband]" in stdout


class TestServeFlags:
    def test_channel_rejects_poll_interval(self, capsys):
        code = main(
            [
                "serve", "--coherency", "channel",
                "--channel-poll-interval", "5",
            ]
        )
        assert code == 2
        assert "simulator knob" in capsys.readouterr().err

    def test_channel_rejects_shards(self, capsys):
        code = main(["serve", "--coherency", "channel", "--shards", "2"])
        assert code == 2
        assert "broker lives in the serve process" in capsys.readouterr().err


def write_manifest(tmp_path, coherency=None, channel=None):
    document = {
        "scale": "small",
        "seed": 0,
        "theta": None,
        "arch": "hierarchical",
        "scheme": "lru",
        "warmup_fraction": 0.5,
        "nodes": {},
        "coherency": coherency,
    }
    if channel is not None:
        document["channel"] = channel
    path = tmp_path / "cluster.json"
    path.write_text(json.dumps(document))
    return str(path)


class TestLoadgenFlags:
    def test_group_flags_require_coherency(self, capsys, tmp_path):
        manifest = write_manifest(tmp_path)
        code = main(
            ["loadgen", "--manifest", manifest, "--group-count", "4"]
        )
        assert code == 2
        assert "require --coherency" in capsys.readouterr().err

    def test_channel_needs_channel_server(self, capsys, tmp_path):
        manifest = write_manifest(tmp_path)
        code = main(
            [
                "loadgen", "--manifest", manifest,
                "--coherency", "channel", "--mode", "sequential",
                "--update-rate", "0.5",
            ]
        )
        assert code == 2
        assert "restart serve with" in capsys.readouterr().err

    def test_flags_must_agree_with_manifest(self, capsys, tmp_path):
        manifest = write_manifest(
            tmp_path,
            coherency=CoherencyConfig(
                mode="inband", group_count=4
            ).to_dict(),
        )
        code = main(
            [
                "loadgen", "--manifest", manifest,
                "--coherency", "inband", "--group-count", "8",
                "--mode", "sequential", "--update-rate", "0.5",
            ]
        )
        assert code == 2
        assert "disagree with the serve manifest" in capsys.readouterr().err

    def test_updates_need_trace_time(self, capsys, tmp_path):
        manifest = write_manifest(tmp_path)
        code = main(
            [
                "loadgen", "--manifest", manifest,
                "--coherency", "inband", "--update-rate", "0.5",
                "--mode", "closed",
            ]
        )
        assert code == 2
        assert "--mode sequential or open" in capsys.readouterr().err
