"""Tests for heterogeneous per-node cache capacities."""

from __future__ import annotations

import pytest

from repro.core.coordinated import CoordinatedScheme
from repro.costs.model import LatencyCostModel
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.sim.architecture import (
    build_hierarchical_architecture,
    level_capacity_overrides,
)
from repro.sim.factory import build_scheme
from repro.topology.builder import build_chain
from repro.topology.tree import TreeConfig, build_tree_topology


@pytest.fixture
def costs():
    return LatencyCostModel(build_chain([1.0] * 3), avg_size=100.0)


class TestCapacityFor:
    def test_default_is_uniform(self, costs):
        scheme = LRUEverywhereScheme(costs, 500)
        assert scheme.capacity_for(0) == 500
        assert scheme.capacity_for(2) == 500

    def test_overrides_apply_per_node(self, costs):
        scheme = LRUEverywhereScheme(
            costs, 500, capacity_overrides={1: 100, 2: 900}
        )
        assert scheme.capacity_for(0) == 500
        assert scheme.capacity_for(1) == 100
        assert scheme.capacity_for(2) == 900
        assert scheme.cache_at(1).capacity_bytes == 100
        assert scheme.cache_at(2).capacity_bytes == 900

    def test_negative_override_rejected(self, costs):
        with pytest.raises(ValueError):
            LRUEverywhereScheme(costs, 500, capacity_overrides={0: -1})

    def test_coordinated_respects_overrides(self, costs):
        scheme = CoordinatedScheme(
            costs, 500, dcache_entries=4, capacity_overrides={0: 50}
        )
        assert scheme.cache_at(0).capacity_bytes == 50
        assert scheme.cache_at(1).capacity_bytes == 500

    def test_factory_passes_overrides(self, costs):
        for name in ("lru", "modulo", "lnc-r", "coordinated", "lfu", "gds",
                     "admission-lru"):
            scheme = build_scheme(
                name, costs, 500, 4, capacity_overrides={0: 123}
            )
            assert scheme.cache_at(0).capacity_bytes == 123

    def test_zero_capacity_node_never_caches(self, costs):
        scheme = LRUEverywhereScheme(costs, 500, capacity_overrides={0: 0})
        outcome = scheme.process_request([0, 1, 2, 3], 7, 100, now=0.0)
        assert 0 not in outcome.inserted_nodes
        assert 1 in outcome.inserted_nodes


class TestLevelCapacityOverrides:
    def test_budget_preserved(self):
        topo = build_tree_topology(TreeConfig(include_server_node=False))
        overrides = level_capacity_overrides(
            topo.network, base_capacity=1000, level_multipliers={0: 2.0}
        )
        assert len(overrides) == topo.network.num_nodes
        total = sum(overrides.values())
        budget = 1000 * topo.network.num_nodes
        assert abs(total - budget) <= topo.network.num_nodes  # int flooring

    def test_multiplied_levels_get_more(self):
        topo = build_tree_topology(TreeConfig(include_server_node=False))
        overrides = level_capacity_overrides(
            topo.network, 1000, level_multipliers={3: 4.0}
        )
        root_capacity = overrides[topo.root]
        leaf_capacity = overrides[topo.leaves[0]]
        assert root_capacity == pytest.approx(4 * leaf_capacity, rel=0.01)

    def test_validation(self):
        topo = build_tree_topology(TreeConfig(depth=2, fanout=2))
        with pytest.raises(ValueError):
            level_capacity_overrides(topo.network, -1, {})
        with pytest.raises(ValueError):
            level_capacity_overrides(topo.network, 10, {0: -2.0})

    def test_all_zero_multipliers(self):
        topo = build_tree_topology(TreeConfig(depth=2, fanout=2))
        overrides = level_capacity_overrides(
            topo.network, 10, {lvl: 0.0 for lvl in range(3)}
        )
        assert all(v == 0 for v in overrides.values())

    def test_end_to_end_with_architecture(self):
        arch = build_hierarchical_architecture(num_clients=5, num_servers=1)
        overrides = level_capacity_overrides(
            arch.network, 10_000, level_multipliers={0: 3.0}
        )
        cost = LatencyCostModel(arch.network, 1000.0)
        scheme = build_scheme(
            "coordinated", cost, 10_000, 8, capacity_overrides=overrides
        )
        leaf = next(iter(arch.client_nodes.values()))
        assert scheme.cache_at(leaf).capacity_bytes == overrides[leaf]
