"""Tests for the LRU / LFU / NCL caches and the shared byte accounting."""

from __future__ import annotations

import pytest

from repro.cache.base import CacheTooSmallError
from repro.cache.descriptors import ObjectDescriptor
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.ncl import NCLCache


def desc(object_id: int, size: int, penalty: float = 1.0) -> ObjectDescriptor:
    return ObjectDescriptor(object_id, size, miss_penalty=penalty)


class TestBaseCacheAccounting:
    def test_insert_and_lookup(self):
        cache = LRUCache(100)
        assert cache.insert(desc(1, 40), now=0.0) == []
        assert 1 in cache
        assert cache.used_bytes == 40
        assert cache.free_bytes == 60

    def test_duplicate_insert_is_noop(self):
        cache = LRUCache(100)
        cache.insert(desc(1, 40), now=0.0)
        assert cache.insert(desc(1, 40), now=1.0) == []
        assert cache.used_bytes == 40

    def test_oversized_object_raises(self):
        cache = LRUCache(100)
        with pytest.raises(CacheTooSmallError):
            cache.insert(desc(1, 101), now=0.0)

    def test_remove_returns_entry_and_frees_space(self):
        cache = LRUCache(100)
        cache.insert(desc(1, 40), now=0.0)
        entry = cache.remove(1)
        assert entry is not None and entry.object_id == 1
        assert cache.used_bytes == 0
        assert cache.remove(1) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_invariants_after_churn(self):
        cache = LRUCache(100)
        for i in range(50):
            cache.insert(desc(i, 10 + (i % 17)), now=float(i))
            cache.check_invariants()


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(100)
        cache.insert(desc(1, 50), now=0.0)
        cache.insert(desc(2, 50), now=1.0)
        cache.access(1, now=2.0)  # 2 is now LRU
        cache.insert(desc(3, 50), now=3.0)
        assert 1 in cache and 3 in cache
        assert 2 not in cache

    def test_evicts_multiple_when_needed(self):
        cache = LRUCache(100)
        cache.insert(desc(1, 40), now=0.0)
        cache.insert(desc(2, 40), now=1.0)
        evicted = cache.insert(desc(3, 90), now=2.0)
        assert {e.object_id for e in evicted} == {1, 2}
        assert cache.used_bytes == 90

    def test_access_refreshes_recency(self):
        cache = LRUCache(100)
        cache.insert(desc(1, 30), now=0.0)
        cache.insert(desc(2, 30), now=1.0)
        cache.access(1, now=2.0)
        assert cache.recency_order() == [2, 1]

    def test_miss_returns_none(self):
        cache = LRUCache(100)
        assert cache.access(9, now=0.0) is None


class TestLFUCache:
    def test_evicts_least_frequent(self):
        cache = LFUCache(100)
        cache.insert(desc(1, 50), now=0.0)
        cache.insert(desc(2, 50), now=1.0)
        cache.access(1, now=2.0)
        cache.access(1, now=3.0)
        cache.insert(desc(3, 50), now=4.0)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_tie_broken_by_lru(self):
        cache = LFUCache(100)
        cache.insert(desc(1, 50), now=0.0)
        cache.insert(desc(2, 50), now=1.0)
        cache.access(1, now=2.0)
        cache.access(2, now=3.0)  # equal counts; 1 older
        cache.insert(desc(3, 50), now=4.0)
        assert 1 not in cache and 2 in cache

    def test_hit_count_tracking(self):
        cache = LFUCache(100)
        cache.insert(desc(7, 10), now=0.0)
        assert cache.hit_count(7) == 1
        cache.access(7, now=1.0)
        cache.access(7, now=2.0)
        assert cache.hit_count(7) == 3


class TestNCLCache:
    def test_evicts_smallest_ncl_first(self):
        cache = NCLCache(100)
        # NCL = f * m / s; fabricate penalties so object 1 is cheapest.
        d1 = desc(1, 50, penalty=0.1)
        d2 = desc(2, 50, penalty=100.0)
        d1.record_access(0.0)
        d2.record_access(0.0)
        cache.insert(d1, now=0.0)
        cache.insert(d2, now=0.0)
        cache.insert(desc(3, 50, penalty=1.0), now=1.0)
        assert 1 not in cache and 2 in cache

    def test_eviction_order_sorted_by_key(self):
        cache = NCLCache(1000)
        for i, penalty in enumerate([5.0, 1.0, 3.0]):
            d = desc(i, 10, penalty=penalty)
            d.record_access(0.0)
            cache.insert(d, now=0.0)
        assert cache.eviction_order() == [1, 2, 0]

    def test_set_miss_penalty_reorders(self):
        cache = NCLCache(1000)
        for i, penalty in enumerate([1.0, 2.0]):
            d = desc(i, 10, penalty=penalty)
            d.record_access(0.0)
            cache.insert(d, now=0.0)
        assert cache.eviction_order() == [0, 1]
        cache.set_miss_penalty(0, 50.0, now=1.0)
        assert cache.eviction_order() == [1, 0]

    def test_record_access_raises_on_missing(self):
        cache = NCLCache(100)
        with pytest.raises(KeyError):
            cache.record_access(1, now=0.0)

    def test_cost_loss_zero_when_fits(self):
        cache = NCLCache(100)
        assert cache.cost_loss(1, 50, now=0.0) == 0.0

    def test_cost_loss_zero_when_already_cached(self):
        cache = NCLCache(100)
        cache.insert(desc(1, 80), now=0.0)
        assert cache.cost_loss(1, 80, now=1.0) == 0.0

    def test_cost_loss_none_when_oversized(self):
        cache = NCLCache(100)
        assert cache.cost_loss(1, 200, now=0.0) is None

    def test_cost_loss_sums_victim_fm(self):
        cache = NCLCache(100)
        d1 = desc(1, 60, penalty=2.0)
        d1.record_access(0.0)
        f1 = d1.frequency(0.0)
        cache.insert(d1, now=0.0)
        loss = cache.cost_loss(2, 80, now=0.0)
        assert loss == pytest.approx(f1 * 2.0)

    def test_cost_loss_does_not_mutate(self):
        cache = NCLCache(100)
        cache.insert(desc(1, 60), now=0.0)
        cache.cost_loss(2, 80, now=0.0)
        assert 1 in cache
        cache.check_invariants()

    def test_invariants_after_heavy_churn(self):
        cache = NCLCache(500)
        for i in range(200):
            d = desc(i, 20 + (i * 7) % 90, penalty=float((i * 13) % 11))
            d.record_access(float(i))
            cache.insert(d, now=float(i))
            if i % 3 == 0 and (i - 1) in cache:
                cache.set_miss_penalty(i - 1, float(i % 29), now=float(i))
            cache.check_invariants()
