"""Tests for per-window time-series metrics."""

from __future__ import annotations

import pytest

import json

from repro.costs.model import LatencyCostModel
from repro.metrics.timeseries import (
    IntervalMetricsCollector,
    IntervalSnapshot,
    series_to_csv,
    series_to_json,
)
from repro.schemes.base import RequestOutcome
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.sim.architecture import build_hierarchical_architecture
from repro.sim.engine import SimulationEngine
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig


def outcome(hit=1, size=100, inserted=()):
    return RequestOutcome(
        path=[0, 1, 2, 3],
        hit_index=hit,
        size=size,
        inserted_nodes=tuple(inserted),
    )


class TestIntervalCollector:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalMetricsCollector(0.0)
        collector = IntervalMetricsCollector(10.0)
        with pytest.raises(ValueError):
            collector.record(outcome(), 1.0, now=-1.0)

    def test_empty_series(self):
        assert IntervalMetricsCollector(10.0).series() == []

    def test_windows_aggregate_correctly(self):
        collector = IntervalMetricsCollector(10.0)
        collector.record(outcome(hit=1, size=100), latency=2.0, now=1.0)
        collector.record(outcome(hit=3, size=300), latency=6.0, now=5.0)
        collector.record(outcome(hit=0, size=100), latency=0.0, now=15.0)
        series = collector.series()
        assert len(series) == 2
        first, second = series
        assert first.requests == 2
        assert first.mean_latency == pytest.approx(4.0)
        assert first.byte_hit_ratio == pytest.approx(100 / 400)
        assert first.mean_hops == pytest.approx(2.0)
        assert second.requests == 1
        assert second.window_start == 10.0
        assert second.midpoint == 15.0

    def test_gaps_emitted_as_empty_windows(self):
        collector = IntervalMetricsCollector(10.0)
        collector.record(outcome(), 1.0, now=5.0)
        collector.record(outcome(), 1.0, now=35.0)
        series = collector.series()
        assert len(series) == 4
        assert series[1].requests == 0
        assert series[2].requests == 0
        # Empty windows carry the new fields too, zeroed.
        assert series[1].hit_ratio == 0.0
        assert series[1].mean_read_load == 0.0
        assert series[1].mean_write_load == 0.0

    def test_windows_align_at_time_zero(self):
        collector = IntervalMetricsCollector(10.0)
        collector.record(outcome(), 1.0, now=0.0)
        collector.record(outcome(), 1.0, now=9.999)
        collector.record(outcome(), 1.0, now=10.0)
        series = collector.series()
        assert [s.window_start for s in series] == [0.0, 10.0]
        assert series[0].requests == 2
        assert series[1].requests == 1

    def test_hit_ratio_and_load_fields(self):
        collector = IntervalMetricsCollector(10.0)
        # Cache hit with two insertions downstream.
        collector.record(outcome(hit=2, size=300, inserted=[0, 1]), 1.0, now=1.0)
        # Origin hit (hit_index == last path index): no cache read.
        collector.record(outcome(hit=3, size=100, inserted=[2]), 1.0, now=2.0)
        snap = collector.series()[0]
        assert snap.hit_ratio == pytest.approx(0.5)
        assert snap.byte_hit_ratio == pytest.approx(300 / 400)
        assert snap.mean_read_load == pytest.approx(300 / 10.0)
        assert snap.mean_write_load == pytest.approx((2 * 300 + 100) / 10.0)

    def test_positional_construction_unchanged(self):
        # New fields sit at the end with defaults so pre-existing
        # positional callers keep working.
        snap = IntervalSnapshot(0.0, 10.0, 3, 1.5, 0.5, 2.0)
        assert snap.requests == 3
        assert snap.hit_ratio == 0.0


class TestSerialization:
    def _series(self):
        collector = IntervalMetricsCollector(10.0)
        collector.record(outcome(hit=2, size=200, inserted=[0]), 2.0, now=1.0)
        collector.record(outcome(), 1.0, now=25.0)
        return collector.series()

    def test_csv(self):
        text = series_to_csv(self._series())
        lines = text.strip().splitlines()
        assert lines[0].startswith("window_start,window_end,requests")
        assert lines[0].endswith("hit_ratio,mean_read_load,mean_write_load")
        assert len(lines) == 4  # header + three windows (one empty)
        first = lines[1].split(",")
        assert first[2] == "1"
        assert float(first[-2]) == pytest.approx(20.0)

    def test_json(self):
        rows = json.loads(series_to_json(self._series()))
        assert len(rows) == 3
        assert rows[0]["requests"] == 1
        assert rows[0]["hit_ratio"] == 1.0
        assert rows[1]["requests"] == 0

    def test_engine_integration_shows_warmup_convergence(self):
        workload = WorkloadConfig(
            num_objects=80,
            num_servers=4,
            num_clients=10,
            num_requests=6_000,
            seed=3,
        )
        generator = BoeingLikeTraceGenerator(workload)
        trace = generator.generate()
        arch = build_hierarchical_architecture(
            workload.num_clients, workload.num_servers, seed=0
        )
        cost = LatencyCostModel(arch.network, generator.catalog.mean_size)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=200_000)
        collector = IntervalMetricsCollector(trace.duration / 10)
        SimulationEngine(arch, cost, scheme).run(
            trace, interval_collector=collector
        )
        series = [s for s in collector.series() if s.requests > 0]
        assert len(series) >= 8
        # Caches warm up: later windows hit more than the first.
        assert series[-1].byte_hit_ratio > series[0].byte_hit_ratio
        # Interval collector sees the whole trace, warm-up included.
        assert sum(s.requests for s in series) == len(trace)
