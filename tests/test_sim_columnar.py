"""Columnar fast path: bit-exactness gate, fallbacks, and streaming memory.

The batched kernels in :mod:`repro.sim.fastpath` are held to the same
contract as the reference per-request loop: not statistically close,
*identical* -- results, percentiles, final cache and d-cache state, and
protocol counters.  These tests run the shadow-compare oracle
(:mod:`repro.verify.fastpath_diff`) over every registered scheme on both
architectures with an update stream, then pin the fallback rules (audit
and instruments force the reference loop, with unchanged results) and
the O(chunk) memory guarantee of the streaming generator.

``scripts/_diff_fastpath.py`` is the long-form local version of the same
sweep (all three cost models, larger trace).
"""

from __future__ import annotations

import pytest

from repro.costs.model import HopCostModel, LatencyCostModel
from repro.obs.instruments import Instruments
from repro.obs.probe import Probe
from repro.obs.registry import StatRegistry
from repro.sim.architecture import (
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.sim.engine import SimulationEngine
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.verify.fastpath_diff import result_fingerprint, shadow_compare
from repro.workload.columnar import ColumnarTrace
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.updates import generate_update_events

_NUM_OBJECTS = 300
_NUM_CLIENTS = 24
_NUM_SERVERS = 5


@pytest.fixture(scope="module")
def workload():
    cfg = WorkloadConfig(
        num_objects=_NUM_OBJECTS,
        num_requests=2_500,
        num_clients=_NUM_CLIENTS,
        num_servers=_NUM_SERVERS,
        zipf_theta=0.8,
        seed=7,
    )
    generator = BoeingLikeTraceGenerator(cfg)
    trace = generator.generate()
    columnar = generator.generate_columnar()
    updates = generate_update_events(
        _NUM_OBJECTS, duration=trace.duration, update_rate=2.0, seed=11
    )
    return generator, trace, columnar, updates


@pytest.fixture(scope="module")
def architectures():
    return {
        "hier": build_hierarchical_architecture(
            _NUM_CLIENTS, _NUM_SERVERS, seed=3
        ),
        "enroute": build_enroute_architecture(_NUM_CLIENTS, _NUM_SERVERS, seed=3),
    }


def _capacity(catalog) -> int:
    return max(1, int(catalog.total_bytes * 0.02))


class TestBitExactness:
    """Fast path vs reference loop: identical everything."""

    @pytest.mark.parametrize("arch_name", ["hier", "enroute"])
    @pytest.mark.parametrize("name", sorted(SCHEME_NAMES))
    def test_all_schemes_both_architectures(
        self, workload, architectures, arch_name, name
    ):
        generator, trace, columnar, updates = workload
        arch = architectures[arch_name]
        cost = LatencyCostModel(arch.network, generator.catalog.mean_size)
        capacity = _capacity(generator.catalog)
        shadow_compare(
            arch,
            cost,
            lambda: build_scheme(name, cost, capacity, 64),
            trace,
            columnar,
            updates=updates,
            tag=f"{arch_name}/{name}",
        )

    def test_hop_cost_model(self, workload, architectures):
        """Non-latency cost models route through the generic columnar loop."""
        generator, trace, columnar, updates = workload
        arch = architectures["hier"]
        cost = HopCostModel(arch.network)
        capacity = _capacity(generator.catalog)
        shadow_compare(
            arch,
            cost,
            lambda: build_scheme("coordinated", cost, capacity, 64),
            trace,
            columnar,
            updates=updates,
            tag="hier/hop/coordinated",
        )

    @pytest.mark.parametrize("name", ["adaptive", "costaware"])
    def test_approximate_schemes_take_generic_loop(
        self, workload, architectures, name
    ):
        """The flattened coordinated kernel is gated on the *exact* type.

        The approximate-placement subclasses (greedy, single-copy) must
        route through the generic columnar loop, which runs their real
        step methods -- that is what keeps them bit-exact by
        construction.  Pin the dispatch precondition here so a future
        ``isinstance`` relaxation of the kernel gate is caught.
        """
        from repro.core.coordinated import CoordinatedScheme

        generator, _, _, _ = workload
        arch = architectures["hier"]
        cost = LatencyCostModel(arch.network, generator.catalog.mean_size)
        scheme = build_scheme(name, cost, _capacity(generator.catalog), 64)
        assert isinstance(scheme, CoordinatedScheme)
        assert type(scheme) is not CoordinatedScheme

    @pytest.mark.parametrize("name", ["adaptive", "costaware"])
    def test_provisioned_new_schemes_bit_exact(
        self, workload, architectures, name
    ):
        """Heterogeneous capacities (the sizing sweep) stay bit-exact."""
        from repro.sim.architecture import level_capacity_overrides

        generator, trace, columnar, updates = workload
        arch = architectures["hier"]
        cost = LatencyCostModel(arch.network, generator.catalog.mean_size)
        capacity = _capacity(generator.catalog)
        overrides = level_capacity_overrides(
            arch.network, capacity, {0: 2.0, 1: 0.5}
        )
        shadow_compare(
            arch,
            cost,
            lambda: build_scheme(
                name, cost, capacity, 64, capacity_overrides=overrides
            ),
            trace,
            columnar,
            updates=updates,
            tag=f"hier/provisioned/{name}",
        )

    def test_columnar_trace_matches_materialized_twin(self, workload):
        generator, trace, columnar, _ = workload
        assert len(columnar) == len(trace)
        twin = ColumnarTrace.from_trace(trace)
        assert list(twin.times) == list(columnar.times)
        assert list(twin.client_ids) == list(columnar.client_ids)
        assert list(twin.object_ids) == list(columnar.object_ids)
        assert list(twin.server_ids) == list(columnar.server_ids)
        assert list(twin.sizes) == list(columnar.sizes)


class TestFallbackPaths:
    """Audit and instruments force the reference loop -- results unchanged."""

    def _run(self, workload, architectures, trace, **kwargs):
        generator = workload[0]
        arch = architectures["hier"]
        cost = LatencyCostModel(arch.network, generator.catalog.mean_size)
        scheme = build_scheme(
            "coordinated", cost, _capacity(generator.catalog), 64
        )
        engine = SimulationEngine(arch, cost, scheme)
        return engine.run(trace, updates=workload[3], **kwargs)

    def test_audited_columnar_run_matches_reference(
        self, workload, architectures
    ):
        plain = self._run(workload, architectures, workload[1])
        audited = self._run(workload, architectures, workload[2], audit_every=250)
        plain_data = result_fingerprint(plain)
        audited_data = result_fingerprint(audited)
        # The audited run carries its (clean) audit report; everything
        # else -- summary, percentiles, counters -- must be unchanged.
        report = audited_data.pop("audit")
        plain_data.pop("audit")
        assert report["violations"] == ()
        assert audited_data == plain_data

    def test_instrumented_columnar_run_matches_reference(
        self, workload, architectures
    ):
        plain = self._run(workload, architectures, workload[1])
        events = []
        instruments = Instruments(
            probe=Probe(events.append),
            registry=StatRegistry(),
            snapshot_every=500,
        )
        instrumented = self._run(
            workload, architectures, workload[2], instruments=instruments
        )
        assert instrumented.summary == plain.summary
        assert instrumented.node_stats is not None
        assert events


class TestStreamingMemory:
    """stream() holds O(chunk) state, never the full trace."""

    def test_chunks_bounded_and_concatenate_to_full_trace(self):
        cfg = WorkloadConfig(
            num_objects=120,
            num_requests=10_000,
            num_clients=8,
            num_servers=4,
            seed=5,
        )
        chunk_records = 512
        chunks = []
        for chunk in BoeingLikeTraceGenerator(cfg).stream(chunk_records):
            # Each yielded chunk is a self-contained ColumnarTrace no
            # larger than the requested window -- the generator's live
            # state is one chunk of draws plus the locality tail.
            assert isinstance(chunk, ColumnarTrace)
            assert 1 <= len(chunk) <= chunk_records
            chunks.append(chunk)
        assert sum(len(c) for c in chunks) == cfg.num_requests
        whole = ColumnarTrace.concat(chunks)
        assert len(whole) == cfg.num_requests

    def test_stream_invariant_to_chunk_size(self):
        cfg = WorkloadConfig(
            num_objects=60,
            num_requests=3_000,
            num_clients=6,
            num_servers=3,
            seed=9,
        )
        small = ColumnarTrace.concat(
            list(BoeingLikeTraceGenerator(cfg).stream(chunk_records=137))
        )
        large = ColumnarTrace.concat(
            list(BoeingLikeTraceGenerator(cfg).stream(chunk_records=2_048))
        )
        assert list(small.times) == list(large.times)
        assert list(small.client_ids) == list(large.client_ids)
        assert list(small.object_ids) == list(large.object_ids)

    def test_iter_chunks_views_share_memory(self, workload):
        _, _, columnar, _ = workload
        total = 0
        for view in columnar.iter_chunks(700):
            # Zero-copy contract: chunk columns are views into the parent
            # arrays, so chunked consumption allocates nothing per chunk.
            assert view.times.base is not None
            total += len(view)
        assert total == len(columnar)


class TestGeneratorSeedStability:
    """The diurnal dead-draw fix: no RNG burned, columnar twin identical."""

    def test_generate_columnar_is_bit_identical_twin(self):
        cfg = WorkloadConfig(
            num_objects=90,
            num_requests=2_000,
            num_clients=10,
            num_servers=4,
            diurnal_amplitude=0.6,
            diurnal_period=600.0,
            seed=21,
        )
        trace = BoeingLikeTraceGenerator(cfg).generate()
        columnar = BoeingLikeTraceGenerator(cfg).generate_columnar()
        twin = ColumnarTrace.from_trace(trace)
        assert list(twin.times) == list(columnar.times)
        assert list(twin.client_ids) == list(columnar.client_ids)
        assert list(twin.object_ids) == list(columnar.object_ids)

    def test_diurnal_draw_stream_golden(self):
        """Pin the post-fix RNG stream of a diurnal trace.

        The pre-fix generator drew (and discarded) a homogeneous
        exponential block before the thinning draws, shifting the client
        column and every draw after it.  These golden values re-derive
        the expected stream independently, in the fixed draw order the
        generator documents: permutation, Zipf ranks, thinning times,
        then clients.
        """
        import numpy as np

        from repro.workload.zipf import ZipfSampler

        cfg = WorkloadConfig(
            num_objects=40,
            num_requests=500,
            num_clients=7,
            num_servers=3,
            diurnal_amplitude=0.5,
            diurnal_period=300.0,
            seed=13,
        )
        trace = BoeingLikeTraceGenerator(cfg).generate()

        rng = np.random.default_rng(cfg.seed + 1)
        rank_to_object = rng.permutation(cfg.num_objects)
        ranks = ZipfSampler(cfg.num_objects, cfg.zipf_theta).sample(
            cfg.num_requests, rng
        )
        expected_ids = rank_to_object[ranks]
        peak = cfg.request_rate * (1 + cfg.diurnal_amplitude)
        accepted, total, t = [], 0, 0.0
        while total < cfg.num_requests:
            batch = max(1024, cfg.num_requests)
            gaps = rng.exponential(1.0 / peak, size=batch)
            candidates = t + np.cumsum(gaps)
            t = float(candidates[-1])
            intensity = cfg.request_rate * (
                1
                + cfg.diurnal_amplitude
                * np.sin(2 * np.pi * candidates / cfg.diurnal_period)
            )
            keep = candidates[rng.random(batch) < intensity / peak]
            accepted.append(keep)
            total += len(keep)
        expected_times = np.concatenate(accepted)[: cfg.num_requests]
        expected_clients = rng.integers(cfg.num_clients, size=cfg.num_requests)

        assert [r.object_id for r in trace] == [int(i) for i in expected_ids]
        assert [r.time for r in trace] == [float(x) for x in expected_times]
        assert [r.client_id for r in trace] == [int(c) for c in expected_clients]
