"""Tests for the extended baseline family (GDS, LFU, admission LRU)."""

from __future__ import annotations

import pytest

from repro.cache.descriptors import ObjectDescriptor
from repro.cache.gds import GDSCache
from repro.costs.model import LatencyCostModel
from repro.schemes.extra_baselines import (
    AdmissionLRUScheme,
    GDSScheme,
    LFUEverywhereScheme,
)
from repro.topology.builder import build_chain

PATH = [0, 1, 2, 3, 4, 5]


@pytest.fixture
def costs():
    return LatencyCostModel(build_chain([1.0] * 5), avg_size=100.0)


def gds_desc(object_id, size, cost, now):
    d = ObjectDescriptor(object_id, size, miss_penalty=cost)
    d.record_access(now)
    return d


class TestGDSCache:
    def test_evicts_lowest_priority(self):
        cache = GDSCache(100, popularity_aware=False)
        cache.insert(gds_desc(1, 50, cost=0.1, now=0.0), now=0.0)
        cache.insert(gds_desc(2, 50, cost=10.0, now=0.0), now=0.0)
        cache.insert(gds_desc(3, 50, cost=1.0, now=1.0), now=1.0)
        assert 1 not in cache
        assert 2 in cache

    def test_inflation_rises_on_eviction(self):
        cache = GDSCache(100, popularity_aware=False)
        cache.insert(gds_desc(1, 100, cost=5.0, now=0.0), now=0.0)
        assert cache.inflation == 0.0
        cache.insert(gds_desc(2, 100, cost=5.0, now=1.0), now=1.0)
        assert cache.inflation == pytest.approx(5.0 / 100)

    def test_inflation_enables_aging_out_of_stale_high_cost(self):
        """A once-valuable object loses to fresh ones after inflation."""
        cache = GDSCache(100, popularity_aware=False)
        cache.insert(gds_desc(1, 50, cost=3.0, now=0.0), now=0.0)   # H=0.06
        cache.insert(gds_desc(2, 50, cost=1.0, now=0.0), now=0.0)   # H=0.02
        cache.insert(gds_desc(3, 50, cost=1.0, now=1.0), now=1.0)   # evicts 2, L=0.02
        cache.insert(gds_desc(4, 50, cost=1.0, now=2.0), now=2.0)   # evicts 3 (H=0.04 < 0.06)
        assert 1 in cache
        cache.insert(gds_desc(5, 50, cost=3.0, now=3.0), now=3.0)
        # L has risen to 0.04; the new object's H = 0.04+0.06 = 0.10 > 0.06,
        # so the stale object 1 is finally aged out.
        assert 1 not in cache
        assert 5 in cache

    def test_access_refreshes_priority(self):
        cache = GDSCache(100, popularity_aware=False)
        cache.insert(gds_desc(1, 50, cost=1.0, now=0.0), now=0.0)
        cache.insert(gds_desc(2, 50, cost=1.0, now=0.0), now=0.0)
        # Touch 1 after some evictions would have inflated... here simply
        # verify the access path reorders without error.
        cache.access(1, now=1.0)
        cache.check_invariants()

    def test_invariants_under_churn(self):
        cache = GDSCache(500, popularity_aware=True)
        for i in range(100):
            cache.insert(
                gds_desc(i, 20 + (i * 7) % 90, cost=float(1 + i % 5), now=float(i)),
                now=float(i),
            )
            if i % 3 == 0 and (i - 1) in cache:
                cache.access(i - 1, now=float(i))
            cache.check_invariants()


class TestGDSScheme:
    def test_caches_everywhere_and_serves(self, costs):
        scheme = GDSScheme(costs, capacity_bytes=1000)
        assert scheme.name == "gdsp"
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.inserted_nodes == (0, 1, 2, 3, 4)
        second = scheme.process_request(PATH, 7, 100, now=1.0)
        assert second.hit_index == 0

    def test_plain_gds_name(self, costs):
        assert GDSScheme(costs, 100, popularity_aware=False).name == "gds"

    def test_oversized_objects_skipped(self, costs):
        scheme = GDSScheme(costs, capacity_bytes=50)
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.inserted_nodes == ()


class TestLFUEverywhere:
    def test_protects_frequent_objects(self, costs):
        scheme = LFUEverywhereScheme(costs, capacity_bytes=200)
        for t in range(3):
            scheme.process_request(PATH, 1, 100, now=float(t))
        scheme.process_request(PATH, 2, 100, now=10.0)
        scheme.process_request(PATH, 3, 100, now=11.0)  # evicts 2, not 1
        assert scheme.has_object(0, 1)
        assert not scheme.has_object(0, 2)


class TestAdmissionLRU:
    def test_first_request_not_admitted(self, costs):
        scheme = AdmissionLRUScheme(costs, capacity_bytes=1000)
        outcome = scheme.process_request(PATH, 7, 100, now=0.0)
        assert outcome.inserted_nodes == ()

    def test_second_request_admitted(self, costs):
        scheme = AdmissionLRUScheme(costs, capacity_bytes=1000)
        scheme.process_request(PATH, 7, 100, now=0.0)
        outcome = scheme.process_request(PATH, 7, 100, now=1.0)
        assert outcome.inserted_nodes == (0, 1, 2, 3, 4)

    def test_history_is_bounded(self, costs):
        scheme = AdmissionLRUScheme(costs, capacity_bytes=1000, history_entries=2)
        path = [0, 1]
        scheme.process_request(path, 1, 10, now=0.0)
        scheme.process_request(path, 2, 10, now=1.0)
        scheme.process_request(path, 3, 10, now=2.0)  # pushes 1 out of history
        outcome = scheme.process_request(path, 1, 10, now=3.0)
        assert outcome.inserted_nodes == ()  # forgotten, treated as first hit

    def test_keeps_one_hit_wonders_out(self, costs):
        scheme = AdmissionLRUScheme(costs, capacity_bytes=200)
        # Popular object admitted...
        scheme.process_request(PATH, 1, 100, now=0.0)
        scheme.process_request(PATH, 1, 100, now=1.0)
        # ...then a parade of one-hit wonders cannot displace it.
        for oid in range(50, 60):
            scheme.process_request(PATH, oid, 100, now=float(oid))
        assert scheme.has_object(0, 1)

    def test_validation(self, costs):
        with pytest.raises(ValueError):
            AdmissionLRUScheme(costs, 100, history_entries=0)


class TestFactoryIntegration:
    def test_builds_extended_schemes(self, costs):
        from repro.sim.factory import build_scheme

        assert build_scheme("lfu", costs, 100, 0).name == "lfu"
        assert build_scheme("gds", costs, 100, 0).name == "gdsp"
        assert (
            build_scheme("gds", costs, 100, 0, popularity_aware=False).name
            == "gds"
        )
        scheme = build_scheme("admission-lru", costs, 100, 0, history_entries=7)
        assert scheme.history_entries == 7
