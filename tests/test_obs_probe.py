"""Tests for the probe: sampling determinism, filtering, trace I/O."""

from __future__ import annotations

import pytest

from repro.obs.export import JsonlTraceWriter, read_trace_events
from repro.obs.probe import EVENT_KINDS, Probe


def emit_stream(probe: Probe, count: int = 200) -> list:
    """Feed a fixed event stream through the probe; return what survived."""
    kept = []
    for i in range(count):
        if probe.emit("request", i=i):
            kept.append(i)
    return kept


class TestValidation:
    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Probe(lambda e: None, sample_every=0)

    def test_sample_rate_bounds(self):
        with pytest.raises(ValueError):
            Probe(lambda e: None, sample_rate=1.5)
        with pytest.raises(ValueError):
            Probe(lambda e: None, sample_rate=-0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kinds"):
            Probe(lambda e: None, kinds=["request", "bogus"])


class TestSampling:
    def test_disabled_probe_emits_nothing(self):
        events = []
        probe = Probe(events.append, enabled=False)
        assert emit_stream(probe) == []
        assert events == []
        assert probe.emitted == 0

    def test_sample_every_is_systematic(self):
        probe = Probe(lambda e: None, sample_every=10)
        assert emit_stream(probe, 100) == list(range(0, 100, 10))

    def test_sample_every_counter_is_per_kind(self):
        # A chatty kind must not starve a sparse one.
        probe = Probe(lambda e: None, sample_every=2)
        kept = []
        for i in range(6):
            probe.sample("dcache-eviction")  # chatty interleaver
            if probe.sample("eviction"):
                kept.append(i)
        assert kept == [0, 2, 4]

    def test_kinds_filter(self):
        events = []
        probe = Probe(events.append, kinds=["placement"])
        assert not probe.emit("request", i=0)
        assert probe.emit("placement", i=0)
        assert [e["kind"] for e in events] == ["placement"]

    def test_rate_sampling_deterministic_under_fixed_seed(self):
        picks_a = emit_stream(Probe(lambda e: None, sample_rate=0.3, seed=42))
        picks_b = emit_stream(Probe(lambda e: None, sample_rate=0.3, seed=42))
        assert picks_a == picks_b
        assert 0 < len(picks_a) < 200

    def test_rate_sampling_differs_across_seeds(self):
        picks_a = emit_stream(Probe(lambda e: None, sample_rate=0.3, seed=1))
        picks_b = emit_stream(Probe(lambda e: None, sample_rate=0.3, seed=2))
        assert picks_a != picks_b

    def test_emitted_and_dropped_counters(self):
        probe = Probe(lambda e: None, sample_every=4)
        emit_stream(probe, 100)
        assert probe.emitted == 25
        assert probe.dropped == 75

    def test_write_prepends_kind(self):
        events = []
        probe = Probe(events.append)
        probe.write("eviction", node=3, freed=100)
        assert events == [{"kind": "eviction", "node": 3, "freed": 100}]
        assert list(events[0])[0] == "kind"

    def test_event_vocabulary_is_closed(self):
        assert "request" in EVENT_KINDS
        assert "placement" in EVENT_KINDS
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)


class TestJsonlRoundTrip:
    def test_writer_then_reader(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            probe = Probe(writer)
            probe.emit("request", i=0, object=7)
            probe.emit("eviction", i=1, node=2, victims=[7], freed=10)
        assert writer.events_written == 2
        events = list(read_trace_events(path))
        assert [e["kind"] for e in events] == ["request", "eviction"]
        assert events[1]["victims"] == [7]

    def test_reader_kind_filter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            for kind in ("request", "placement", "request"):
                writer({"kind": kind})
        events = list(read_trace_events(path, kinds=["request"]))
        assert len(events) == 2

    def test_reader_skips_truncated_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"request","i":0}\n{"kind":"req')
        events = list(read_trace_events(path))
        assert len(events) == 1
