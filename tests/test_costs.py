"""Tests for the cost models (paper's generic c(u, v, O))."""

from __future__ import annotations

import pytest

from repro.costs.model import (
    BandwidthCostModel,
    HopCostModel,
    LatencyCostModel,
)
from repro.topology.builder import build_chain


@pytest.fixture
def chain():
    return build_chain([0.5, 1.5])


class TestLatencyCostModel:
    def test_scales_with_object_size(self, chain):
        model = LatencyCostModel(chain, avg_size=100.0)
        assert model.link_cost(0, 1, 100) == pytest.approx(0.5)
        assert model.link_cost(0, 1, 200) == pytest.approx(1.0)
        assert model.link_cost(0, 1, 50) == pytest.approx(0.25)

    def test_path_cost_sums_links(self, chain):
        model = LatencyCostModel(chain, avg_size=100.0)
        assert model.path_cost([0, 1, 2], 100) == pytest.approx(2.0)

    def test_trivial_path_is_free(self, chain):
        model = LatencyCostModel(chain, avg_size=100.0)
        assert model.path_cost([0], 100) == 0.0
        assert model.path_cost([], 100) == 0.0

    def test_rejects_nonpositive_avg_size(self, chain):
        with pytest.raises(ValueError):
            LatencyCostModel(chain, avg_size=0.0)

    def test_unknown_link_raises(self, chain):
        model = LatencyCostModel(chain, avg_size=100.0)
        with pytest.raises(KeyError):
            model.link_cost(0, 2, 100)


class TestHopCostModel:
    def test_unit_cost_per_link(self, chain):
        model = HopCostModel(chain)
        assert model.link_cost(0, 1, 12345) == 1.0
        assert model.path_cost([0, 1, 2], 7) == 2.0

    def test_validates_link(self, chain):
        with pytest.raises(KeyError):
            HopCostModel(chain).link_cost(0, 2, 1)


class TestBandwidthCostModel:
    def test_bytes_per_link(self, chain):
        model = BandwidthCostModel(chain)
        assert model.link_cost(0, 1, 500) == 500.0
        # byte x hops over the path
        assert model.path_cost([0, 1, 2], 500) == 1000.0
