"""Tests for the piggyback message records (paper section 2.3)."""

from __future__ import annotations

from repro.core.piggyback import NodeReport, RequestEnvelope, ResponseEnvelope


class TestNodeReport:
    def test_candidate_requires_descriptor_and_cacheability(self):
        good = NodeReport(1, 2.0, 3.0, 0.5, has_descriptor=True)
        assert good.is_candidate()
        no_descriptor = NodeReport(1, 0.0, 0.0, None, has_descriptor=False)
        assert not no_descriptor.is_candidate()
        uncacheable = NodeReport(1, 2.0, 3.0, None, has_descriptor=True)
        assert not uncacheable.is_candidate()

    def test_zero_cost_loss_is_candidate(self):
        report = NodeReport(1, 2.0, 3.0, 0.0, has_descriptor=True)
        assert report.is_candidate()


class TestRequestEnvelope:
    def test_reports_reversed_to_server_first(self):
        envelope = RequestEnvelope(object_id=9)
        # Travel order: requester (node 5) towards the server (node 7).
        for node in (5, 6, 7):
            envelope.add_report(
                NodeReport(node, 1.0, 1.0, 0.0, has_descriptor=True)
            )
        assert [r.node for r in envelope.reports] == [5, 6, 7]
        assert [r.node for r in envelope.reports_server_first()] == [7, 6, 5]

    def test_reports_server_first_copies(self):
        envelope = RequestEnvelope(object_id=9)
        envelope.add_report(NodeReport(1, 1.0, 1.0, 0.0, True))
        first = envelope.reports_server_first()
        first.append("sentinel")
        assert len(envelope.reports) == 1


class TestResponseEnvelope:
    def test_should_cache(self):
        response = ResponseEnvelope(
            object_id=9, cache_at=frozenset({2, 4}), expected_gain=1.5
        )
        assert response.should_cache(2)
        assert response.should_cache(4)
        assert not response.should_cache(3)

    def test_empty_decision(self):
        response = ResponseEnvelope(
            object_id=9, cache_at=frozenset(), expected_gain=0.0
        )
        assert not response.should_cache(0)
