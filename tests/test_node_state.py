"""Tests for descriptor migration between main cache and d-cache."""

from __future__ import annotations

import pytest

from repro.schemes.node_state import DescriptorNode


@pytest.fixture
def node():
    return DescriptorNode(capacity_bytes=200, dcache_entries=4)


class TestDescriptorLookup:
    def test_unknown_object_has_no_descriptor(self, node):
        assert node.descriptor(1) is None
        assert node.record_request(1, now=0.0) is None

    def test_descriptor_found_in_main_cache(self, node):
        node.insert_object(1, size=100, penalty=2.0, now=0.0)
        descriptor = node.descriptor(1)
        assert descriptor is not None
        assert descriptor.miss_penalty == 2.0

    def test_descriptor_found_in_dcache(self, node):
        node.ensure_dcache_descriptor(1, size=100, penalty=3.0, now=0.0)
        descriptor = node.descriptor(1)
        assert descriptor is not None
        assert descriptor.miss_penalty == 3.0


class TestRecordRequest:
    def test_records_on_main_cache_descriptor(self, node):
        node.insert_object(1, size=100, penalty=2.0, now=0.0)
        descriptor = node.record_request(1, now=10.0)
        assert descriptor.estimator.reference_count == 2

    def test_records_on_dcache_descriptor(self, node):
        node.ensure_dcache_descriptor(1, size=100, penalty=2.0, now=0.0)
        descriptor = node.record_request(1, now=10.0)
        assert descriptor.estimator.reference_count == 2


class TestInsertObject:
    def test_descriptor_migrates_from_dcache(self, node):
        node.ensure_dcache_descriptor(1, size=100, penalty=2.0, now=0.0)
        node.record_request(1, now=5.0)
        node.insert_object(1, size=100, penalty=4.0, now=10.0)
        assert 1 not in node.dcache
        entry = node.cache.entry(1)
        assert entry.descriptor.estimator.reference_count == 2
        assert entry.descriptor.miss_penalty == 4.0

    def test_victims_fall_to_dcache(self, node):
        node.insert_object(1, size=150, penalty=1.0, now=0.0)
        node.insert_object(2, size=150, penalty=1.0, now=1.0)
        assert 1 not in node.cache
        assert 1 in node.dcache

    def test_oversized_object_restores_dcache_descriptor(self, node):
        node.ensure_dcache_descriptor(1, size=500, penalty=1.0, now=0.0)
        assert node.insert_object(1, size=500, penalty=2.0, now=1.0) is None
        assert 1 in node.dcache
        assert 1 not in node.cache

    def test_update_miss_penalty_in_both_locations(self, node):
        node.insert_object(1, size=50, penalty=1.0, now=0.0)
        node.ensure_dcache_descriptor(2, size=50, penalty=1.0, now=0.0)
        node.update_miss_penalty(1, 9.0, now=1.0)
        node.update_miss_penalty(2, 8.0, now=1.0)
        node.update_miss_penalty(3, 7.0, now=1.0)  # unknown: no-op
        assert node.cache.entry(1).descriptor.miss_penalty == 9.0
        assert node.dcache.peek(2).miss_penalty == 8.0

    def test_ensure_refreshes_existing_penalty(self, node):
        node.ensure_dcache_descriptor(1, size=50, penalty=1.0, now=0.0)
        node.ensure_dcache_descriptor(1, size=50, penalty=6.0, now=1.0)
        assert node.dcache.peek(1).miss_penalty == 6.0
        # Reference count unchanged by the second ensure (no new record).
        assert node.dcache.peek(1).estimator.reference_count == 1

    def test_no_object_in_both_caches(self, node):
        for i in range(8):
            node.insert_object(i, size=60, penalty=1.0, now=float(i))
            node.check_invariants()
