"""Robustness tests for the live cluster's wire protocol.

Satellite of the serving layer: partial reads, zero-length and oversized
frames, malformed payloads, and peers disconnecting mid-request must all
surface as clean :class:`~repro.serve.protocol.ProtocolError`\\ s --
never a hang, never silent corruption.
"""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.serve.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    RemoteProtocolError,
    decode_payload,
    encode_frame,
    error_message,
    raise_if_error,
    read_message,
)
from repro.serve.transport import InProcessTransport, TCPTransport


def run(coro, timeout=10.0):
    """Drive a coroutine with a hang guard: every await must finish."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


class TestFraming:
    def test_round_trip(self):
        message = {"type": "get", "object_id": 7, "acc": 0.125}
        frame = encode_frame(message)
        (length,) = struct.unpack(">I", frame[:HEADER_BYTES])
        assert length == len(frame) - HEADER_BYTES
        assert decode_payload(frame[HEADER_BYTES:]) == message

    def test_float_exactness(self):
        # JSON shortest-repr round-trips doubles exactly -- the property
        # the bit-for-bit simulator oracle rests on.
        values = [0.1, 1 / 3, 2.5000000000000004, 1e-17, 123456.789]
        frame = encode_frame({"type": "x", "v": values})
        assert decode_payload(frame[HEADER_BYTES:])["v"] == values

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "x", "pad": "a" * MAX_FRAME_BYTES})

    def test_payload_must_be_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_payload(b"\xff\xfe not json")

    def test_payload_must_be_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1, 2, 3]")

    def test_payload_must_carry_type(self):
        with pytest.raises(ProtocolError, match="'type'"):
            decode_payload(b'{"object_id": 5}')


class TestFrameDecoder:
    def test_byte_by_byte_partial_reads(self):
        messages = [{"type": "a", "i": i} for i in range(3)]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        seen = []
        for i in range(len(stream)):
            seen.extend(decoder.feed(stream[i : i + 1]))
        assert seen == messages
        assert decoder.at_boundary
        decoder.finish()

    def test_many_frames_in_one_chunk(self):
        messages = [{"type": "b", "i": i} for i in range(5)]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        assert decoder.feed(stream) == messages

    def test_split_inside_header(self):
        frame = encode_frame({"type": "c"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:2]) == []
        assert decoder.feed(frame[2:]) == [{"type": "c"}]

    def test_zero_length_frame(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="zero-length"):
            decoder.feed(struct.pack(">I", 0))

    def test_oversized_frame(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack(">I", 65))

    def test_finish_mid_frame(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame({"type": "d"})[:-1])
        assert not decoder.at_boundary
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.finish()


class TestAsyncReads:
    """read_message against a hand-fed StreamReader: every truncation
    point must produce an error, clean EOF must produce None."""

    @staticmethod
    def _read(data: bytes):
        """Feed bytes + EOF into a StreamReader and read one message."""

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_message(reader)

        return run(scenario())

    def test_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_whole_message(self):
        assert self._read(encode_frame({"type": "ping"})) == {"type": "ping"}

    def test_disconnect_mid_header(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            self._read(b"\x00\x00")

    def test_disconnect_mid_frame(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._read(encode_frame({"type": "ping"})[:-3])

    def test_zero_length_frame(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            self._read(struct.pack(">I", 0) + b"x")

    def test_oversized_frame(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            self._read(struct.pack(">I", MAX_FRAME_BYTES + 1))


class TestErrorFrames:
    def test_error_round_trip(self):
        frame = error_message(ProtocolError("boom"))
        assert frame["type"] == "error"
        with pytest.raises(RemoteProtocolError, match="boom"):
            raise_if_error(frame)

    def test_non_error_passes_through(self):
        assert raise_if_error({"type": "pong"}) == {"type": "pong"}


class TestInProcessTransport:
    def test_handler_exception_surfaces_remotely(self):
        async def scenario():
            transport = InProcessTransport()

            async def handler(message):
                raise ValueError("node exploded")

            await transport.start_node(1, handler)
            with pytest.raises(RemoteProtocolError, match="node exploded"):
                await transport.call(1, {"type": "ping"})
            await transport.close()

        run(scenario())

    def test_unknown_address(self):
        async def scenario():
            transport = InProcessTransport()
            with pytest.raises(ProtocolError, match="no node"):
                await transport.call(42, {"type": "ping"})

        run(scenario())

    def test_messages_cross_the_codec(self):
        # An unserializable message must fail exactly as it would on TCP.
        async def scenario():
            transport = InProcessTransport()

            async def handler(message):
                return {"type": "pong"}

            await transport.start_node(1, handler)
            with pytest.raises(TypeError):
                await transport.call(1, {"type": "ping", "bad": object()})
            await transport.close()

        run(scenario())


class TestTCPTransportRobustness:
    @staticmethod
    async def _echo_node(transport):
        async def handler(message):
            return {"type": "pong", "echo": message.get("n")}

        return await transport.start_node(1, handler)

    def test_request_reply_and_pooling(self):
        async def scenario():
            transport = TCPTransport()
            address = await self._echo_node(transport)
            for n in range(3):  # sequential calls reuse one pooled conn
                reply = await transport.call(
                    address, {"type": "ping", "n": n}
                )
                assert reply == {"type": "pong", "echo": n}
            assert len(transport._pools[address]) == 1
            await transport.close()

        run(scenario())

    def test_malformed_frame_gets_error_reply_then_close(self):
        async def scenario():
            transport = TCPTransport()
            host, port = await self._echo_node(transport)
            reader, writer = await asyncio.open_connection(host, port)
            garbage = b"this is not json"
            writer.write(struct.pack(">I", len(garbage)) + garbage)
            await writer.drain()
            reply = await read_message(reader)
            assert reply["type"] == "error"
            assert "malformed" in reply["detail"]
            assert await reader.read() == b""  # server closed the stream
            writer.close()
            await transport.close()

        run(scenario())

    def test_zero_length_frame_gets_error_reply(self):
        async def scenario():
            transport = TCPTransport()
            host, port = await self._echo_node(transport)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(struct.pack(">I", 0))
            await writer.drain()
            reply = await read_message(reader)
            assert reply["type"] == "error"
            assert "zero-length" in reply["detail"]
            writer.close()
            await transport.close()

        run(scenario())

    def test_client_disconnect_mid_request_leaves_server_serving(self):
        async def scenario():
            transport = TCPTransport()
            host, port = await self._echo_node(transport)
            _, writer = await asyncio.open_connection(host, port)
            frame = encode_frame({"type": "ping", "n": 9})
            writer.write(frame[: len(frame) // 2])  # die mid-frame
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # The server must shrug that connection off and keep serving.
            reply = await transport.call(
                (host, port), {"type": "ping", "n": 1}
            )
            assert reply == {"type": "pong", "echo": 1}
            await transport.close()

        run(scenario())

    def test_peer_closing_before_reply_raises(self):
        async def scenario():
            # A server that accepts and immediately hangs up.
            async def slam(reader, writer):
                writer.close()

            server = await asyncio.start_server(slam, host="127.0.0.1")
            host, port = server.sockets[0].getsockname()[:2]
            transport = TCPTransport()
            with pytest.raises(ProtocolError):
                await transport.call((host, port), {"type": "ping"})
            server.close()
            await server.wait_closed()
            await transport.close()

        run(scenario())

    def test_handler_exception_surfaces_remotely(self):
        async def scenario():
            transport = TCPTransport()

            async def handler(message):
                raise KeyError("missing thing")

            address = await transport.start_node(1, handler)
            with pytest.raises(RemoteProtocolError, match="missing thing"):
                await transport.call(address, {"type": "ping"})
            await transport.close()

        run(scenario())

    def test_frames_with_payload_survive_chunked_delivery(self):
        # Drip-feed a frame over many tiny writes; the server must
        # reassemble it exactly once and reply once.
        async def scenario():
            transport = TCPTransport()
            host, port = await self._echo_node(transport)
            reader, writer = await asyncio.open_connection(host, port)
            frame = encode_frame({"type": "ping", "n": json.loads("123")})
            for i in range(len(frame)):
                writer.write(frame[i : i + 1])
                await writer.drain()
            reply = await read_message(reader)
            assert reply == {"type": "pong", "echo": 123}
            writer.close()
            await transport.close()

        run(scenario())
