"""Regression tests pinning the bugfixes shipped with the audit layer.

Each test encodes the *observable* symptom of a bug the correctness
audit exposed, so a reintroduction fails loudly:

* ``NCLCache.cost_loss`` summing stale sorted keys instead of each
  victim's current ``f * m``;
* nearest-rank percentile indexing off by one for small samples;
* ``load_checkpoint`` crashing on a line missing its ``"key"``;
* results/record JSON writes destroying the existing file when
  interrupted mid-serialization.
"""

from __future__ import annotations

import json

import pytest

from repro.cache.descriptors import ObjectDescriptor
from repro.cache.ncl import NCLCache
from repro.cache.ncl_heap import HeapNCLCache
from repro.metrics.collector import MetricsCollector
from repro.experiments.results_io import (
    load_checkpoint,
    load_points_json,
    save_points_json,
    save_run_records,
)
from repro.schemes.base import RequestOutcome


def desc(object_id: int, size: int, penalty: float, now: float) -> ObjectDescriptor:
    d = ObjectDescriptor(object_id, size, miss_penalty=penalty)
    d.record_access(now)
    return d


class TestCostLossCurrentRates:
    @pytest.mark.parametrize("cache_type", [NCLCache, HeapNCLCache])
    def test_cost_loss_prices_victims_at_now(self, cache_type):
        """l = sum of victims' *current* f*m, not their stale sorted keys."""
        cache = cache_type(100)
        cache.insert(desc(1, 50, penalty=2.0, now=0.0), now=0.0)
        cache.insert(desc(2, 50, penalty=3.0, now=0.0), now=0.0)
        # What the sorted keys say right now -- the value the old bug
        # reported.  Computed before any aging refresh happens.
        stale = sum(
            cache.entry(oid).descriptor.normalized_cost_loss(0.0)
            * cache.entry(oid).size
            for oid in cache.object_ids()
        )
        # Age past the estimator's refresh interval (600s): the current
        # frequencies drop below the insertion-time keys.
        later = 700.0
        victims = cache.select_victims(100, now=later)
        expected = sum(v.descriptor.cost_rate(later) for v in victims)
        observed = cache.cost_loss(3, 100, now=later)
        assert observed == pytest.approx(expected)
        assert stale != pytest.approx(expected)


class TestPercentileIndexing:
    def test_two_samples_p50_is_smaller_value(self):
        """Nearest-rank: p50 of {1, 9} is 1 (ceil(0.5 * 2) - 1 = index 0)."""
        collector = MetricsCollector()
        path = (0, 1)
        for latency in (9.0, 1.0):
            collector.record(
                RequestOutcome(path=path, hit_index=1, size=10), latency
            )
        p50, p90, p99 = collector.summary().latency_percentiles
        assert p50 == 1.0
        assert p90 == 9.0
        assert p99 == 9.0

    def test_single_sample_all_percentiles(self):
        collector = MetricsCollector()
        collector.record(
            RequestOutcome(path=(0, 1), hit_index=1, size=10), 4.0
        )
        assert collector.summary().latency_percentiles == (4.0, 4.0, 4.0)


class TestCheckpointRobustness:
    def test_lines_without_key_are_skipped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"schema_version": 1, "point": {}}),  # no key
                    json.dumps({"schema_version": 1, "key": 7}),  # bad type
                    json.dumps([1, 2, 3]),  # not an object
                    "{truncated",  # killed mid-write
                ]
            )
            + "\n"
        )
        assert load_checkpoint(path) == {}


class TestAtomicSaves:
    def _sample_records(self):
        return [
            {
                "key": "k",
                "scheme": "lru",
                "relative_cache_size": 0.03,
                "duration_seconds": 1.0,
                "requests": 10,
                "requests_per_second": 10.0,
                "worker": 1,
                "reused": False,
            }
        ]

    def test_failed_write_preserves_existing_file(self, tmp_path):
        path = tmp_path / "records.json"
        save_run_records(self._sample_records(), path)
        original = path.read_text()
        bad = [{"key": object()}]  # not JSON-serializable
        with pytest.raises(TypeError):
            save_run_records(bad, path)
        assert path.read_text() == original
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_successful_write_round_trips(self, tmp_path, tiny_workload):
        # save_points_json shares the same atomic writer; round-trip it.
        from repro.experiments.presets import build_architecture
        from repro.experiments.runner import GridTask, execute_point
        from repro.sim.config import SimulationConfig
        from repro.workload.generator import BoeingLikeTraceGenerator

        generator = BoeingLikeTraceGenerator(tiny_workload)
        trace = generator.generate()
        architecture = build_architecture(
            "en-route", tiny_workload, seed=tiny_workload.seed
        )
        point, _ = execute_point(
            architecture,
            trace,
            generator.catalog,
            GridTask(
                scheme="lru", config=SimulationConfig(relative_cache_size=0.03)
            ),
        )
        path = tmp_path / "points.json"
        save_points_json([point], path)
        assert load_points_json(path) == [point]
