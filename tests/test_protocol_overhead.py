"""Tests for coordination-protocol overhead accounting."""

from __future__ import annotations

import pytest

from repro.core.coordinated import CoordinatedScheme
from repro.core.piggyback import ProtocolStats
from repro.costs.model import LatencyCostModel
from repro.topology.builder import build_chain

PATH = [0, 1, 2, 3]


@pytest.fixture
def scheme():
    network = build_chain([1.0] * 3)
    cost = LatencyCostModel(network, 100.0)
    return CoordinatedScheme(cost, capacity_bytes=1000, dcache_entries=8)


class TestProtocolStats:
    def test_overhead_bytes_formula(self):
        stats = ProtocolStats(
            requests=10,
            reports=7,
            no_descriptor_tags=3,
            decisions=2,
            responses_with_accumulator=5,
        )
        assert stats.overhead_bytes(
            report_bytes=10, tag_bytes=1, decision_bytes=2, accumulator_bytes=4
        ) == 7 * 10 + 3 * 1 + 2 * 2 + 5 * 4

    def test_fresh_scheme_counts_tags(self, scheme):
        scheme.process_request(PATH, 7, 100, now=0.0)
        stats = scheme.protocol_stats
        assert stats.requests == 1
        # No node knew the object: all three intermediate caches tag.
        assert stats.no_descriptor_tags == 3
        assert stats.reports == 0
        assert stats.decisions == 0
        assert stats.responses_with_accumulator == 1

    def test_reports_counted_once_descriptors_exist(self, scheme):
        scheme.process_request(PATH, 7, 100, now=0.0)
        scheme.process_request(PATH, 7, 100, now=10.0)
        stats = scheme.protocol_stats
        assert stats.requests == 2
        assert stats.reports == 3  # second pass: every node reports
        assert stats.no_descriptor_tags == 3  # only from the first pass

    def test_local_hit_carries_no_accumulator(self, scheme):
        # Warm until cached at the client node, then a hit at index 0
        # ships no response accumulator (no links traversed).
        for t in range(6):
            scheme.process_request(PATH, 7, 100, now=float(t * 10))
        if scheme.has_object(0, 7):
            before = scheme.protocol_stats.responses_with_accumulator
            scheme.process_request(PATH, 7, 100, now=100.0)
            assert scheme.protocol_stats.responses_with_accumulator == before

    def test_overhead_small_relative_to_object_bytes(self, scheme):
        """The paper's overhead claim on a micro-scale replay."""
        moved = 0
        for t in range(200):
            object_id = t % 7
            outcome = scheme.process_request(PATH, object_id, 5000, float(t))
            moved += outcome.size * max(outcome.hops, 1)
        overhead = scheme.protocol_stats.overhead_bytes()
        assert overhead < 0.05 * moved
