"""Tests for replication-density instrumentation."""

from __future__ import annotations

import pytest

from repro.costs.model import LatencyCostModel
from repro.metrics.replication import (
    copies_per_object,
    density_by_popularity,
    occupancy_by_level,
)
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.topology.builder import build_chain
from repro.topology.tree import TreeConfig, build_tree_topology


@pytest.fixture
def chain_scheme():
    network = build_chain([1.0] * 3)
    cost = LatencyCostModel(network, 100.0)
    return LRUEverywhereScheme(cost, capacity_bytes=1000)


class TestCopiesPerObject:
    def test_counts_copies_across_nodes(self, chain_scheme):
        chain_scheme.process_request([0, 1, 2, 3], 7, 100, now=0.0)
        counts = copies_per_object(chain_scheme)
        assert counts == {7: 3}

    def test_empty_scheme(self, chain_scheme):
        assert copies_per_object(chain_scheme) == {}


class TestDensityByPopularity:
    def test_bucket_means(self, chain_scheme):
        chain_scheme.process_request([0, 1, 2, 3], 1, 100, now=0.0)  # 3 copies
        ranking = [1, 2]  # object 2 never requested
        means = density_by_popularity(chain_scheme, ranking, buckets=2)
        assert means == [3.0, 0.0]

    def test_single_bucket_average(self, chain_scheme):
        chain_scheme.process_request([0, 1, 2, 3], 1, 100, now=0.0)
        means = density_by_popularity(chain_scheme, [1, 2], buckets=1)
        assert means == [1.5]

    def test_validation(self, chain_scheme):
        with pytest.raises(ValueError):
            density_by_popularity(chain_scheme, [1], buckets=0)
        with pytest.raises(ValueError):
            density_by_popularity(chain_scheme, [], buckets=2)

    def test_more_buckets_than_objects(self, chain_scheme):
        chain_scheme.process_request([0, 1, 2, 3], 1, 100, now=0.0)
        means = density_by_popularity(chain_scheme, [1], buckets=4)
        assert len(means) == 4
        assert means[-1] == 3.0  # the single object lands in one bucket


class TestOccupancyByLevel:
    def test_levels_reported(self):
        topo = build_tree_topology(TreeConfig(depth=2, fanout=2))
        cost = LatencyCostModel(topo.network, 100.0)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=200)
        # Path: leaf (level 0) -> root (level 1) -> server (level 2).
        leaf = topo.leaves[0]
        scheme.process_request([leaf, topo.root, topo.server_node], 5, 100, 0.0)
        occupancy = occupancy_by_level(scheme, topo.network)
        assert occupancy[0] == pytest.approx(0.5)
        assert occupancy[1] == pytest.approx(0.5)
        assert 2 not in occupancy  # server node has no materialized cache
