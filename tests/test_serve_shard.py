"""The sharded cluster: ring assignment, worker fleet, backpressure.

Three layers of guarantees:

* the consistent-hash plan is a deterministic, stable, total partition
  of the topology (pure functions, no processes);
* a two-shard **multi-process** TCP run replays a trace with zero
  client-visible errors and the exact hit/miss totals of the simulator
  -- sharding is an ownership split, never a behavior change -- while
  the ``cross_shard_fwds`` counters prove walks really crossed the
  process boundary;
* admission control sheds with retryable ``busy`` frames once a node's
  inflight bound is hit, and never fires under sequential replay.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.serve import (
    Cluster,
    ClusterClient,
    HashRing,
    InProcessTransport,
    LoadGenerator,
    NodeBusy,
    ShardPlan,
    ShardedCluster,
    TCPTransport,
    fetch_stats,
)
from repro.serve.protocol import MSG_GET
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=80,
    num_servers=3,
    num_clients=10,
    num_requests=400,
    zipf_theta=0.8,
    seed=7,
)
CONFIG = SimulationConfig(relative_cache_size=0.01)


@pytest.fixture(scope="module")
def scenario():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", WORKLOAD, seed=4)
    return arch, trace, catalog


def run(coro, timeout=120.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing([0, 1, 2])
        b = HashRing([0, 1, 2])
        assert [a.assign(k) for k in range(200)] == [
            b.assign(k) for k in range(200)
        ]

    def test_all_shards_reachable(self):
        ring = HashRing([0, 1, 2, 3])
        seen = {ring.assign(k) for k in range(500)}
        assert seen == {0, 1, 2, 3}

    def test_removal_is_stable(self):
        # Consistent hashing's defining property: dropping one shard
        # only remaps the keys that shard owned.
        full = HashRing([0, 1, 2, 3])
        reduced = HashRing([0, 1, 2])
        for key in range(500):
            before = full.assign(key)
            if before != 3:
                assert reduced.assign(key) == before

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0], replicas=0)


class TestShardPlan:
    def test_total_disjoint_partition(self, scenario):
        arch, _, _ = scenario
        plan = ShardPlan.compute(arch, 3)
        nodes = sorted(arch.network.nodes())
        assert sorted(plan.assignment) == nodes
        owned = [n for s in range(3) for n in plan.nodes_of(s)]
        assert sorted(owned) == nodes

    def test_no_shard_is_empty(self, scenario):
        arch, _, _ = scenario
        # Push the shard count up to stress the repair loop.
        for shards in (2, 3, 5, 8):
            plan = ShardPlan.compute(arch, shards)
            for shard in range(shards):
                assert plan.nodes_of(shard), f"shard {shard} empty"

    def test_deterministic(self, scenario):
        arch, _, _ = scenario
        assert (
            ShardPlan.compute(arch, 4).assignment
            == ShardPlan.compute(arch, 4).assignment
        )

    def test_client_edge_follows_attachment(self, scenario):
        arch, _, _ = scenario
        plan = ShardPlan.compute(arch, 2)
        for client_id, node in arch.client_nodes.items():
            assert plan.client_shard(arch, client_id) == (
                plan.assignment[node]
            )

    def test_bounds(self, scenario):
        arch, _, _ = scenario
        with pytest.raises(ValueError):
            ShardPlan.compute(arch, 0)
        with pytest.raises(ValueError):
            ShardPlan.compute(arch, len(arch.network.nodes()) + 1)


class TestShardedClusterLive:
    def test_two_shard_run_matches_simulator(self, scenario):
        """The acceptance oracle: multi-process == simulator, exactly."""
        arch, trace, catalog = scenario
        cost_model = LatencyCostModel(arch.network, catalog.mean_size)
        capacity = CONFIG.capacity_bytes(catalog.total_bytes)
        dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
        scheme = build_scheme("coordinated", cost_model, capacity, dcache)
        sim = SimulationEngine(
            arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
        ).run(trace)

        cluster = ShardedCluster(
            arch, catalog, "coordinated", num_shards=2, config=CONFIG
        )
        addresses = cluster.start()
        try:
            assert len(addresses) == len(arch.network.nodes())

            async def drive():
                client = ClusterClient(
                    arch, cost_model, addresses, TCPTransport()
                )
                loadgen = LoadGenerator(
                    client, trace, warmup_fraction=CONFIG.warmup_fraction
                )
                try:
                    report = await loadgen.run(mode="sequential")
                    stats = await fetch_stats(addresses)
                finally:
                    await client.close()
                return report, stats

            report, stats = run(drive())
        finally:
            final = cluster.stop()

        assert report.errors == 0 and report.rejected == 0
        assert report.requests_measured == sim.requests_measured
        assert report.summary.hit_ratio == sim.summary.hit_ratio
        assert report.summary.byte_hit_ratio == sim.summary.byte_hit_ratio
        assert report.summary.mean_hops == sim.summary.mean_hops
        assert report.summary.mean_latency == sim.summary.mean_latency
        # Walks crossed the process boundary; the partition is real.
        live_xfwd = sum(
            s["stats"].get("cross_shard_fwds", 0) for s in stats.values()
        )
        assert live_xfwd > 0
        # The workers' final stats agree with what the wire reported.
        final_xfwd = sum(
            n["stats"].get("cross_shard_fwds", 0) for n in final.values()
        )
        assert final_xfwd == live_xfwd
        # Sequential replay can never trip admission control.
        assert all(
            s["stats"].get("busy_rejections", 0) == 0 for s in stats.values()
        )

    def test_worker_stats_cover_every_node(self, scenario):
        arch, trace, catalog = scenario
        cluster = ShardedCluster(
            arch, catalog, "lru", num_shards=2, config=CONFIG
        )
        addresses = cluster.start()
        try:
            cost_model = LatencyCostModel(arch.network, catalog.mean_size)

            async def drive():
                client = ClusterClient(
                    arch, cost_model, addresses, TCPTransport()
                )
                loadgen = LoadGenerator(client, trace)
                try:
                    return await loadgen.run(mode="closed", concurrency=4)
                finally:
                    await client.close()

            report = run(drive())
        finally:
            final = cluster.stop()
        assert report.errors == 0
        assert sorted(final) == sorted(arch.network.nodes())
        assert sum(n["requests_handled"] for n in final.values()) > 0


class TestAdmissionControl:
    def test_busy_shed_and_counted(self, scenario):
        """A node at its inflight bound sheds with a retryable busy frame."""
        arch, trace, catalog = scenario

        async def flood():
            # A bare in-process dispatch never suspends (plain coroutine
            # awaits), so concurrent gets would serialize and the bound
            # could never trip; a call timeout wraps each dispatch in a
            # real task, giving the walks genuine overlap.
            cluster = Cluster.build(
                arch,
                catalog,
                "lru",
                config=CONFIG,
                transport=InProcessTransport(call_timeout=30.0),
                max_inflight=1,
            )
            await cluster.start()
            record = trace[0]
            ingress = cluster.ingress_address(record.client_id)

            async def one(object_id: int):
                return await cluster.transport.call(
                    ingress,
                    {
                        "type": MSG_GET,
                        "client_id": record.client_id,
                        "server_id": record.server_id,
                        "object_id": object_id,
                        "size": 100,
                        "time": 0.0,
                    },
                )

            results = await asyncio.gather(
                *(one(i) for i in range(12)), return_exceptions=True
            )
            busy_total = sum(
                node.registry.node(node_id).busy_rejections
                for node_id, node in cluster.nodes.items()
            )
            await cluster.stop(drain=False)
            return results, busy_total

        results, busy_total = run(flood())
        shed = [r for r in results if isinstance(r, NodeBusy)]
        served = [r for r in results if isinstance(r, dict)]
        assert shed, "an inflight bound of 1 must shed concurrent walks"
        assert served, "the admitted walk must still complete"
        assert busy_total == len(shed)

    def test_sequential_never_sheds(self, scenario):
        """max_inflight >= 1 is invisible to one-at-a-time replay."""
        arch, trace, catalog = scenario

        async def live():
            cluster = Cluster.build(
                arch,
                catalog,
                "lru",
                config=CONFIG,
                transport=InProcessTransport(),
                max_inflight=1,
            )
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace)
            report = await loadgen.run(mode="sequential")
            busy_total = sum(
                node.registry.node(node_id).busy_rejections
                for node_id, node in cluster.nodes.items()
            )
            await cluster.stop(drain=False)
            return report, busy_total

        report, busy_total = run(live())
        assert report.errors == 0 and report.rejected == 0
        assert busy_total == 0
