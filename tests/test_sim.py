"""Tests for the simulation layer: architectures, config, factory, engine."""

from __future__ import annotations

import pytest

from repro.costs.model import LatencyCostModel
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.sim.architecture import (
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.topology.graph import NodeKind
from repro.topology.tiers import TiersConfig
from repro.topology.tree import TreeConfig
from repro.workload.generator import BoeingLikeTraceGenerator
from repro.workload.trace import Trace


class TestEnrouteArchitecture:
    def test_attachment_to_man_nodes_only(self):
        arch = build_enroute_architecture(num_clients=30, num_servers=10, seed=0)
        man = set(arch.network.nodes_of_kind(NodeKind.MAN))
        assert set(arch.client_nodes.values()) <= man
        assert set(arch.server_nodes.values()) <= man

    def test_request_path_endpoints(self):
        arch = build_enroute_architecture(num_clients=5, num_servers=5, seed=1)
        path = arch.request_path(client_id=0, server_id=0)
        assert path[0] == arch.client_nodes[0]
        assert path[-1] == arch.server_nodes[0]

    def test_deterministic_by_seed(self):
        a = build_enroute_architecture(5, 5, seed=2)
        b = build_enroute_architecture(5, 5, seed=2)
        assert a.client_nodes == b.client_nodes
        assert a.server_nodes == b.server_nodes

    def test_mean_hops_close_to_paper(self):
        """Table 1 reports ~12 hops between origin servers and clients."""
        arch = build_enroute_architecture(
            num_clients=100, num_servers=50, seed=0,
            tiers_config=TiersConfig(seed=0),
        )
        hops = arch.mean_client_server_hops()
        assert 6 <= hops <= 18

    def test_validation(self):
        with pytest.raises(ValueError):
            build_enroute_architecture(0, 1)


class TestHierarchicalArchitecture:
    def test_clients_at_leaves_servers_at_server_node(self):
        arch = build_hierarchical_architecture(num_clients=20, num_servers=5)
        levels = {arch.network.level(n) for n in arch.client_nodes.values()}
        assert levels == {0}
        assert len(set(arch.server_nodes.values())) == 1

    def test_path_runs_leaf_to_server_through_root(self):
        arch = build_hierarchical_architecture(num_clients=2, num_servers=1)
        path = arch.request_path(0, 0)
        assert len(path) == 5  # leaf, l1, l2, root, server
        assert [arch.network.level(n) for n in path] == [0, 1, 2, 3, 4]

    def test_requires_server_node(self):
        with pytest.raises(ValueError):
            build_hierarchical_architecture(
                1, 1, tree_config=TreeConfig(include_server_node=False)
            )

    def test_cache_nodes_exclude_server_attachment(self):
        arch = build_hierarchical_architecture(num_clients=3, num_servers=2)
        server_node = next(iter(arch.server_nodes.values()))
        assert server_node not in arch.cache_nodes
        assert len(arch.cache_nodes) == arch.network.num_nodes - 1

    def test_enroute_every_node_hosts_a_cache(self):
        arch = build_enroute_architecture(num_clients=3, num_servers=2, seed=0)
        assert len(arch.cache_nodes) == arch.network.num_nodes


class TestSimulationConfig:
    def test_capacity_from_relative_size(self):
        config = SimulationConfig(relative_cache_size=0.01)
        assert config.capacity_bytes(1_000_000) == 10_000
        assert config.capacity_bytes(10) == 1  # floor of at least one byte

    def test_dcache_entries_rule(self):
        config = SimulationConfig(relative_cache_size=0.01, dcache_ratio=3.0)
        # capacity 10_000, mean size 1_000 -> 10 objects -> 30 descriptors.
        assert config.dcache_entries(1_000_000, 1_000.0) == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(relative_cache_size=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(dcache_ratio=-1)
        with pytest.raises(ValueError):
            SimulationConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            SimulationConfig().dcache_entries(100, 0.0)


class TestFactory:
    def test_registry_contents(self):
        assert {"lru", "modulo", "lnc-r", "coordinated"} <= set(SCHEME_NAMES)
        assert {"lfu", "gds", "admission-lru"} <= set(SCHEME_NAMES)
        assert {"adaptive", "costaware"} <= set(SCHEME_NAMES)

    def test_registry_rejects_duplicate_names(self):
        from repro.sim.factory import register_scheme

        with pytest.raises(ValueError, match="duplicate scheme registration"):
            register_scheme("coordinated", lambda *a, **k: None)

    def test_adaptive_step_size_parameter(self, chain_costs):
        scheme = build_scheme("adaptive", chain_costs, 1000, 10, step_size=0.25)
        assert scheme.step_size == 0.25
        with pytest.raises(ValueError, match="step_size"):
            build_scheme("adaptive", chain_costs, 1000, 10, step_size=0.0)

    def test_builds_each_scheme(self, chain4, chain_costs):
        for name in SCHEME_NAMES:
            scheme = build_scheme(name, chain_costs, 1000, 10)
            assert scheme.capacity_bytes == 1000

    def test_modulo_radius_parameter(self, chain_costs):
        scheme = build_scheme("modulo", chain_costs, 1000, 10, radius=2)
        assert scheme.radius == 2

    def test_unknown_scheme_raises(self, chain_costs):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_scheme("magic", chain_costs, 1000, 10)

    def test_unknown_scheme_error_lists_registry(self, chain_costs):
        """The error must tell the user what the valid names are."""
        with pytest.raises(ValueError) as excinfo:
            build_scheme("magic", chain_costs, 1000, 10)
        message = str(excinfo.value)
        for name in SCHEME_NAMES:
            assert name in message


class TestSimulationEngine:
    def _setup(self, tiny_workload):
        generator = BoeingLikeTraceGenerator(tiny_workload)
        trace = generator.generate()
        arch = build_hierarchical_architecture(
            num_clients=tiny_workload.num_clients,
            num_servers=tiny_workload.num_servers,
            seed=0,
        )
        catalog = generator.catalog
        cost = LatencyCostModel(arch.network, catalog.mean_size)
        return arch, trace, catalog, cost

    def test_run_produces_summary(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=50_000)
        engine = SimulationEngine(arch, cost, scheme, warmup_fraction=0.5)
        result = engine.run(trace)
        assert result.requests_total == len(trace)
        assert result.requests_measured == len(trace) - len(trace) // 2
        assert result.summary.mean_latency > 0
        assert 0 <= result.summary.byte_hit_ratio <= 1

    def test_warmup_excluded_from_measurement(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=50_000)
        engine = SimulationEngine(arch, cost, scheme, warmup_fraction=0.9)
        result = engine.run(trace)
        assert result.requests_measured == len(trace) - int(len(trace) * 0.9)

    def test_empty_trace_rejected(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=1000)
        engine = SimulationEngine(arch, cost, scheme)
        with pytest.raises(ValueError):
            engine.run(Trace([]))

    def test_bad_warmup_fraction_rejected(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=1000)
        with pytest.raises(ValueError):
            SimulationEngine(arch, cost, scheme, warmup_fraction=1.5)

    def test_zero_capacity_all_origin_hits(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=0)
        engine = SimulationEngine(arch, cost, scheme, warmup_fraction=0.0)
        result = engine.run(trace)
        assert result.summary.byte_hit_ratio == 0.0
        assert result.summary.mean_hops == pytest.approx(4.0)

    def test_run_reports_timing_and_throughput(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=50_000)
        engine = SimulationEngine(arch, cost, scheme)
        result = engine.run(trace)
        assert result.duration_seconds > 0
        assert result.requests_per_second == pytest.approx(
            result.requests_total / result.duration_seconds
        )

    def test_progress_callback_fires_every_n_requests(self, tiny_workload):
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=50_000)
        engine = SimulationEngine(arch, cost, scheme)
        calls = []
        engine.run(
            trace,
            progress_every=100,
            progress_callback=lambda done, total: calls.append((done, total)),
        )
        total = len(trace)
        expected = [(i, total) for i in range(100, total + 1, 100)]
        if total % 100 != 0:
            expected.append((total, total))
        assert calls == expected

    def test_progress_callback_without_interval_is_an_error(self, tiny_workload):
        # A callback with progress_every == 0 used to be silently ignored;
        # it is a configuration mistake and must be loud.
        arch, trace, catalog, cost = self._setup(tiny_workload)
        scheme = LRUEverywhereScheme(cost, capacity_bytes=50_000)
        engine = SimulationEngine(arch, cost, scheme)
        with pytest.raises(ValueError, match="progress_every"):
            engine.run(trace, progress_callback=lambda d, t: None)
        with pytest.raises(ValueError):
            engine.run(trace, progress_every=-1)
