"""Tests for trace statistics, scenarios, parallel sweeps and result I/O."""

from __future__ import annotations

import pytest

from repro.experiments.presets import build_architecture
from repro.experiments.results_io import load_points_json, save_points_json
from repro.experiments.sweeps import run_cache_size_sweep
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.scenarios import inject_flash_crowd, inject_scan
from repro.workload.stats import fit_zipf, summarize_trace
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig(
        num_objects=300,
        num_servers=5,
        num_clients=30,
        num_requests=20_000,
        zipf_theta=0.8,
        seed=13,
    )


@pytest.fixture(scope="module")
def generated(workload):
    generator = BoeingLikeTraceGenerator(workload)
    return generator.generate(), generator.catalog


class TestZipfFit:
    def test_recovers_generator_theta(self, generated):
        trace, _ = generated
        fit = fit_zipf(trace)
        # Rank-frequency regression over the full range biases slightly
        # low (tail ranks are noisy), so allow a generous band.
        assert 0.55 < fit.theta < 1.0
        assert fit.r_squared > 0.8
        assert fit.num_objects <= 300
        assert fit.top_decile_share > 0.3

    def test_uniform_trace_has_theta_near_zero(self):
        config = WorkloadConfig(
            num_objects=200,
            num_servers=5,
            num_clients=10,
            num_requests=40_000,
            zipf_theta=0.0,
            seed=2,
        )
        trace = BoeingLikeTraceGenerator(config).generate()
        fit = fit_zipf(trace)
        assert fit.theta < 0.2

    def test_requires_enough_objects(self, generated):
        trace, _ = generated
        tiny = trace.filter_objects(list(trace.most_popular(3)))
        with pytest.raises(ValueError):
            fit_zipf(tiny)


class TestSummarizeTrace:
    def test_basic_statistics(self, generated):
        trace, catalog = generated
        stats = summarize_trace(trace)
        assert stats.requests == len(trace)
        assert stats.unique_objects == trace.unique_objects()
        assert stats.total_bytes == trace.total_requested_bytes()
        assert stats.mean_size > stats.median_size  # heavy tail
        assert stats.mean_request_rate > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace(Trace([]))


class TestScenarios:
    def test_flash_crowd_adds_requests_in_window(self, generated):
        trace, catalog = generated
        crowded = inject_flash_crowd(
            trace, catalog, object_id=5, start=10.0, duration=50.0,
            extra_rate=20.0, num_clients=30, seed=1,
        )
        added = len(crowded) - len(trace)
        assert 700 < added < 1300  # Poisson(1000)
        extra = [
            r for r in crowded
            if r.object_id == 5 and 10.0 <= r.time <= 60.0
        ]
        assert len(extra) >= added
        # Time ordering preserved.
        times = [r.time for r in crowded]
        assert times == sorted(times)
        # Original untouched.
        assert len(trace) == 20_000

    def test_flash_crowd_validation(self, generated):
        trace, catalog = generated
        with pytest.raises(ValueError):
            inject_flash_crowd(trace, catalog, 1, 0.0, 0.0, 1.0, 10)
        with pytest.raises(ValueError):
            inject_flash_crowd(trace, catalog, 1, 0.0, 1.0, 1.0, 0)

    def test_scan_covers_all_objects_once(self, generated):
        trace, catalog = generated
        scanned = inject_scan(trace, catalog, start=5.0, inter_arrival=0.01)
        assert len(scanned) == len(trace) + catalog.num_objects
        scan_records = [r for r in scanned if r.client_id == 0 and r.time >= 5.0]
        assert len({r.object_id for r in scan_records}) >= catalog.num_objects * 0.9

    def test_scan_validation(self, generated):
        trace, catalog = generated
        with pytest.raises(ValueError):
            inject_scan(trace, catalog, 0.0, 0.0)


class TestParallelSweep:
    def test_parallel_matches_sequential(self):
        workload = WorkloadConfig(
            num_objects=60,
            num_servers=4,
            num_clients=8,
            num_requests=1_200,
            seed=5,
        )
        generator = BoeingLikeTraceGenerator(workload)
        trace = generator.generate()
        arch = build_architecture("hierarchical", workload, seed=0)
        kwargs = dict(
            scheme_names=["lru", "coordinated"], cache_sizes=[0.02, 0.1]
        )
        sequential = run_cache_size_sweep(
            arch, trace, generator.catalog, workers=1, **kwargs
        )
        parallel = run_cache_size_sweep(
            arch, trace, generator.catalog, workers=2, **kwargs
        )
        assert [(p.scheme, p.relative_cache_size) for p in sequential] == [
            (p.scheme, p.relative_cache_size) for p in parallel
        ]
        for a, b in zip(sequential, parallel):
            assert a.summary == b.summary

    def test_invalid_workers(self):
        workload = WorkloadConfig(
            num_objects=10, num_servers=2, num_clients=2, num_requests=10
        )
        generator = BoeingLikeTraceGenerator(workload)
        arch = build_architecture("hierarchical", workload, seed=0)
        with pytest.raises(ValueError):
            run_cache_size_sweep(
                arch,
                generator.generate(),
                generator.catalog,
                scheme_names=["lru"],
                cache_sizes=[0.1],
                workers=0,
            )


class TestResultsIO:
    def test_roundtrip(self, tmp_path):
        workload = WorkloadConfig(
            num_objects=40, num_servers=3, num_clients=5, num_requests=800
        )
        generator = BoeingLikeTraceGenerator(workload)
        arch = build_architecture("hierarchical", workload, seed=0)
        points = run_cache_size_sweep(
            arch,
            generator.generate(),
            generator.catalog,
            scheme_names=["lru"],
            cache_sizes=[0.05],
        )
        path = tmp_path / "points.json"
        save_points_json(points, path)
        loaded = load_points_json(path)
        assert len(loaded) == len(points)
        assert loaded[0] == points[0]

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99, "points": []}')
        with pytest.raises(ValueError):
            load_points_json(path)
