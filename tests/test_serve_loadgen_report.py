"""LoadGenerator report folding edge cases (no live cluster needed).

The degenerate runs -- every request errored, or every completion landed
in the warm-up window -- must still produce a well-formed
:class:`~repro.serve.loadgen.LoadReport`: an all-zero summary, ``None``
latency fields (JSON ``null``), and never a bare ``NaN`` token in the
serialized manifest.
"""

from __future__ import annotations

import json
import math

from repro.serve.loadgen import LoadGenerator, _percentiles
from repro.workload.trace import Trace, TraceRecord


def _tiny_trace(n: int = 10) -> Trace:
    return Trace(
        [
            TraceRecord(
                time=float(i), client_id=0, object_id=i, server_id=0, size=100
            )
            for i in range(n)
        ]
    )


def _loadgen(trace: Trace) -> LoadGenerator:
    # _report only touches self.trace / self.warmup_fraction; skip the
    # cluster-wiring __init__ so the fold is testable without sockets.
    gen = object.__new__(LoadGenerator)
    gen.trace = trace
    gen.warmup_fraction = 0.5
    return gen


class TestPercentiles:
    def test_empty_samples_are_null_not_nan(self):
        p50, p90, p99 = _percentiles([])
        assert p50 is None and p90 is None and p99 is None

    def test_single_sample(self):
        assert _percentiles([4.2]) == (4.2, 4.2, 4.2)

    def test_nearest_rank(self):
        samples = list(range(1, 101))
        assert _percentiles(samples) == (50, 90, 99)


class TestZeroCompletedReport:
    def test_report_shape_and_json(self):
        report = _loadgen(_tiny_trace())._report(
            mode="open",
            completed=[],
            duration=0.25,
            applied=0,
            invalidated=0,
            errors=10,
        )
        assert report.requests_measured == 0
        assert report.summary.requests == 0
        assert report.summary.mean_latency == 0.0
        assert report.summary.latency_percentiles == (None, None, None)
        assert report.wall_latency_mean is None
        assert report.wall_latency_percentiles == (None, None, None)
        assert report.errors == 10

        payload = json.dumps(report.to_dict())
        assert "NaN" not in payload and "Infinity" not in payload
        decoded = json.loads(payload)
        assert decoded["wall_latency_mean"] is None
        assert decoded["wall_latency_p99"] is None
        for value in decoded["modelled"].values():
            assert value == 0.0 and not math.isnan(value)
