"""LoadGenerator report folding and driving-mode edge cases.

The degenerate runs -- every request errored, or every completion landed
in the warm-up window -- must still produce a well-formed
:class:`~repro.serve.loadgen.LoadReport`: an all-zero summary, ``None``
latency fields (JSON ``null``), and never a bare ``NaN`` token in the
serialized manifest.  The driving-mode tests stub the cluster (no
sockets): the open-loop pacer must keep memory O(in-flight), abort past
``max_errors`` must stay graceful (partial report, never a cancelled
gather), and ``requests_per_second`` must be the measured-window rate or
``None`` -- never a misleading ``0.0``.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.schemes.base import RequestOutcome
from repro.serve.loadgen import (
    LoadGenerator,
    _Completed,
    _Counters,
    _percentiles,
)
from repro.serve.protocol import NodeBusy
from repro.workload.trace import Trace, TraceRecord


def _tiny_trace(n: int = 10) -> Trace:
    return Trace(
        [
            TraceRecord(
                time=float(i), client_id=0, object_id=i, server_id=0, size=100
            )
            for i in range(n)
        ]
    )


def _loadgen(trace: Trace) -> LoadGenerator:
    # _report only touches self.trace / self.warmup_fraction; skip the
    # cluster-wiring __init__ so the fold is testable without sockets.
    gen = object.__new__(LoadGenerator)
    gen.trace = trace
    gen.warmup_fraction = 0.5
    return gen


def _outcome(size: int = 100) -> RequestOutcome:
    return RequestOutcome(
        path=(0, 1),
        hit_index=1,
        size=size,
        inserted_nodes=(),
        evicted_objects={},
    )


def _completed(index: int, started: float, finished: float) -> _Completed:
    return _Completed(
        index=index,
        outcome=_outcome(),
        latency=1.0,
        wall_seconds=finished - started,
        started=started,
        finished=finished,
    )


def _counters(errors: int = 0, max_errors: int = 0) -> _Counters:
    counters = _Counters(max_errors=max_errors)
    counters.errors = errors
    if errors > max_errors:
        counters.stop.set()
    return counters


class _StubGenerator(LoadGenerator):
    """A LoadGenerator whose requests never touch a cluster.

    ``behavior(index, record)`` decides each request's fate: return a
    wall-latency float to succeed after that (real) delay, or raise to
    fail.  Everything above ``_issue`` -- pacing, retry, abort, report
    folding -- is the genuine production code under test.
    """

    def __init__(self, trace, behavior):
        self.trace = trace
        self.updates = []
        self.warmup_fraction = 0.5
        self._behavior = behavior
        self._calls = 0
        self.peak_inflight = 0
        self._inflight_now = 0

    async def _issue(self, record):
        import time

        self._calls += 1
        self._inflight_now += 1
        if self._inflight_now > self.peak_inflight:
            self.peak_inflight = self._inflight_now
        try:
            started = time.perf_counter()
            delay = self._behavior(self._calls - 1, record)
            if delay:
                await asyncio.sleep(delay)
            finished = time.perf_counter()
            return _outcome(record.size), finished - started, started, finished
        finally:
            self._inflight_now -= 1

    def _modelled_latency(self, outcome):
        return 1.0


class TestPercentiles:
    def test_empty_samples_are_null_not_nan(self):
        p50, p90, p99 = _percentiles([])
        assert p50 is None and p90 is None and p99 is None

    def test_single_sample(self):
        assert _percentiles([4.2]) == (4.2, 4.2, 4.2)

    def test_nearest_rank(self):
        samples = list(range(1, 101))
        assert _percentiles(samples) == (50, 90, 99)


class TestZeroCompletedReport:
    def test_report_shape_and_json(self):
        report = _loadgen(_tiny_trace())._report(
            mode="open",
            completed=[],
            duration=0.25,
            applied=0,
            invalidated=0,
            counters=_counters(errors=10),
        )
        assert report.requests_measured == 0
        assert report.summary.requests == 0
        assert report.summary.mean_latency == 0.0
        assert report.summary.latency_percentiles == (None, None, None)
        assert report.wall_latency_mean is None
        assert report.wall_latency_percentiles == (None, None, None)
        assert report.errors == 10
        assert report.aborted is True
        assert report.requests_per_second is None

        payload = json.dumps(report.to_dict())
        assert "NaN" not in payload and "Infinity" not in payload
        decoded = json.loads(payload)
        assert decoded["wall_latency_mean"] is None
        assert decoded["wall_latency_p99"] is None
        assert decoded["requests_per_second"] is None
        assert decoded["aborted"] is True
        for value in decoded["modelled"].values():
            assert value == 0.0 and not math.isnan(value)


class TestMeasuredWindowRps:
    def test_rps_uses_measured_window_not_wall_duration(self):
        # 10-record trace, warm-up 0.5 -> indices 5..9 are measured.
        # Measured window spans perf-counter 10.0 .. 12.0 (2 seconds);
        # the run's wall duration (60 s, warm-up included) must not
        # appear in the rate.
        completions = [
            _completed(i, started=float(i), finished=float(i) + 0.5)
            for i in range(5)
        ]
        completions += [
            _completed(5 + j, started=10.0 + 0.4 * j, finished=10.4 + 0.4 * j)
            for j in range(5)
        ]
        report = _loadgen(_tiny_trace())._report(
            mode="closed",
            completed=completions,
            duration=60.0,
            applied=0,
            invalidated=0,
            counters=_counters(),
        )
        # 5 measured completions over the 10.0..12.0 window.
        assert report.requests_per_second == pytest.approx(5 / 2.0)
        assert report.aborted is False

    def test_degenerate_window_is_null(self):
        # A single measured completion with zero span: rate is undefined,
        # so the report must say None, not 0.0 (and JSON must say null).
        completions = [
            _completed(i, started=0.0, finished=0.0) for i in range(10)
        ]
        report = _loadgen(_tiny_trace())._report(
            mode="sequential",
            completed=completions,
            duration=0.0,
            applied=0,
            invalidated=0,
            counters=_counters(),
        )
        assert report.requests_per_second is None
        assert json.loads(json.dumps(report.to_dict()))[
            "requests_per_second"
        ] is None


class TestGracefulAbort:
    def test_closed_abort_emits_partial_report(self):
        # Every request raises a *raw OS error* (not a ProtocolError):
        # the run must stop after max_errors+1 failures, count them, and
        # still hand back a report instead of a cancelled gather.
        gen = _StubGenerator(
            _tiny_trace(50),
            lambda i, record: (_ for _ in ()).throw(OSError("boom")),
        )
        report = asyncio.run(
            gen.run(mode="closed", concurrency=4, max_errors=3)
        )
        assert report.aborted is True
        assert report.errors >= 4
        assert report.errors < 50  # stopped early, did not drain the trace
        assert report.requests_measured == 0

    def test_open_abort_emits_partial_report(self):
        gen = _StubGenerator(
            _tiny_trace(50),
            lambda i, record: (_ for _ in ()).throw(ConnectionError("down")),
        )
        report = asyncio.run(
            gen.run(mode="open", speedup=1e6, max_errors=3)
        )
        assert report.aborted is True
        assert report.errors >= 4
        assert report.requests_measured == 0

    def test_errors_below_threshold_do_not_abort(self):
        # One transport blip among successes: counted, not fatal.
        gen = _StubGenerator(
            _tiny_trace(10),
            lambda i, record: (
                (_ for _ in ()).throw(OSError("blip")) if i == 2 else 0.0
            ),
        )
        report = asyncio.run(
            gen.run(mode="closed", concurrency=2, max_errors=5)
        )
        assert report.aborted is False
        assert report.errors == 1
        assert report.cache_served + report.origin_served == 9


class TestOpenLoopPacer:
    def test_inflight_stays_bounded(self):
        # 200 slow requests all due at once: the pacer must shed once the
        # in-flight cap is reached instead of materializing 200 tasks.
        gen = _StubGenerator(_tiny_trace(200), lambda i, record: 0.02)
        report = asyncio.run(
            gen.run(
                mode="open",
                speedup=1e9,
                open_inflight_limit=8,
                max_errors=0,
            )
        )
        assert gen.peak_inflight <= 8
        assert report.shed > 0
        assert report.shed + report.cache_served + report.origin_served == 200
        assert report.errors == 0

    def test_no_limit_completes_everything(self):
        gen = _StubGenerator(_tiny_trace(30), lambda i, record: 0.0)
        report = asyncio.run(gen.run(mode="open", speedup=1e9))
        assert report.shed == 0
        assert report.cache_served + report.origin_served == 30


class TestBusyBackpressure:
    def test_busy_retried_then_rejected(self):
        # Always-busy server: each logical request burns its retries and
        # lands in `rejected`, which is backpressure, not an error.
        gen = _StubGenerator(
            _tiny_trace(6),
            lambda i, record: (_ for _ in ()).throw(NodeBusy("full")),
        )
        report = asyncio.run(
            gen.run(
                mode="closed",
                concurrency=2,
                busy_retries=2,
                busy_backoff=0.0,
                max_errors=0,
            )
        )
        assert report.rejected == 6
        assert report.busy_retries == 12  # 2 retries per request
        assert report.errors == 0
        assert report.aborted is False

    def test_busy_then_success_counts_retry(self):
        # First attempt busy, retry succeeds: no rejection, one retry.
        attempts = {}

        def behavior(i, record):
            n = attempts.get(record.object_id, 0)
            attempts[record.object_id] = n + 1
            if n == 0:
                raise NodeBusy("full")
            return 0.0

        gen = _StubGenerator(_tiny_trace(4), behavior)
        report = asyncio.run(
            gen.run(
                mode="closed",
                concurrency=1,
                busy_retries=1,
                busy_backoff=0.0,
            )
        )
        assert report.rejected == 0
        assert report.busy_retries == 4
        assert report.cache_served + report.origin_served == 4
