"""Tests for the d-cache's LRU policy variant (paper section 2.4)."""

from __future__ import annotations

import pytest

from repro.cache.dcache import DescriptorCache
from repro.cache.descriptors import ObjectDescriptor


def desc(object_id: int) -> ObjectDescriptor:
    return ObjectDescriptor(object_id, size=100)


class TestLRUPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            DescriptorCache(4, policy="fifo")

    def test_evicts_least_recently_referenced(self):
        dcache = DescriptorCache(2, policy="lru")
        dcache.insert(desc(1))
        dcache.insert(desc(2))
        dcache.get(1)  # 2 becomes LRU
        evicted = dcache.insert(desc(3))
        assert [d.object_id for d in evicted] == [2]
        assert 1 in dcache and 3 in dcache

    def test_peek_does_not_refresh_recency(self):
        dcache = DescriptorCache(2, policy="lru")
        dcache.insert(desc(1))
        dcache.insert(desc(2))
        dcache.peek(1)
        evicted = dcache.insert(desc(3))
        assert [d.object_id for d in evicted] == [1]

    def test_remove_and_reinsert(self):
        dcache = DescriptorCache(2, policy="lru")
        dcache.insert(desc(1))
        assert dcache.remove(1).object_id == 1
        dcache.insert(desc(1))
        assert 1 in dcache
        dcache.check_invariants()

    def test_policies_diverge_on_frequency_skew(self):
        """LFU protects a hot descriptor that LRU would age out."""
        lfu = DescriptorCache(2, policy="lfu")
        lru = DescriptorCache(2, policy="lru")
        for cache in (lfu, lru):
            cache.insert(desc(1))
            for _ in range(5):
                cache.get(1)  # object 1 is hot
            cache.insert(desc(2))
            cache.get(2)
            cache.get(2)
        # One more recent but colder insert after touching 2:
        lfu.get(2)
        lru.get(2)
        lfu.insert(desc(3))
        lru.insert(desc(3))
        assert 1 in lfu  # protected by its reference count
        assert 1 not in lru  # aged out by recency

    def test_invariants_under_churn(self):
        for policy in ("lfu", "lru"):
            dcache = DescriptorCache(3, policy=policy)
            for i in range(40):
                dcache.insert(desc(i))
                if i % 2 == 0:
                    dcache.get(i)
                dcache.check_invariants()


class TestSchemesAcceptPolicy:
    def test_factory_passes_dcache_policy(self, chain_costs):
        from repro.sim.factory import build_scheme

        scheme = build_scheme(
            "coordinated", chain_costs, 1000, 8, dcache_policy="lru"
        )
        assert scheme.node_state(0).dcache.policy == "lru"
        scheme2 = build_scheme("lnc-r", chain_costs, 1000, 8)
        assert scheme2.node_state(0).dcache.policy == "lfu"
