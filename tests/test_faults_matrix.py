"""The crash matrix: every intermediate node, both architectures.

For each node that sits strictly inside some delivery path (never an
ingress attachment, never the origin's own node), crash it mid-trace --
no restart -- and assert the cluster still finishes the whole trace:
zero client-visible errors, every completed request served by exactly
one of cache/origin (the conservation law ``cache_served +
origin_served == requests``), and non-zero failover counters proving the
walk really did route around the corpse rather than getting lucky.

A deliberately small workload keeps the matrix (one full replay per
victim per architecture) fast; :func:`crashable_nodes` in the chaos
suite derives the victim set from the trace's tail so each crash is
guaranteed to see traffic afterwards.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import build_architecture
from repro.faults import FaultPlan, NodeFault
from repro.sim.config import SimulationConfig
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

from tests.test_faults_chaos import crashable_nodes, replay_under_faults

WORKLOAD = WorkloadConfig(
    num_objects=60,
    num_servers=2,
    num_clients=6,
    num_requests=250,
    zipf_theta=0.8,
    seed=5,
)
CONFIG = SimulationConfig(relative_cache_size=0.01, dcache_ratio=3.0)
ARCH_NAMES = ("hierarchical", "en-route")


def _scenario(arch_name):
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    arch = build_architecture(arch_name, WORKLOAD, seed=2)
    return arch, trace, generator.catalog


def _matrix():
    cases = []
    for arch_name in ARCH_NAMES:
        arch, trace, _ = _scenario(arch_name)
        for victim in crashable_nodes(arch, trace):
            cases.append((arch_name, victim))
    return cases


@pytest.mark.parametrize("arch_name,victim", _matrix())
def test_crash_each_intermediate_node(arch_name, victim):
    arch, trace, catalog = _scenario(arch_name)
    t0, t1 = trace[0].time, trace[len(trace) - 1].time
    plan = FaultPlan(
        seed=13,
        nodes=(
            NodeFault(
                node=victim, kind="crash", at_time=t0 + 0.4 * (t1 - t0)
            ),
        ),
    )
    report, merged, injected = replay_under_faults(
        arch, catalog, "coordinated", trace, plan
    )
    assert report.errors == 0
    assert report.cache_served + report.origin_served == len(trace)
    assert injected["refused_calls"] > 0, "victim never saw traffic"
    assert merged.total("failovers") > 0
    # The dead node's cache process answered nothing after the crash; its
    # neighbors' breakers opened rather than paying retries per request.
    assert merged.total("breaker_trips") > 0
