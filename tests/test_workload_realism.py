"""Tests for the diurnal-modulation and temporal-locality workload knobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig


def make_config(**kwargs) -> WorkloadConfig:
    defaults = dict(
        num_objects=150,
        num_servers=5,
        num_clients=20,
        num_requests=20_000,
        zipf_theta=0.8,
        seed=9,
    )
    defaults.update(kwargs)
    return WorkloadConfig(**defaults)


class TestValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            make_config(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            make_config(diurnal_amplitude=-0.1)
        with pytest.raises(ValueError):
            make_config(diurnal_period=0)
        with pytest.raises(ValueError):
            make_config(temporal_locality=1.0)
        with pytest.raises(ValueError):
            make_config(locality_window=0)


class TestDiurnalModulation:
    def test_defaults_unchanged(self):
        """Knobs off must reproduce the exact original trace."""
        base = BoeingLikeTraceGenerator(make_config()).generate()
        again = BoeingLikeTraceGenerator(
            make_config(diurnal_amplitude=0.0, temporal_locality=0.0)
        ).generate()
        assert base.records == again.records

    def test_rate_follows_the_sine(self):
        period = 600.0
        config = make_config(
            diurnal_amplitude=0.8, diurnal_period=period, request_rate=100.0
        )
        trace = BoeingLikeTraceGenerator(config).generate()
        phases = np.array([r.time for r in trace]) % period
        # Quarter around the sine peak (period/4) vs around the trough.
        peak = np.sum((phases > period * 0.125) & (phases < period * 0.375))
        trough = np.sum((phases > period * 0.625) & (phases < period * 0.875))
        assert peak > 2.0 * trough

    def test_count_and_ordering_preserved(self):
        config = make_config(diurnal_amplitude=0.5, diurnal_period=300.0)
        trace = BoeingLikeTraceGenerator(config).generate()
        assert len(trace) == config.num_requests
        times = [r.time for r in trace]
        assert times == sorted(times)

    def test_deterministic(self):
        config = make_config(diurnal_amplitude=0.5)
        a = BoeingLikeTraceGenerator(config).generate()
        b = BoeingLikeTraceGenerator(config).generate()
        assert a.records == b.records


class TestTemporalLocality:
    @staticmethod
    def repeat_rate(trace, window: int) -> float:
        recent: list[int] = []
        repeats = 0
        for record in trace:
            if record.object_id in recent[-window:]:
                repeats += 1
            recent.append(record.object_id)
        return repeats / len(trace)

    def test_locality_raises_short_range_repeats(self):
        base = BoeingLikeTraceGenerator(make_config()).generate()
        local = BoeingLikeTraceGenerator(
            make_config(temporal_locality=0.5, locality_window=32)
        ).generate()
        assert self.repeat_rate(local, 32) > self.repeat_rate(base, 32) + 0.15

    def test_object_ids_stay_valid(self):
        config = make_config(temporal_locality=0.6)
        trace = BoeingLikeTraceGenerator(config).generate()
        assert all(0 <= r.object_id < config.num_objects for r in trace)
        # Catalog consistency maintained after rewriting.
        generator = BoeingLikeTraceGenerator(config)
        trace = generator.generate()
        for record in trace.records[:500]:
            assert record.size == generator.catalog.size(record.object_id)

    def test_deterministic(self):
        config = make_config(temporal_locality=0.4)
        a = BoeingLikeTraceGenerator(config).generate()
        b = BoeingLikeTraceGenerator(config).generate()
        assert a.records == b.records

    def test_locality_improves_cache_hit_rate(self):
        """Sanity end-to-end: burstier reuse means more cache hits."""
        from repro.costs.model import LatencyCostModel
        from repro.schemes.lru_everywhere import LRUEverywhereScheme
        from repro.topology.builder import build_chain

        def run(config):
            generator = BoeingLikeTraceGenerator(config)
            trace = generator.generate()
            network = build_chain([1.0])
            cost = LatencyCostModel(network, generator.catalog.mean_size)
            capacity = int(0.05 * generator.catalog.total_bytes)
            scheme = LRUEverywhereScheme(cost, capacity_bytes=capacity)
            hits = 0
            for record in trace:
                outcome = scheme.process_request(
                    [0, 1], record.object_id, record.size, record.time
                )
                hits += outcome.served_by_cache
            return hits / len(trace)

        base = run(make_config(num_requests=8_000))
        local = run(
            make_config(
                num_requests=8_000, temporal_locality=0.5, locality_window=16
            )
        )
        assert local > base
