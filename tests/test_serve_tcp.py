"""TCP loopback smoke tests for the live cluster.

Where ``test_serve_cluster.py`` pins the in-process transport to the
simulator bit-for-bit, these tests run real sockets end to end: a
cluster served over loopback TCP must agree with the simulator on the
hit/miss totals, survive concurrent closed-loop load, and expose its
live counters over the per-node ``/metrics`` HTTP endpoints.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.serve import Cluster, LoadGenerator, TCPTransport
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=80,
    num_servers=3,
    num_clients=10,
    num_requests=400,
    zipf_theta=0.8,
    seed=7,
)
CONFIG = SimulationConfig(relative_cache_size=0.01)


@pytest.fixture(scope="module")
def scenario():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", WORKLOAD, seed=4)
    return arch, trace, catalog


def run(coro, timeout=60.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


async def http_get(host: str, port: int, target: str) -> tuple[int, str]:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        # Retry once: under load the listener's accept queue can
        # transiently refuse on some CI kernels.
        await asyncio.sleep(0.05)
        reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status = int(head.split()[1])
    return status, body


class TestTCPLoopback:
    def test_sequential_matches_simulator_totals(self, scenario):
        arch, trace, catalog = scenario
        cost_model = LatencyCostModel(arch.network, catalog.mean_size)
        capacity = CONFIG.capacity_bytes(catalog.total_bytes)
        dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
        scheme = build_scheme("coordinated", cost_model, capacity, dcache)
        sim = SimulationEngine(
            arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
        ).run(trace)

        async def live():
            cluster = Cluster.build(
                arch,
                catalog,
                "coordinated",
                config=CONFIG,
                transport=TCPTransport(),
            )
            await cluster.start()
            loadgen = LoadGenerator(
                cluster, trace, warmup_fraction=CONFIG.warmup_fraction
            )
            report = await loadgen.run(mode="sequential")
            await cluster.stop()
            return report

        report = run(live())
        # Hit/miss totals over real sockets must equal the simulator's.
        assert report.requests_measured == sim.requests_measured
        assert report.summary.hit_ratio == sim.summary.hit_ratio
        assert report.summary.byte_hit_ratio == sim.summary.byte_hit_ratio
        assert report.summary.mean_hops == sim.summary.mean_hops

    def test_closed_loop_concurrency_completes(self, scenario):
        arch, trace, catalog = scenario

        async def live():
            cluster = Cluster.build(
                arch, catalog, "lru", config=CONFIG, transport=TCPTransport()
            )
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace)
            report = await loadgen.run(mode="closed", concurrency=6)
            await cluster.stop()
            return report

        report = run(live())
        warmup_end, total = trace.split_warmup(0.5)
        assert report.requests_total == total
        assert report.requests_measured == total - warmup_end
        assert report.errors == 0
        assert report.wall_latency_mean > 0

    def test_metrics_endpoints_serve_live_counters(self, scenario):
        arch, trace, catalog = scenario

        async def live():
            cluster = Cluster.build(
                arch, catalog, "lru", config=CONFIG, transport=TCPTransport()
            )
            await cluster.start()
            endpoints = await cluster.enable_metrics()
            loadgen = LoadGenerator(cluster, trace)
            await loadgen.run(mode="sequential")

            ingress = arch.client_nodes[trace[0].client_id]
            host, port = endpoints[ingress]
            status, body = await http_get(host, port, "/metrics")
            health = await http_get(host, port, "/healthz")
            missing = await http_get(host, port, "/nope")
            await cluster.stop()
            return status, body, health, missing

        status, body, (health_status, health_body), (missing_status, _) = run(
            live()
        )
        assert status == 200
        assert "repro_cache_misses_total" in body
        assert "repro_node_requests_handled_total" in body
        # The ingress node walked at least one request by now.
        for line in body.splitlines():
            if line.startswith("repro_node_requests_handled_total"):
                assert int(line.rsplit(" ", 1)[1]) > 0
        assert health_status == 200
        assert json.loads(health_body) == {"live": True, "ready": True}
        assert missing_status == 404


class TestTransportPool:
    """Connection-pool behavior under concurrency, timeouts, and close().

    These drive a bare :class:`TCPTransport` with purpose-built handlers
    (no cluster): the pool must never hand a caller a connection that
    may still carry another call's late reply, must bound per-address
    connections when asked, and must never hang ``close()`` on an
    in-flight dispatch.
    """

    def test_concurrent_callers_all_complete_and_pool_reuses(self):
        from repro.serve.transport import TCPTransport

        async def scenario():
            transport = TCPTransport()

            async def handler(message):
                await asyncio.sleep(0.01)
                return {"type": "pong", "echo": message["n"]}

            address = await transport.start_node(0, handler)
            first = await asyncio.gather(
                *(
                    transport.call(address, {"type": "ping", "n": i})
                    for i in range(16)
                )
            )
            pooled = len(transport._pools.get(tuple(address), []))
            # A second concurrent round must reuse the pooled
            # connections rather than opening a fresh set.
            second = await asyncio.gather(
                *(
                    transport.call(address, {"type": "ping", "n": 100 + i})
                    for i in range(16)
                )
            )
            pooled_after = len(transport._pools.get(tuple(address), []))
            await transport.close()
            return first, second, pooled, pooled_after

        first, second, pooled, pooled_after = run(scenario())
        assert sorted(r["echo"] for r in first) == list(range(16))
        assert sorted(r["echo"] for r in second) == [
            100 + i for i in range(16)
        ]
        assert 1 <= pooled <= 16
        assert pooled_after <= pooled

    def test_timed_out_connection_is_never_reused(self):
        """A late reply on a timed-out connection must never reach the
        next caller: the tainted connection is discarded, not pooled."""
        from repro.serve.protocol import CallTimeout
        from repro.serve.transport import TCPTransport

        async def scenario():
            transport = TCPTransport(call_timeout=0.15)
            release = asyncio.Event()

            async def handler(message):
                if message["n"] == 1:
                    await release.wait()  # outlive the caller's deadline
                return {"type": "pong", "echo": message["n"]}

            address = await transport.start_node(0, handler)
            with pytest.raises(CallTimeout):
                await transport.call(address, {"type": "ping", "n": 1})
            assert not transport._pools.get(tuple(address))
            # Unblock the slow handler: its late reply now sits on the
            # dead connection.  The next call must open a fresh one and
            # see its own echo, not the stale reply.
            release.set()
            reply = await transport.call(address, {"type": "ping", "n": 2})
            for _ in range(5):  # a few more round trips stay coherent
                again = await transport.call(
                    address, {"type": "ping", "n": 3}
                )
                assert again["echo"] == 3
            await transport.close()
            return reply

        assert run(scenario())["echo"] == 2

    def test_close_with_inflight_call_does_not_hang(self):
        from repro.serve.protocol import ProtocolError
        from repro.serve.transport import TCPTransport

        async def scenario():
            transport = TCPTransport(drain_timeout=0.3)
            never = asyncio.Event()

            async def handler(message):
                await never.wait()
                return {"type": "pong"}

            address = await transport.start_node(0, handler)
            call = asyncio.ensure_future(
                transport.call(address, {"type": "ping"})
            )
            await asyncio.sleep(0.05)  # let the call reach the handler
            started = asyncio.get_running_loop().time()
            await transport.close()
            elapsed = asyncio.get_running_loop().time() - started
            outcome = await asyncio.gather(call, return_exceptions=True)
            return elapsed, outcome[0]

        elapsed, outcome = run(scenario())
        # close() waited for the drain window, cancelled the stuck
        # dispatch, and returned -- it must not wait forever.
        assert elapsed < 5.0
        assert isinstance(outcome, (ProtocolError, ConnectionError))

    def test_connection_cap_bounds_server_side_concurrency(self):
        from repro.serve.transport import TCPTransport

        async def scenario():
            transport = TCPTransport(max_connections_per_address=2)
            inflight = 0
            peak = 0

            async def handler(message):
                nonlocal inflight, peak
                inflight += 1
                peak = max(peak, inflight)
                await asyncio.sleep(0.02)
                inflight -= 1
                return {"type": "pong", "echo": message["n"]}

            address = await transport.start_node(0, handler)
            replies = await asyncio.gather(
                *(
                    transport.call(address, {"type": "ping", "n": i})
                    for i in range(12)
                )
            )
            await transport.close()
            return replies, peak

        replies, peak = run(scenario())
        # All twelve calls completed, but never more than the two
        # allowed connections' worth of dispatches ran at once.
        assert sorted(r["echo"] for r in replies) == list(range(12))
        assert peak <= 2

    def test_connection_cap_validation(self):
        from repro.serve.transport import TCPTransport

        with pytest.raises(ValueError):
            TCPTransport(max_connections_per_address=0)
