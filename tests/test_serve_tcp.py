"""TCP loopback smoke tests for the live cluster.

Where ``test_serve_cluster.py`` pins the in-process transport to the
simulator bit-for-bit, these tests run real sockets end to end: a
cluster served over loopback TCP must agree with the simulator on the
hit/miss totals, survive concurrent closed-loop load, and expose its
live counters over the per-node ``/metrics`` HTTP endpoints.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.serve import Cluster, LoadGenerator, TCPTransport
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=80,
    num_servers=3,
    num_clients=10,
    num_requests=400,
    zipf_theta=0.8,
    seed=7,
)
CONFIG = SimulationConfig(relative_cache_size=0.01)


@pytest.fixture(scope="module")
def scenario():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", WORKLOAD, seed=4)
    return arch, trace, catalog


def run(coro, timeout=60.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


async def http_get(host: str, port: int, target: str) -> tuple[int, str]:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        # Retry once: under load the listener's accept queue can
        # transiently refuse on some CI kernels.
        await asyncio.sleep(0.05)
        reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status = int(head.split()[1])
    return status, body


class TestTCPLoopback:
    def test_sequential_matches_simulator_totals(self, scenario):
        arch, trace, catalog = scenario
        cost_model = LatencyCostModel(arch.network, catalog.mean_size)
        capacity = CONFIG.capacity_bytes(catalog.total_bytes)
        dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
        scheme = build_scheme("coordinated", cost_model, capacity, dcache)
        sim = SimulationEngine(
            arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
        ).run(trace)

        async def live():
            cluster = Cluster.build(
                arch,
                catalog,
                "coordinated",
                config=CONFIG,
                transport=TCPTransport(),
            )
            await cluster.start()
            loadgen = LoadGenerator(
                cluster, trace, warmup_fraction=CONFIG.warmup_fraction
            )
            report = await loadgen.run(mode="sequential")
            await cluster.stop()
            return report

        report = run(live())
        # Hit/miss totals over real sockets must equal the simulator's.
        assert report.requests_measured == sim.requests_measured
        assert report.summary.hit_ratio == sim.summary.hit_ratio
        assert report.summary.byte_hit_ratio == sim.summary.byte_hit_ratio
        assert report.summary.mean_hops == sim.summary.mean_hops

    def test_closed_loop_concurrency_completes(self, scenario):
        arch, trace, catalog = scenario

        async def live():
            cluster = Cluster.build(
                arch, catalog, "lru", config=CONFIG, transport=TCPTransport()
            )
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace)
            report = await loadgen.run(mode="closed", concurrency=6)
            await cluster.stop()
            return report

        report = run(live())
        warmup_end, total = trace.split_warmup(0.5)
        assert report.requests_total == total
        assert report.requests_measured == total - warmup_end
        assert report.errors == 0
        assert report.wall_latency_mean > 0

    def test_metrics_endpoints_serve_live_counters(self, scenario):
        arch, trace, catalog = scenario

        async def live():
            cluster = Cluster.build(
                arch, catalog, "lru", config=CONFIG, transport=TCPTransport()
            )
            await cluster.start()
            endpoints = await cluster.enable_metrics()
            loadgen = LoadGenerator(cluster, trace)
            await loadgen.run(mode="sequential")

            ingress = arch.client_nodes[trace[0].client_id]
            host, port = endpoints[ingress]
            status, body = await http_get(host, port, "/metrics")
            health = await http_get(host, port, "/healthz")
            missing = await http_get(host, port, "/nope")
            await cluster.stop()
            return status, body, health, missing

        status, body, (health_status, health_body), (missing_status, _) = run(
            live()
        )
        assert status == 200
        assert "repro_cache_misses_total" in body
        assert "repro_node_requests_handled_total" in body
        # The ingress node walked at least one request by now.
        for line in body.splitlines():
            if line.startswith("repro_node_requests_handled_total"):
                assert int(line.rsplit(" ", 1)[1]) > 0
        assert health_status == 200
        assert json.loads(health_body) == {"live": True, "ready": True}
        assert missing_status == 404
