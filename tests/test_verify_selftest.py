"""The seeded-mutation self-test must detect every planted bug."""

from __future__ import annotations

from repro.verify.selftest import run_selftest


def test_selftest_detects_all_mutants_and_clears_controls():
    report = run_selftest()
    assert report.ok, "\n" + report.format()
    by_name = {case.name: case for case in report.cases}
    # Every mutant fired its own check family...
    for name in ("byte-leak", "descriptor-overlap", "broken-dp", "hidden-state"):
        case = by_name[name]
        assert case.expect_violations and case.violations, name
    # ...and the clean controls stayed silent.
    for name in ("control-lru", "control-lnc-r", "control-coordinated"):
        assert by_name[name].violations == (), name
