"""The live invalidation channel: broker, subscribers, and the oracle.

Three layers of contract:

* **Unit** -- the :class:`~repro.serve.channel.ChannelBroker` sequences
  and fans out events, replays catch-ups, and drops (not fails) on
  retryable fan-out errors; the
  :class:`~repro.serve.channel.ChannelSubscriber` dedups duplicates,
  pulls gaps, judges stale hits retroactively, and converges to zero
  pending after a sync.
* **Differential oracle** -- a channel-mode cluster replaying a trace
  sequentially reproduces the in-band cluster (and the simulator)
  bit-for-bit for every scheme on both architectures, and its merged
  coherency accounting equals the simulator's channel policy field for
  field.  A run over real loopback TCP sockets closes the loop.
* **Recovery** -- with fault-injected fan-out drops, gap detection and
  the drain-time sync still converge every node to zero pending.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.coherency import CoherencyConfig, build_policy
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.serve import Cluster, LoadGenerator, TCPTransport
from repro.serve.channel import (
    BROKER_NODE_ID,
    ChannelBroker,
    ChannelSubscriber,
    merge_channel_stats,
)
from repro.serve.protocol import (
    MSG_CATCHUP,
    MSG_CATCHUP_OK,
    MSG_CHSTATS,
    MSG_CHSTATS_OK,
    MSG_PING,
    MSG_PONG,
    MSG_PUB,
    MSG_PUB_OK,
    MSG_SUB,
    MSG_SUB_OK,
    CallTimeout,
    ProtocolError,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.groups import GroupAssignment
from repro.workload.updates import generate_update_events

WORKLOAD = WorkloadConfig(
    num_objects=200,
    num_servers=4,
    num_clients=12,
    num_requests=600,
    zipf_theta=0.8,
    seed=11,
)
CONFIG = SimulationConfig(relative_cache_size=0.02, dcache_ratio=3.0)


def run(coro, timeout=120.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


# -- unit: broker ------------------------------------------------------------


class FakeScheme:
    """Tracks per-(node, object) copies; invalidate_step removes one."""

    def __init__(self, copies=()):
        self.copies = set(copies)

    def invalidate_step(self, node_id, object_id):
        if (node_id, object_id) in self.copies:
            self.copies.discard((node_id, object_id))
            return 1
        return 0


class TestChannelBroker:
    def make(self, replies=None, fail=()):
        """A broker whose fan-out records frames and can inject faults."""
        sent = []

        async def fanout(node_id, frame):
            if node_id in fail:
                raise CallTimeout(f"node {node_id} dropped the frame")
            sent.append((node_id, frame))
            reply = {"type": "event-ok", "node": node_id, "removed": 0}
            if replies and node_id in replies:
                reply["removed"] = replies[node_id]
            return reply

        return ChannelBroker(fanout), sent

    def test_sub_registers_and_returns_latest(self):
        broker, _ = self.make()
        reply = run(broker.handle({"type": MSG_SUB, "node": 3}))
        assert reply["type"] == MSG_SUB_OK
        assert reply["latest"] == {}
        assert broker.stats.subscriptions == 1

    def test_pub_sequences_and_fans_out_in_node_order(self):
        broker, sent = self.make(replies={1: 2, 5: 1})
        for node in (5, 1, 9):
            run(broker.handle({"type": MSG_SUB, "node": node}))
        reply = run(broker.handle({"type": MSG_PUB, "group": 0, "time": 4.0}))
        assert reply == {
            "type": MSG_PUB_OK, "group": 0, "seq": 1, "removed": 3,
        }
        assert [node for node, _ in sent] == [1, 5, 9]
        assert all(f["seq"] == 1 and f["time"] == 4.0 for _, f in sent)
        again = run(broker.handle({"type": MSG_PUB, "group": 0, "time": 5.0}))
        assert again["seq"] == 2
        other = run(broker.handle({"type": MSG_PUB, "group": 7, "time": 5.0}))
        assert other["seq"] == 1  # sequences are per group
        assert broker.latest() == {0: 2, 7: 1}
        assert broker.stats.event_deliveries == 9

    def test_group_filter_limits_fanout(self):
        broker, sent = self.make()
        run(broker.handle({"type": MSG_SUB, "node": 1, "groups": [0]}))
        run(broker.handle({"type": MSG_SUB, "node": 2, "groups": [1]}))
        run(broker.handle({"type": MSG_PUB, "group": 1, "time": 1.0}))
        assert [node for node, _ in sent] == [2]

    def test_retryable_fanout_error_drops_not_fails(self):
        broker, sent = self.make(fail={2})
        for node in (1, 2, 3):
            run(broker.handle({"type": MSG_SUB, "node": node}))
        reply = run(broker.handle({"type": MSG_PUB, "group": 0, "time": 1.0}))
        assert reply["type"] == MSG_PUB_OK
        assert [node for node, _ in sent] == [1, 3]
        assert broker.event_drops == 1
        assert broker.stats.event_deliveries == 2
        # The dropped frame is still priced: it went on the wire.
        assert broker.stats_dict()["event_drops"] == 1

    def test_catchup_replays_suffix(self):
        broker, _ = self.make()
        for time in (1.0, 2.0, 3.0):
            run(broker.handle({"type": MSG_PUB, "group": 4, "time": time}))
        reply = run(
            broker.handle({"type": MSG_CATCHUP, "group": 4, "since": 1})
        )
        assert reply["type"] == MSG_CATCHUP_OK
        assert reply["events"] == [
            {"seq": 2, "time": 2.0}, {"seq": 3, "time": 3.0},
        ]
        empty = run(
            broker.handle({"type": MSG_CATCHUP, "group": 99, "since": 0})
        )
        assert empty["events"] == []
        assert broker.stats.catchups == 2

    def test_chstats_ping_and_unknown(self):
        broker, _ = self.make()
        stats = run(broker.handle({"type": MSG_CHSTATS}))
        assert stats["type"] == MSG_CHSTATS_OK
        assert stats["stats"]["mode"] == "channel"
        pong = run(broker.handle({"type": MSG_PING}))
        assert pong == {"type": MSG_PONG, "node": BROKER_NODE_ID}
        with pytest.raises(ProtocolError):
            run(broker.handle({"type": "walk"}))
        with pytest.raises(ProtocolError):
            run(broker.handle({"type": MSG_PUB, "group": 0}))  # no time


# -- unit: subscriber --------------------------------------------------------


class TestChannelSubscriber:
    def make(self, copies=(), groups=None):
        broker_calls = []
        broker = ChannelBroker(lambda node, frame: None)

        async def call_broker(frame):
            broker_calls.append(frame)
            return await broker.handle(frame)

        scheme = FakeScheme(copies)
        sub = ChannelSubscriber(
            7, scheme, groups or GroupAssignment.per_object(10), call_broker
        )
        return sub, scheme, broker, broker_calls

    def test_in_order_delivery_invalidates_stale_copy(self):
        sub, scheme, _, _ = self.make(copies=[(7, 3)])
        sub.note_insert(3, 1.0)
        removed = run(sub.deliver(group=3, seq=1, time=2.0, clock=5.0))
        assert removed == 1
        assert (7, 3) not in scheme.copies
        assert sub.applied == {3: 1}
        assert sub.stats.copies_invalidated == 1
        # Window = clock at application - event origin time.
        assert sub.stats.staleness_windows == [3.0]

    def test_fresh_copy_survives_the_event(self):
        sub, scheme, _, _ = self.make(copies=[(7, 3)])
        sub.note_insert(3, 4.0)  # inserted after the update happened
        removed = run(sub.deliver(group=3, seq=1, time=2.0, clock=5.0))
        assert removed == 0
        assert (7, 3) in scheme.copies

    def test_evicted_copy_counts_without_a_window(self):
        sub, scheme, _, _ = self.make(copies=[])  # eviction already won
        sub.note_insert(3, 1.0)
        removed = run(sub.deliver(group=3, seq=1, time=2.0, clock=5.0))
        assert removed == 0
        assert sub.stats.stale_copies_evicted == 1
        assert sub.stats.staleness_windows == []

    def test_duplicate_is_discarded(self):
        sub, scheme, _, _ = self.make(copies=[(7, 3)])
        sub.note_insert(3, 1.0)
        run(sub.deliver(group=3, seq=1, time=2.0, clock=5.0))
        removed = run(sub.deliver(group=3, seq=1, time=2.0, clock=6.0))
        assert removed == 0
        assert sub.duplicates == 1
        assert sub.stats.copies_invalidated == 1  # not double counted

    def test_gap_pulls_missed_events_from_broker(self):
        sub, scheme, broker, calls = self.make(copies=[(7, 2), (7, 5)])
        for time in (1.0, 2.0, 3.0):
            run(broker.handle({"type": MSG_PUB, "group": 2, "time": time}))
        sub.note_insert(2, 0.5)
        # First heard frame is seq 3: a gap past applied+1.
        removed = run(sub.deliver(group=2, seq=3, time=3.0, clock=4.0))
        assert removed == 1
        assert sub.gaps == 1
        assert sub.catchups == 1
        assert calls == [{"type": MSG_CATCHUP, "group": 2, "since": 0}]
        assert sub.applied == {2: 3}
        assert sub.pending() == 0

    def test_sync_converges_lagging_groups(self):
        sub, scheme, broker, _ = self.make(copies=[(7, 1), (7, 4)])
        run(broker.handle({"type": MSG_PUB, "group": 1, "time": 1.0}))
        run(broker.handle({"type": MSG_PUB, "group": 4, "time": 2.0}))
        sub.note_insert(1, 0.0)
        sub.note_insert(4, 0.0)
        # JSON transports stringify dict keys; sync must tolerate that.
        latest = {str(g): s for g, s in broker.latest().items()}
        removed = run(sub.sync(latest, clock=3.0))
        assert removed == 2
        assert sub.pending() == 0
        assert sub.to_dict()["applied_events"] == 2

    def test_stale_hits_judged_retroactively(self):
        sub, scheme, _, _ = self.make(copies=[(7, 3)])
        sub.note_insert(3, 0.0)
        sub.note_hit(3, 1.0, size=100)  # before the update: clean
        sub.note_hit(3, 2.5, size=100)  # after the update: stale
        sub.note_hit(3, 3.0, size=150)  # after the update: stale
        run(sub.deliver(group=3, seq=1, time=2.0, clock=4.0))
        assert sub.stats.stale_hits == 2
        assert sub.stats.stale_bytes == 250
        # Judged entries are pruned: a redelivered event can't recount.
        assert sub._hit_log == {}

    def test_hits_without_tracked_insert_are_ignored(self):
        sub, _, _, _ = self.make()
        sub.note_hit(3, 1.0, size=100)
        assert sub._hit_log == {}

    def test_merge_splits_wire_and_staleness(self):
        broker_stats = {
            "events_published": 4, "event_deliveries": 7,
            "channel_bytes": 200, "subscriptions": 2, "catchups": 1,
            "event_drops": 1,
        }
        nodes = [
            {"stale_hits": 1, "stale_bytes": 50, "copies_invalidated": 2,
             "windows": [1.0, 3.0], "gaps": 1, "catchups": 1, "pending": 0},
            {"stale_hits": 0, "stale_bytes": 0, "copies_invalidated": 1,
             "windows": [2.0], "duplicates": 2, "pending": 1},
        ]
        merged = merge_channel_stats(broker_stats, nodes)
        assert merged["mode"] == "channel"
        assert merged["channel_bytes"] == 200
        assert merged["protocol_bytes"] == 200
        assert merged["stale_hits"] == 1
        assert merged["copies_invalidated"] == 3
        assert merged["staleness_windows"] == 3
        assert merged["staleness_p50"] == 2.0
        assert merged["event_drops"] == 1
        assert merged["gaps"] == 1
        assert merged["duplicates"] == 2
        assert merged["node_catchups"] == 1
        assert merged["pending"] == 1


# -- the cluster-level differential oracle -----------------------------------


@pytest.fixture(scope="module")
def scenario():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    updates = generate_update_events(
        WORKLOAD.num_objects, trace.duration, update_rate=0.8, seed=7
    )
    assert updates
    return trace, catalog, updates


def simulate(arch, catalog, scheme_name, trace, updates, coherency):
    cost_model = LatencyCostModel(arch.network, catalog.mean_size)
    capacity = CONFIG.capacity_bytes(catalog.total_bytes)
    dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
    scheme = build_scheme(scheme_name, cost_model, capacity, dcache)
    policy = build_policy(coherency, catalog.num_objects)
    engine = SimulationEngine(
        arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
    )
    return engine.run(trace, updates=updates, coherency=policy), scheme


def serve_replay(
    arch, catalog, scheme_name, trace, updates, coherency, transport=None
):
    async def scenario():
        cluster = Cluster.build(
            arch,
            catalog,
            scheme_name,
            config=CONFIG,
            coherency=coherency,
            transport=transport,
        )
        await cluster.start()
        loadgen = LoadGenerator(
            cluster,
            trace,
            updates=updates,
            warmup_fraction=CONFIG.warmup_fraction,
        )
        report = await loadgen.run(mode="sequential")
        invalidations = sum(
            node.scheme.protocol_stats.invalidations
            for node in cluster.nodes.values()
            if hasattr(node.scheme, "protocol_stats")
        )
        snapshot = await cluster.stop()
        return report, snapshot, invalidations

    return run(scenario())


class TestChannelClusterOracle:
    """Channel-mode serve == in-band serve == simulator, bit for bit."""

    @pytest.mark.parametrize("arch_name", ["hierarchical", "en-route"])
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_NAMES))
    def test_channel_matches_inband(self, scenario, arch_name, scheme_name):
        trace, catalog, updates = scenario
        arch = build_architecture(arch_name, WORKLOAD, seed=0)
        inband, _, _ = serve_replay(
            arch, catalog, scheme_name, trace, updates,
            CoherencyConfig(mode="inband"),
        )
        channel, snapshot, _ = serve_replay(
            arch, catalog, scheme_name, trace, updates,
            CoherencyConfig(mode="channel"),
        )
        assert channel.summary == inband.summary
        assert channel.updates_applied == inband.updates_applied
        assert channel.copies_invalidated == inband.copies_invalidated
        stats = channel.coherency
        assert stats["mode"] == "channel"
        # Sequential replay applies every event before the next request:
        # nothing stale is ever served, nothing is left pending.
        assert stats["stale_hits"] == 0
        assert stats["pending"] == 0
        assert stats["event_drops"] == 0
        assert stats["events_published"] == len(updates)
        assert stats["event_deliveries"] == len(updates) * len(
            arch.cache_nodes
        )
        assert stats["inv_bytes"] == 0
        assert inband.coherency["inv_bytes"] > 0
        assert inband.coherency["channel_bytes"] == 0
        assert "channel" in snapshot
        assert "coherency" in snapshot
        assert snapshot["channel"]["broker"]["event_drops"] == 0

    @pytest.mark.parametrize("arch_name", ["hierarchical", "en-route"])
    def test_accounting_equals_simulator(self, scenario, arch_name):
        """Merged cluster stats == the sim channel policy, field by field."""
        trace, catalog, updates = scenario
        arch = build_architecture(arch_name, WORKLOAD, seed=0)
        config = CoherencyConfig(mode="channel")
        sim, _ = simulate(
            arch, catalog, "coordinated", trace, updates, config
        )
        report, _, _ = serve_replay(
            arch, catalog, "coordinated", trace, updates, config
        )
        live = dict(report.coherency)
        # The reliability counters are live-cluster-only extras.
        for key in (
            "event_drops", "gaps", "duplicates", "node_catchups", "pending"
        ):
            assert live.pop(key) == 0
        assert live == sim.coherency

    def test_live_tcp_channel_matches_simulator(self, scenario):
        """The full stack over real loopback sockets."""
        trace, catalog, updates = scenario
        arch = build_architecture("hierarchical", WORKLOAD, seed=0)
        config = CoherencyConfig(mode="channel")
        sim, _ = simulate(arch, catalog, "lru", trace, updates, config)
        report, snapshot, _ = serve_replay(
            arch, catalog, "lru", trace, updates, config,
            transport=TCPTransport(),
        )
        assert report.summary == sim.summary
        assert report.copies_invalidated == sim.copies_invalidated
        assert report.coherency["pending"] == 0
        assert report.coherency["stale_hits"] == 0
        assert (
            report.coherency["channel_bytes"]
            == sim.coherency["channel_bytes"]
        )
        assert snapshot["coherency"]["mode"] == "channel"


class TestInbandParity:
    """Satellite: invalidate_step parity for every scheme, sim vs serve."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_NAMES))
    def test_interleaved_updates_match(self, scenario, scheme_name):
        trace, catalog, updates = scenario
        arch = build_architecture("hierarchical", WORKLOAD, seed=0)
        config = CoherencyConfig(mode="inband")
        sim, scheme = simulate(
            arch, catalog, scheme_name, trace, updates, config
        )
        report, _, served_invalidations = serve_replay(
            arch, catalog, scheme_name, trace, updates, config
        )
        assert report.summary == sim.summary
        assert report.updates_applied == sim.updates_applied
        assert report.copies_invalidated == sim.copies_invalidated
        assert report.coherency == sim.coherency
        if scheme_name == "coordinated":
            # Every in-band inv frame the cluster delivered is priced in
            # some node's ProtocolStats; the simulator prices the same
            # count on its single shared instance.
            assert (
                served_invalidations == scheme.protocol_stats.invalidations
            )
            assert sim.coherency["inv_frames"] == len(updates) * len(
                arch.cache_nodes
            )


class TestChannelRecovery:
    """Fan-out drops leave gaps; catchup + drain sync converge to zero."""

    def test_dropped_fanout_recovers_via_sync(self, scenario):
        trace, catalog, updates = scenario
        from repro.faults import FaultInjector, FaultPlan, FaultyTransport

        plan = FaultPlan.from_dict(
            {
                "seed": 3,
                "links": [{"ops": ["event"], "drop_rate": 0.5}],
            }
        )

        async def chaotic():
            from repro.serve.transport import InProcessTransport

            cluster = Cluster.build(
                build_architecture("hierarchical", WORKLOAD, seed=0),
                catalog,
                "lru",
                config=CONFIG,
                coherency=CoherencyConfig(mode="channel"),
                transport=FaultyTransport(
                    InProcessTransport(), FaultInjector(plan)
                ),
            )
            await cluster.start()
            loadgen = LoadGenerator(cluster, trace, updates=updates)
            report = await loadgen.run(mode="sequential")
            pending = await cluster.channel_sync()
            summary = cluster.coherency_summary()
            await cluster.stop()
            return report, pending, summary

        report, pending, summary = run(chaotic())
        assert summary["event_drops"] > 0, "the plan must actually drop"
        # Convergence: after the drain-time sync nothing is pending
        # anywhere, and every drop was recovered through a catchup.
        assert all(count == 0 for count in pending.values())
        assert summary["pending"] == 0
        assert summary["node_catchups"] > 0
        assert (
            report.coherency["copies_invalidated"]
            + report.coherency["stale_copies_evicted"]
            > 0
        )
