"""The chaos gate: a full trace under seeded faults, zero visible errors.

Three contracts pin the fault-injection subsystem and the resilience
machinery together:

* **Survival** -- replaying a seeded trace through an in-process cluster
  under a plan mixing frame drops, delays, duplicates, corruption and
  one mid-trace node crash (with restart) must complete every request
  with zero client-visible errors, absorbing the faults into retries,
  breaker trips and upstream failovers (all of which must be non-zero,
  or the plan exercised nothing).
* **Determinism** -- the same plan and seed over the same trace must
  produce byte-identical resilience counters and injector tallies across
  two independent runs.
* **Transparency** -- with an *empty* plan the faulty transport must be
  invisible: the replay stays bit-identical to the simulator's
  ``MetricsSummary`` for every scheme, and every resilience counter
  stays zero.

Plus unit coverage of the pieces: retry backoff shape, circuit-breaker
transitions, fault-plan JSON round-trips and schedule windows, and the
injector's per-fault behavior.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyTransport,
    LinkRule,
    NodeFault,
)
from repro.obs.registry import StatRegistry
from repro.serve import (
    CallTimeout,
    CircuitBreaker,
    Cluster,
    FrameCorruption,
    InProcessTransport,
    LoadGenerator,
    NodeUnreachable,
    ResilienceConfig,
    RetryPolicy,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_objects=100,
    num_servers=4,
    num_clients=12,
    num_requests=900,
    zipf_theta=0.8,
    seed=5,
)
CONFIG = SimulationConfig(relative_cache_size=0.01, dcache_ratio=3.0)
# Millisecond-scale backoff keeps a 900-request chaos replay fast while
# still walking the whole retry schedule.
FAST_RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(
        attempts=3, backoff_base=0.0005, backoff_max=0.002, jitter=0.5
    )
)


@pytest.fixture(scope="module")
def seeded_trace():
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    return generator.generate(), generator.catalog


def crashable_nodes(arch, trace, tail_fraction=0.5):
    """Interior path nodes safe to crash: not an ingress, not an origin.

    Restricted to paths of the trace's tail so a mid-trace crash is
    guaranteed to see traffic afterwards.
    """
    ingress = set(arch.client_nodes.values())
    interior = set()
    origins = set()
    start = int(len(trace) * (1.0 - tail_fraction))
    for record in trace.records[start:]:
        path = arch.request_path(record.client_id, record.server_id)
        interior.update(path[1:-1])
        origins.add(path[-1])
    return sorted(interior - ingress - origins)


def chaos_plan(arch, trace, seed=7):
    """Drops + delays + duplicates + corruption + one crash-and-restart."""
    victims = crashable_nodes(arch, trace)
    assert victims, "architecture offers no safe intermediate node to crash"
    t0 = trace[0].time
    t1 = trace[len(trace) - 1].time
    return FaultPlan(
        seed=seed,
        links=(
            LinkRule(
                ops=("fwd",),
                drop_rate=0.02,
                delay_rate=0.02,
                delay_seconds=0.0005,
                duplicate_rate=0.01,
                corrupt_rate=0.01,
            ),
        ),
        nodes=(
            NodeFault(
                node=victims[0],
                kind="crash",
                at_time=t0 + 0.3 * (t1 - t0),
                until_time=t0 + 0.7 * (t1 - t0),
            ),
        ),
    )


def replay_under_faults(arch, catalog, scheme_name, trace, plan):
    """One sequential in-process replay through a FaultyTransport."""

    async def scenario():
        injector = FaultInjector(plan)
        cluster = Cluster.build(
            arch,
            catalog,
            scheme_name,
            config=CONFIG,
            transport=FaultyTransport(InProcessTransport(), injector),
            resilience=FAST_RESILIENCE,
            seed=plan.seed,
        )
        await cluster.start()
        loadgen = LoadGenerator(
            cluster, trace, warmup_fraction=CONFIG.warmup_fraction
        )
        report = await loadgen.run(mode="sequential")
        merged = StatRegistry()
        for node_id, node in cluster.nodes.items():
            snap = node.registry.snapshot().get(node_id)
            if snap is not None:
                stats = merged.node(node_id)
                for field, value in snap.items():
                    setattr(stats, field, value)
        await cluster.stop()
        return report, merged, injector.summary()

    return asyncio.run(scenario())


class TestChaosGate:
    """ISSUE gate: seeded faults over a full trace, zero visible errors."""

    def test_full_trace_survives_seeded_faults(self, seeded_trace):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        plan = chaos_plan(arch, trace)
        report, merged, injected = replay_under_faults(
            arch, catalog, "coordinated", trace, plan
        )
        # Every request completed; sequential mode would have raised on
        # any client-visible error.
        assert report.errors == 0
        assert report.cache_served + report.origin_served == len(trace)
        # The plan actually injected something...
        assert injected["drops"] > 0
        assert injected["refused_calls"] > 0
        # ...and the resilience layer visibly absorbed it.
        assert merged.total("rpc_timeouts") > 0
        assert merged.total("rpc_retries") > 0
        assert merged.total("failovers") > 0
        assert merged.total("breaker_trips") > 0

    def test_same_seed_same_counters(self, seeded_trace):
        """Determinism: two runs of one plan agree on every counter."""
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        plan = chaos_plan(arch, trace)
        first = replay_under_faults(arch, catalog, "coordinated", trace, plan)
        second = replay_under_faults(arch, catalog, "coordinated", trace, plan)
        assert first[1].snapshot() == second[1].snapshot()
        assert first[2] == second[2]
        assert first[0].summary == second[0].summary

    def test_different_seed_differs(self, seeded_trace):
        """The seed is live: a different one draws a different fault mix."""
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        base = chaos_plan(arch, trace, seed=7)
        other = chaos_plan(arch, trace, seed=8)
        _, _, first = replay_under_faults(
            arch, catalog, "lru", trace, base
        )
        _, _, second = replay_under_faults(
            arch, catalog, "lru", trace, other
        )
        assert first != second


class TestEmptyPlanTransparency:
    """A no-fault FaultyTransport must be bit-for-bit invisible."""

    @pytest.mark.parametrize(
        "scheme_name", ["coordinated", "lru", "lnc-r", "gds"]
    )
    def test_bit_identical_to_simulator(self, seeded_trace, scheme_name):
        trace, catalog = seeded_trace
        arch = build_architecture("hierarchical", WORKLOAD, seed=2)
        cost_model = LatencyCostModel(arch.network, catalog.mean_size)
        capacity = CONFIG.capacity_bytes(catalog.total_bytes)
        dcache = CONFIG.dcache_entries(catalog.total_bytes, catalog.mean_size)
        scheme = build_scheme(scheme_name, cost_model, capacity, dcache)
        sim = SimulationEngine(
            arch, cost_model, scheme, warmup_fraction=CONFIG.warmup_fraction
        ).run(trace)
        report, merged, injected = replay_under_faults(
            arch, catalog, scheme_name, trace, FaultPlan.empty()
        )
        assert report.summary == sim.summary
        for field in (
            "rpc_timeouts", "rpc_retries", "failovers", "breaker_trips"
        ):
            assert merged.total(field) == 0
        assert injected["drops"] == 0
        assert injected["refused_calls"] == 0


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=5,
            backoff_base=0.01,
            backoff_multiplier=2.0,
            backoff_max=0.05,
            jitter=0.0,
        )
        delays = [policy.delay(k) for k in range(5)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_only_shrinks(self):
        policy = RetryPolicy(backoff_base=0.01, jitter=0.5)
        rng = random.Random(3)
        for attempt in range(4):
            raw = policy.delay(attempt)
            jittered = policy.delay(attempt, rng)
            assert raw * 0.5 <= jittered <= raw

    def test_seeded_jitter_is_reproducible(self):
        policy = RetryPolicy()
        a = [policy.delay(k, random.Random(11)) for k in range(3)]
        b = [policy.delay(k, random.Random(11)) for k in range(3)]
        assert a == b

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=3)
        assert breaker.allow()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # second consecutive failure trips
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        # Cooldown: rejected without touching the wire.
        assert [breaker.allow() for _ in range(3)] == [False, False, False]
        # Then one half-open probe is admitted; success closes.
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        assert breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # the probe
        assert breaker.record_failure()  # probe failed: trips again
        assert breaker.trips == 2
        assert breaker.state == CircuitBreaker.OPEN


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=3,
            links=(LinkRule(ops=("fwd",), drop_rate=0.1, dest=4),),
            nodes=(NodeFault(node=2, kind="crash", at_time=10.0),),
        )
        path = tmp_path / "plan.json"
        plan.to_json_file(path)
        assert FaultPlan.from_json_file(path) == plan

    def test_example_plan_parses(self):
        plan = FaultPlan.from_json_file("examples/fault_plan.json")
        assert not plan.is_empty
        assert any(f.kind == "crash" for f in plan.nodes)
        assert "fault plan" in plan.describe()

    def test_link_rule_scoping(self):
        rule = LinkRule(ops=("fwd",), dest=4, drop_rate=0.5)
        assert rule.matches("fwd", 4)
        assert not rule.matches("get", 4)
        assert not rule.matches("fwd", 5)
        everywhere = LinkRule(drop_rate=0.5)
        assert everywhere.matches("inv", None)

    def test_node_fault_windows(self):
        fault = NodeFault(node=1, at_time=10.0, until_time=20.0)
        assert not fault.active(clock=5.0, calls=0)
        assert fault.active(clock=10.0, calls=0)
        assert not fault.active(clock=20.0, calls=0)
        by_calls = NodeFault(node=1, at_call=3, until_call=6)
        assert not by_calls.active(clock=0.0, calls=2)
        assert by_calls.active(clock=0.0, calls=3)
        assert not by_calls.active(clock=0.0, calls=6)

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            LinkRule(drop_rate=1.5)
        with pytest.raises(ValueError):
            NodeFault(node=1, kind="explode")
        with pytest.raises(ValueError):
            NodeFault(node=1, kind="slow", delay_seconds=0.0)


class TestFaultyTransport:
    """Per-fault behavior over a trivial echo node."""

    def drive(self, plan, messages):
        async def scenario():
            injector = FaultInjector(plan)
            transport = FaultyTransport(InProcessTransport(), injector)

            async def echo(message):
                return {"type": "pong", "echo": message.get("n")}

            address = await transport.start_node(1, echo)
            results = []
            for message in messages:
                try:
                    results.append(await transport.call(address, message))
                except Exception as error:  # noqa: BLE001 - recorded below
                    results.append(type(error).__name__)
            await transport.close()
            return results, injector.summary()

        return asyncio.run(scenario())

    def test_certain_drop_times_out(self):
        plan = FaultPlan(seed=1, links=(LinkRule(drop_rate=1.0),))
        results, summary = self.drive(plan, [{"type": "ping", "n": 1}])
        assert results == [CallTimeout.__name__]
        assert summary["drops"] == 1

    def test_certain_corruption_is_rejected(self):
        plan = FaultPlan(seed=1, links=(LinkRule(corrupt_rate=1.0),))
        results, _ = self.drive(plan, [{"type": "ping", "n": 1}])
        assert results == [FrameCorruption.__name__]

    def test_duplicate_first_reply_wins(self):
        plan = FaultPlan(seed=1, links=(LinkRule(duplicate_rate=1.0),))
        results, summary = self.drive(plan, [{"type": "ping", "n": 7}])
        assert results == [{"type": "pong", "echo": 7}]
        assert summary["duplicates"] == 1

    def test_crash_window_refuses_then_recovers(self):
        # The injector's call counter is 1-based (incremented on observe),
        # so [at_call=3, until_call=4) covers exactly the third call.
        plan = FaultPlan(
            seed=1, nodes=(NodeFault(node=1, at_call=3, until_call=4),)
        )
        messages = [{"type": "ping", "n": k} for k in range(4)]
        results, summary = self.drive(plan, messages)
        assert results[0] == {"type": "pong", "echo": 0}
        assert results[1] == {"type": "pong", "echo": 1}
        assert results[2] == NodeUnreachable.__name__
        assert results[3] == {"type": "pong", "echo": 3}
        assert summary["refused_calls"] == 1
