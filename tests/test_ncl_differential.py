"""Differential tests: list-NCL, heap-NCL and the mirrored audit cache.

The two NCL bookkeeping structures (bisect list, lazy-deletion heap) are
policy-equivalent by design; these tests drive them through randomized
operation sequences and whole simulations and require *identical*
decisions, not merely similar metrics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.descriptors import ObjectDescriptor
from repro.cache.ncl import NCLCache
from repro.cache.ncl_heap import HeapNCLCache
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.schemes.lncr import LNCRScheme
from repro.sim.engine import SimulationEngine
from repro.verify.oracles import MirroredNCLCache


def desc(object_id: int, size: int, penalty: float, now: float) -> ObjectDescriptor:
    d = ObjectDescriptor(object_id, size, miss_penalty=penalty)
    d.record_access(now)
    return d


# One operation: (op_kind, object_id, size_bucket, penalty, time_step)
_OPS = st.tuples(
    st.sampled_from(["insert", "access", "penalty"]),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
)


class TestListHeapEquivalence:
    @given(ops=st.lists(_OPS, min_size=1, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_random_operation_sequences_agree(self, ops):
        """List and heap caches make identical decisions op for op."""
        list_cache = NCLCache(100)
        heap_cache = HeapNCLCache(100)
        now = 0.0
        for kind, object_id, size_bucket, penalty, step in ops:
            now += step
            size = size_bucket * 10
            if kind == "insert" and object_id not in list_cache:
                evicted_list = list_cache.insert(
                    desc(object_id, size, penalty, now), now
                )
                evicted_heap = heap_cache.insert(
                    desc(object_id, size, penalty, now), now
                )
                assert [e.object_id for e in evicted_list] == [
                    e.object_id for e in evicted_heap
                ]
            elif kind == "access" and object_id in list_cache:
                list_cache.record_access(object_id, now)
                heap_cache.record_access(object_id, now)
            elif kind == "penalty" and object_id in list_cache:
                list_cache.set_miss_penalty(object_id, penalty, now)
                heap_cache.set_miss_penalty(object_id, penalty, now)
            assert list_cache.used_bytes == heap_cache.used_bytes
            assert list_cache.eviction_order() == heap_cache.eviction_order()
            victims_list = list_cache.select_victims(40, now)
            victims_heap = heap_cache.select_victims(40, now)
            assert [v.object_id for v in victims_list] == [
                v.object_id for v in victims_heap
            ]
        list_cache.check_invariants()
        heap_cache.check_invariants()

    def test_end_to_end_simulations_identical(self, tiny_workload, tiny_trace):
        """A whole LNC-R simulation is bit-identical across structures."""
        trace, catalog = tiny_trace
        architecture = build_architecture(
            "en-route", tiny_workload, seed=tiny_workload.seed
        )
        cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
        capacity = max(1, int(0.03 * catalog.total_bytes))
        summaries = {}
        for structure in ("list", "heap", "mirrored"):
            scheme = LNCRScheme(
                cost_model, capacity, 64, ncl_structure=structure
            )
            engine = SimulationEngine(architecture, cost_model, scheme)
            summaries[structure] = engine.run(trace).summary
            if structure == "mirrored":
                for state in scheme._nodes.values():
                    assert state.cache.drain_divergences() == []
        assert summaries["list"] == summaries["heap"]
        assert summaries["list"] == summaries["mirrored"]


class TestMirroredCache:
    def test_behaves_exactly_like_list_cache(self):
        mirrored = MirroredNCLCache(100)
        plain = NCLCache(100)
        for i, penalty in enumerate((1.0, 8.0, 0.5)):
            mirrored.insert(desc(i, 30, penalty, float(i)), float(i))
            plain.insert(desc(i, 30, penalty, float(i)), float(i))
        assert mirrored.eviction_order() == plain.eviction_order()
        assert mirrored.cost_loss(9, 50, now=3.0) == plain.cost_loss(
            9, 50, now=3.0
        )
        assert mirrored.divergences == []
        mirrored.check_invariants()

    def test_detects_planted_shadow_corruption(self):
        """A deliberately desynchronized shadow is reported, not ignored."""
        mirrored = MirroredNCLCache(100)
        for i, penalty in enumerate((1.0, 8.0, 0.5)):
            mirrored.insert(desc(i, 30, penalty, float(i)), float(i))
        # Corrupt the shadow's ordering state behind the mirror's back.
        victim = mirrored._shadow.eviction_order()[0]
        mirrored._shadow.set_miss_penalty(victim, 1e6, now=3.0)
        assert mirrored.select_victims(80, now=3.0)
        assert mirrored.divergences
        drained = mirrored.drain_divergences()
        assert any("select_victims" in d for d in drained)
        assert mirrored.divergences == []
