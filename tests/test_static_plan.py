"""Tests for the static scheme and the greedy oracle planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.static_plan import greedy_static_plan, node_demand_rates
from repro.costs.model import LatencyCostModel
from repro.schemes.static import StaticPlacementScheme
from repro.sim.architecture import build_hierarchical_architecture
from repro.sim.engine import SimulationEngine
from repro.topology.builder import build_chain
from repro.workload.catalog import ObjectCatalog
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.zipf import ZipfSampler


@pytest.fixture
def chain_costs_small():
    network = build_chain([1.0, 1.0])
    return LatencyCostModel(network, avg_size=100.0)


class TestStaticScheme:
    def test_preloaded_objects_serve_hits(self, chain_costs_small):
        catalog = ObjectCatalog(np.array([100, 100]), np.array([0, 0]))
        scheme = StaticPlacementScheme(
            chain_costs_small,
            capacity_bytes=500,
            placements={0: [1]},
            catalog=catalog,
        )
        hit = scheme.process_request([0, 1, 2], 1, 100, now=0.0)
        assert hit.hit_index == 0
        miss = scheme.process_request([0, 1, 2], 0, 100, now=1.0)
        assert miss.hit_index == 2
        assert miss.inserted_nodes == ()  # static: never inserts

    def test_capacity_enforced(self, chain_costs_small):
        catalog = ObjectCatalog(np.array([400, 400]), np.array([0, 0]))
        with pytest.raises(ValueError, match="overflows"):
            StaticPlacementScheme(
                chain_costs_small,
                capacity_bytes=500,
                placements={0: [0, 1]},
                catalog=catalog,
            )

    def test_contents_never_change(self, chain_costs_small):
        catalog = ObjectCatalog(np.array([100, 100]), np.array([0, 0]))
        scheme = StaticPlacementScheme(
            chain_costs_small, 500, placements={0: [0]}, catalog=catalog
        )
        for t in range(20):
            scheme.process_request([0, 1, 2], 1, 100, now=float(t))
        assert scheme.has_object(0, 0)
        assert not scheme.has_object(0, 1)


class TestNodeDemandRates:
    def test_splits_rate_over_attachments(self):
        arch = build_hierarchical_architecture(num_clients=10, num_servers=1, seed=0)
        rates = np.array([5.0, 1.0])
        demand = node_demand_rates(arch, rates, total_clients=10)
        total = np.zeros(2)
        for node_rates in demand.values():
            total += node_rates
        assert total == pytest.approx(rates)

    def test_validation(self):
        arch = build_hierarchical_architecture(num_clients=2, num_servers=1, seed=0)
        with pytest.raises(ValueError):
            node_demand_rates(arch, [1.0], total_clients=0)


@pytest.fixture(scope="module", name="setup")
def _plan_setup():
    workload = WorkloadConfig(
        num_objects=120,
        num_servers=3,
        num_clients=20,
        num_requests=15_000,
        zipf_theta=0.9,
        seed=8,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    arch = build_hierarchical_architecture(
        workload.num_clients, workload.num_servers, seed=2
    )
    # True per-object rates from the generator's construction.
    sampler = ZipfSampler(workload.num_objects, workload.zipf_theta)
    rng = np.random.default_rng(workload.seed + 1)
    rank_to_object = rng.permutation(workload.num_objects)
    rates = np.zeros(workload.num_objects)
    for rank in range(workload.num_objects):
        rates[rank_to_object[rank]] = (
            sampler.probability(rank) * workload.request_rate
        )
    return workload, generator, trace, arch, rates


class TestGreedyStaticPlan:
    def test_plan_respects_capacity(self, setup):
        _, generator, _, arch, rates = setup
        catalog = generator.catalog
        capacity = int(0.05 * catalog.total_bytes)
        plan = greedy_static_plan(arch, catalog, rates, capacity)
        for node, object_ids in plan.items():
            assert len(object_ids) == len(set(object_ids))
            used = sum(catalog.size(o) for o in object_ids)
            assert used <= capacity

    def test_plan_places_popular_objects(self, setup):
        _, generator, _, arch, rates = setup
        catalog = generator.catalog
        capacity = int(0.05 * catalog.total_bytes)
        plan = greedy_static_plan(arch, catalog, rates, capacity)
        placed = {o for object_ids in plan.values() for o in object_ids}
        assert placed
        top_by_traffic = set(
            np.argsort(-(rates * catalog.sizes))[:5].tolist()
        )
        cacheable_top = {
            o for o in top_by_traffic if catalog.size(o) <= capacity
        }
        assert cacheable_top & placed

    def test_oracle_beats_no_caching(self, setup):
        workload, generator, trace, arch, rates = setup
        catalog = generator.catalog
        capacity = int(0.05 * catalog.total_bytes)
        plan = greedy_static_plan(arch, catalog, rates, capacity)
        cost = LatencyCostModel(arch.network, catalog.mean_size)
        oracle = StaticPlacementScheme(
            cost, capacity, placements=plan, catalog=catalog
        )
        result = SimulationEngine(arch, cost, oracle).run(trace)
        assert result.summary.byte_hit_ratio > 0.2

    def test_rejects_multi_tree_architecture(self, setup):
        from repro.sim.architecture import build_enroute_architecture

        _, generator, _, _, rates = setup
        arch = build_enroute_architecture(num_clients=10, num_servers=10, seed=0)
        with pytest.raises(ValueError, match="single-tree"):
            greedy_static_plan(arch, generator.catalog, rates, 1000)

    def test_rejects_wrong_rate_length(self, setup):
        _, generator, _, arch, _ = setup
        with pytest.raises(ValueError, match="catalog"):
            greedy_static_plan(arch, generator.catalog, [1.0], 1000)


class TestMultiTreePlan:
    def test_enroute_plan_respects_capacity_and_roots(self, setup):
        from repro.analysis.static_plan import greedy_static_plan_multi_tree
        from repro.sim.architecture import build_enroute_architecture

        workload, generator, _, _, rates = setup
        catalog = generator.catalog
        arch = build_enroute_architecture(
            num_clients=workload.num_clients,
            num_servers=workload.num_servers,
            seed=3,
        )
        capacity = int(0.05 * catalog.total_bytes)
        plan = greedy_static_plan_multi_tree(arch, catalog, rates, capacity)
        assert plan
        for node, object_ids in plan.items():
            used = sum(catalog.size(o) for o in object_ids)
            assert used <= capacity
            # An object never lands on its own origin node.
            for o in object_ids:
                assert arch.server_nodes[catalog.server(o)] != node

    def test_enroute_oracle_beats_no_caching(self, setup):
        from repro.analysis.static_plan import greedy_static_plan_multi_tree
        from repro.sim.architecture import build_enroute_architecture

        workload, generator, trace, _, rates = setup
        catalog = generator.catalog
        arch = build_enroute_architecture(
            num_clients=workload.num_clients,
            num_servers=workload.num_servers,
            seed=3,
        )
        capacity = int(0.05 * catalog.total_bytes)
        plan = greedy_static_plan_multi_tree(arch, catalog, rates, capacity)
        cost = LatencyCostModel(arch.network, catalog.mean_size)
        oracle = StaticPlacementScheme(
            cost, capacity, placements=plan, catalog=catalog
        )
        result = SimulationEngine(arch, cost, oracle).run(trace)
        assert result.summary.byte_hit_ratio > 0.15

    def test_single_tree_matches_dedicated_function(self, setup):
        from repro.analysis.static_plan import greedy_static_plan_multi_tree

        _, generator, _, arch, rates = setup
        catalog = generator.catalog
        capacity = int(0.05 * catalog.total_bytes)
        a = greedy_static_plan(arch, catalog, rates, capacity)
        b = greedy_static_plan_multi_tree(arch, catalog, rates, capacity)
        assert a == b
