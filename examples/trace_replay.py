"""Persisting and replaying traces (plugging in real proxy logs).

The paper drove its simulation with the Boeing proxy traces.  Those logs
are gone, but any real trace mapped to the CSV schema
``time,client_id,object_id,server_id,size`` can be replayed.  This
example round-trips a synthetic trace through the file format, extracts a
most-popular-objects subtrace (the paper's memory-saving step, section
3.1), and replays both against the coordinated scheme to show the
extraction preserves relative behavior.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SimulationConfig, build_architecture, run_single
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.trace import read_trace_csv, write_trace_csv


def main() -> None:
    workload = WorkloadConfig(
        num_objects=600,
        num_servers=10,
        num_clients=40,
        num_requests=12_000,
        zipf_theta=0.8,
        seed=21,
    )
    generator = BoeingLikeTraceGenerator(workload)
    full_trace = generator.generate()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "boeing_like.csv"
        write_trace_csv(full_trace, path)
        print(f"wrote {len(full_trace)} requests to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)")
        loaded = read_trace_csv(path)
    assert loaded.records == full_trace.records
    print("round-trip check passed")

    # The paper's subtrace extraction: keep the most popular objects only.
    top = full_trace.most_popular(150)
    subtrace = full_trace.filter_objects(top)
    share = len(subtrace) / len(full_trace)
    print(
        f"subtrace: top {len(top)} objects cover {share:.0%} of requests "
        "(paper: top 100k objects covered >50%)"
    )

    architecture = build_architecture("hierarchical", workload, seed=3)
    config = SimulationConfig(relative_cache_size=0.03)
    print(f"\n{'trace':<10} {'requests':>9} {'latency':>9} {'byte hit':>9}")
    for label, trace in (("full", full_trace), ("subtrace", subtrace)):
        point = run_single(
            architecture, trace, generator.catalog, "coordinated", config
        )
        s = point.summary
        print(
            f"{label:<10} {len(trace):>9} {s.mean_latency:>9.4f} "
            f"{s.byte_hit_ratio:>9.3f}"
        )
    print(
        "\nThe subtrace keeps relative access frequencies, so scheme "
        "comparisons on it remain valid -- the paper's argument for "
        "simulating on extracted traces."
    )


if __name__ == "__main__":
    main()
