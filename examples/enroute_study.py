"""En-route caching study: the experiment behind Figures 6-8.

Sweeps relative cache size for all four schemes on the Tiers-like
en-route architecture and prints the latency, hit-ratio, traffic and
cache-load tables the paper plots.

Run:  python examples/enroute_study.py [--standard]
"""

from __future__ import annotations

import argparse

from repro import (
    SMALL_SCALE,
    STANDARD_SCALE,
    build_architecture,
    figure_series,
    format_sweep_table,
    format_table1,
    run_cache_size_sweep,
    topology_characteristics,
)

CACHE_SIZES = (0.003, 0.01, 0.03, 0.1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--standard",
        action="store_true",
        help="use the 60k-request standard scale (takes a few minutes)",
    )
    args = parser.parse_args()

    preset = (STANDARD_SCALE if args.standard else SMALL_SCALE).with_seed(1)
    generator = preset.generator()
    trace = generator.generate()
    architecture = build_architecture("en-route", preset.workload, seed=1)

    print("Table 1: System Parameters for En-Route Architecture")
    print(format_table1(topology_characteristics(architecture)))
    print()

    points = run_cache_size_sweep(
        architecture,
        trace,
        generator.catalog,
        scheme_names=("lru", "modulo", "lnc-r", "coordinated"),
        cache_sizes=CACHE_SIZES,
        scheme_params={"modulo": {"radius": 4}},
    )

    print(format_sweep_table(
        points, ["latency", "response_ratio"],
        title="Figure 6: latency / response ratio vs cache size",
    ))
    print()
    print(format_sweep_table(
        points, ["byte_hit_ratio", "traffic"],
        title="Figure 7: byte hit ratio / network traffic vs cache size",
    ))
    print()
    print(format_sweep_table(
        points, ["hops", "cache_load", "read_load", "write_load"],
        title="Figure 8: hops / cache load vs cache size",
    ))

    # Headline number: latency improvement at the largest cache size.
    latency = figure_series(points, "latency")
    largest = max(CACHE_SIZES)
    coord = dict(latency["coordinated"])[largest]
    lru = dict(latency["lru"])[largest]
    print(
        f"\nAt {largest:.0%} cache, coordinated improves mean latency over "
        f"LRU by {100 * (1 - coord / lru):.0f}% "
        f"(paper reports >60% at its scale)."
    )


if __name__ == "__main__":
    main()
