"""Live cluster: serve a trace through real cache-node servers.

Builds the hierarchical architecture, brings it up as a live cluster of
asyncio cache nodes speaking the coordinated protocol (piggybacked
reports upstream, DP decision at the serving node, cost accumulator on
the downstream unwind), and drives the same Zipf-like trace through it
three ways:

1. sequentially over the in-process transport -- which must reproduce
   the simulator's summary *bit for bit* (the differential oracle);
2. closed-loop with concurrent clients over loopback TCP, scraping a
   node's live Prometheus /metrics endpoint along the way;
3. the plain simulator, for reference.

Run:  python examples/live_cluster.py
"""

from __future__ import annotations

import asyncio

from repro import SMALL_SCALE, SimulationConfig, build_architecture, run_single
from repro.serve import Cluster, LoadGenerator, TCPTransport

SCHEME = "coordinated"
CONFIG = SimulationConfig(relative_cache_size=0.03)


async def http_get(host: str, port: int, target: str) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw.decode("utf-8").partition("\r\n\r\n")[2]


async def serve_in_process(architecture, trace, catalog):
    cluster = Cluster.build(architecture, catalog, SCHEME, config=CONFIG)
    await cluster.start()
    loadgen = LoadGenerator(
        cluster, trace, warmup_fraction=CONFIG.warmup_fraction
    )
    report = await loadgen.run(mode="sequential")
    await cluster.stop()
    return report


async def serve_over_tcp(architecture, trace, catalog):
    cluster = Cluster.build(
        architecture, catalog, SCHEME, config=CONFIG, transport=TCPTransport()
    )
    await cluster.start()
    endpoints = await cluster.enable_metrics()
    loadgen = LoadGenerator(
        cluster, trace, warmup_fraction=CONFIG.warmup_fraction
    )
    report = await loadgen.run(mode="closed", concurrency=8)

    ingress = architecture.client_nodes[trace[0].client_id]
    host, port = endpoints[ingress]
    body = await http_get(host, port, "/metrics")
    handled = next(
        line.rsplit(" ", 1)[1]
        for line in body.splitlines()
        if line.startswith("repro_node_requests_handled_total")
    )
    await cluster.stop()
    return report, ingress, handled


def main() -> None:
    preset = SMALL_SCALE.with_seed(42)
    generator = preset.generator()
    trace = generator.generate()
    architecture = build_architecture("hierarchical", preset.workload, seed=42)
    print(
        f"cluster: {architecture.network.num_nodes} cache nodes "
        f"({architecture.name}), trace: {len(trace)} requests"
    )

    sim = run_single(architecture, trace, generator.catalog, SCHEME, CONFIG)

    print("\n-- in-process cluster, sequential replay --")
    report = asyncio.run(serve_in_process(architecture, trace, generator.catalog))
    print(
        f"latency {report.summary.mean_latency:.4f}  "
        f"byte hit {report.summary.byte_hit_ratio:.3f}  "
        f"hops {report.summary.mean_hops:.2f}"
    )
    exact = report.summary == sim.summary
    print(f"bit-for-bit equal to the simulator: {exact}")
    assert exact, "the live protocol diverged from the simulator"

    print("\n-- loopback TCP, closed loop (8 concurrent clients) --")
    report, ingress, handled = asyncio.run(
        serve_over_tcp(architecture, trace, generator.catalog)
    )
    rps = report.requests_per_second
    print(
        f"{report.requests_total} requests in {report.duration_seconds:.2f}s "
        f"({f'{rps:.0f} req/s' if rps is not None else 'rps n/a'}), "
        f"{report.errors} errors"
    )
    print(
        f"wall latency mean {report.wall_latency_mean * 1e3:.2f} ms, "
        f"p99 {report.wall_latency_percentiles[2] * 1e3:.2f} ms"
    )
    print(f"node {ingress} /metrics reports {handled} walks handled")

    print(
        "\nSame schemes, same decisions -- the cluster speaks the paper's "
        "protocol over real frames and the simulator stays its oracle."
    )


if __name__ == "__main__":
    main()
