"""Hierarchical caching study: the experiment behind Figures 9-10.

Runs the four schemes on the paper's full 3-ary, depth-4 cache tree and
demonstrates the MODULO blind spot: with radius 4, only the leaf caches
ever hold objects, so MODULO falls behind plain LRU -- the opposite of the
en-route ranking.

Run:  python examples/hierarchical_study.py
"""

from __future__ import annotations

from repro import (
    SMALL_SCALE,
    build_architecture,
    format_sweep_table,
    run_cache_size_sweep,
    run_modulo_radius_sweep,
)
from repro.costs.model import LatencyCostModel
from repro.schemes.modulo import ModuloScheme
from repro.sim.engine import SimulationEngine

CACHE_SIZES = (0.003, 0.01, 0.03, 0.1)


def main() -> None:
    preset = SMALL_SCALE.with_seed(1)
    generator = preset.generator()
    trace = generator.generate()
    architecture = build_architecture("hierarchical", preset.workload, seed=1)
    tree_levels = max(
        architecture.network.level(n) for n in architecture.network.nodes()
    )
    print(
        f"cache tree: depth {tree_levels}, "
        f"{architecture.network.num_nodes - 1} caches, "
        f"{len(set(architecture.client_nodes.values()))} leaf attachment points"
    )
    print()

    points = run_cache_size_sweep(
        architecture,
        trace,
        generator.catalog,
        scheme_names=("lru", "modulo", "lnc-r", "coordinated"),
        cache_sizes=CACHE_SIZES,
        scheme_params={"modulo": {"radius": 4}},
    )
    print(format_sweep_table(
        points, ["latency", "response_ratio"],
        title="Figure 9: latency / response ratio vs cache size",
    ))
    print()
    print(format_sweep_table(
        points, ["byte_hit_ratio", "cache_load"],
        title="Figure 10: byte hit ratio / cache load vs cache size",
    ))
    print()

    # The blind spot, shown directly: replay MODULO(r=4) and count which
    # tree levels ever stored an object.
    cost = LatencyCostModel(architecture.network, generator.catalog.mean_size)
    scheme = ModuloScheme(cost, capacity_bytes=200_000, radius=4)
    SimulationEngine(architecture, cost, scheme).run(trace)
    used_levels = sorted(
        {
            architecture.network.level(node)
            for node, cache in scheme.caches().items()
            if len(cache) > 0
        }
    )
    print(f"MODULO(r=4): tree levels that ever cached an object: {used_levels}")
    print("Levels 1-3 stay empty -- the paper's explanation for Figure 9.")
    print()

    radius_points = run_modulo_radius_sweep(
        architecture, trace, generator.catalog, radii=(1, 2, 3, 4),
        relative_cache_size=0.03,
    )
    print(format_sweep_table(
        radius_points, ["latency", "byte_hit_ratio"],
        title="MODULO radius sweep at 3% cache (radius 1 == LRU placement)",
    ))


if __name__ == "__main__":
    main()
