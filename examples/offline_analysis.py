"""Analytical companions: oracle placement, Che's approximation, densities.

Three analyses that complement the trace-driven simulator:

1. **Oracle placement** -- solve each popular object's placement optimally
   over the cache hierarchy (tree DP) with true request rates, evaluate
   the resulting static plan, and compare it with the online coordinated
   scheme.
2. **Che's approximation** -- predict a single LRU cache's byte hit ratio
   analytically and check it against simulation.
3. **Replication density** -- observe the mechanism behind the paper's
   results: the coordinated scheme replicates popular objects densely and
   unpopular ones sparsely.

Run:  python examples/offline_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LatencyCostModel,
    SimulationConfig,
    SimulationEngine,
    build_architecture,
    build_scheme,
    density_by_popularity,
    expected_byte_hit_ratio,
    greedy_static_plan,
    run_single,
)
from repro.schemes.static import StaticPlacementScheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.zipf import ZipfSampler

WORKLOAD = WorkloadConfig(
    num_objects=500,
    num_servers=10,
    num_clients=60,
    num_requests=12_000,
    zipf_theta=0.8,
    seed=42,
)
CACHE_SIZE = 0.05


def true_object_rates(workload: WorkloadConfig) -> np.ndarray:
    """Per-object Poisson rates implied by the generator's construction."""
    sampler = ZipfSampler(workload.num_objects, workload.zipf_theta)
    rng = np.random.default_rng(workload.seed + 1)
    rank_to_object = rng.permutation(workload.num_objects)
    rates = np.zeros(workload.num_objects)
    for rank in range(workload.num_objects):
        rates[rank_to_object[rank]] = (
            sampler.probability(rank) * workload.request_rate
        )
    return rates


def oracle_vs_online() -> None:
    print("-- oracle static plan vs online coordination ---------------")
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", WORKLOAD, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    plan = greedy_static_plan(arch, catalog, true_object_rates(WORKLOAD), capacity)
    oracle = StaticPlacementScheme(cost, capacity, placements=plan, catalog=catalog)
    oracle_result = SimulationEngine(arch, cost, oracle).run(trace)

    print(f"{'scheme':<14} {'latency':>9} {'byte hit':>9}")
    s = oracle_result.summary
    print(f"{'static-oracle':<14} {s.mean_latency:>9.4f} {s.byte_hit_ratio:>9.3f}")
    for name in ("coordinated", "lru"):
        scheme = build_scheme(name, cost, capacity, dentries)
        s = SimulationEngine(arch, cost, scheme).run(trace).summary
        print(f"{name:<14} {s.mean_latency:>9.4f} {s.byte_hit_ratio:>9.3f}")
    print("The online scheme discovers (most of) what the oracle computes "
          "from true rates.\n")


def che_check() -> None:
    print("-- Che's approximation vs a simulated LRU cache ------------")
    from repro.schemes.lru_everywhere import LRUEverywhereScheme
    from repro.topology.builder import build_chain

    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    capacity = int(0.1 * catalog.total_bytes)
    network = build_chain([1.0])
    cost = LatencyCostModel(network, catalog.mean_size)
    scheme = LRUEverywhereScheme(cost, capacity_bytes=capacity)
    hits = requested = 0
    for index, record in enumerate(trace):
        outcome = scheme.process_request(
            [0, 1], record.object_id, record.size, record.time
        )
        if index >= len(trace) // 2:
            requested += record.size
            hits += record.size if outcome.served_by_cache else 0

    rates = true_object_rates(WORKLOAD)
    sizes = catalog.sizes.astype(float)
    cacheable = sizes <= capacity
    theory = expected_byte_hit_ratio(rates[cacheable], sizes[cacheable], capacity)
    theory *= (rates[cacheable] * sizes[cacheable]).sum() / (rates * sizes).sum()
    print(f"simulated byte hit ratio: {hits / requested:.3f}")
    print(f"Che approximation:        {theory:.3f}\n")


def density_observation() -> None:
    print("-- replication density by popularity decile ----------------")
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", WORKLOAD, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    scheme = build_scheme("coordinated", cost, capacity, dentries)
    SimulationEngine(arch, cost, scheme).run(trace)
    ranking = trace.most_popular(catalog.num_objects)
    densities = density_by_popularity(scheme, ranking, buckets=10)
    print("decile (0 = hottest):", "  ".join(f"{d:.1f}" for d in densities))
    print("Copies concentrate on the hottest objects -- the paper's "
          "placement mechanism at work.")


def main() -> None:
    oracle_vs_online()
    che_check()
    density_observation()


if __name__ == "__main__":
    main()
