"""Quickstart: compare coordinated caching against LRU on one setup.

Builds the paper's en-route architecture (Tiers-like topology, Table 1),
generates a Zipf-like synthetic trace, and replays it under the LRU
baseline and the coordinated scheme at a 3% relative cache size.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SMALL_SCALE,
    SimulationConfig,
    build_architecture,
    run_single,
)


def main() -> None:
    preset = SMALL_SCALE.with_seed(42)
    generator = preset.generator()
    trace = generator.generate()
    print(
        f"trace: {len(trace)} requests, {trace.unique_objects()} objects, "
        f"{generator.catalog.total_bytes / 1e6:.1f} MB total"
    )

    architecture = build_architecture("en-route", preset.workload, seed=42)
    print(
        f"architecture: {architecture.name}, "
        f"{architecture.network.num_nodes} nodes, "
        f"{architecture.network.num_links} links, "
        f"mean path {architecture.mean_client_server_hops():.1f} hops"
    )

    config = SimulationConfig(relative_cache_size=0.03)
    print(f"\nper-node cache: {config.relative_cache_size:.0%} of total bytes\n")

    print(f"{'scheme':<14} {'latency':>9} {'byte hit':>9} {'hops':>6} {'load/req':>10}")
    for scheme in ("lru", "coordinated"):
        point = run_single(
            architecture, trace, generator.catalog, scheme, config
        )
        s = point.summary
        print(
            f"{point.scheme:<14} {s.mean_latency:>9.4f} "
            f"{s.byte_hit_ratio:>9.3f} {s.mean_hops:>6.2f} "
            f"{s.mean_cache_load:>10.0f}"
        )

    print(
        "\nCoordinated caching serves requests from closer copies with far "
        "less cache churn -- the paper's headline result."
    )


if __name__ == "__main__":
    main()
