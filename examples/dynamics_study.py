"""Cache dynamics: warm-up, a flash crowd, and an invalidation storm.

Uses the interval-metrics collector to watch the coordinated scheme's
behavior *over time* instead of as one steady-state mean:

1. warm-up: byte hit ratio climbs as descriptors accumulate;
2. flash crowd: one cold object suddenly gets hot mid-trace -- watch the
   hit ratio absorb the surge;
3. invalidation storm: server-side updates knock copies out -- watch hit
   ratio dip and recover.

Run:  python examples/dynamics_study.py
"""

from __future__ import annotations

from repro import (
    LatencyCostModel,
    SimulationConfig,
    SimulationEngine,
    build_architecture,
    build_scheme,
)
from repro.metrics.timeseries import IntervalMetricsCollector
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.scenarios import inject_flash_crowd
from repro.workload.updates import generate_update_events

WORKLOAD = WorkloadConfig(
    num_objects=400,
    num_servers=10,
    num_clients=50,
    num_requests=15_000,
    zipf_theta=0.8,
    seed=33,
)
WINDOWS = 12


def sparkline(values, width=40) -> str:
    """Render a value series as a text bar chart, one row per window."""
    peak = max(values) or 1.0
    rows = []
    for i, value in enumerate(values):
        bar = "#" * max(1, int(width * value / peak)) if value > 0 else ""
        rows.append(f"  w{i:02d} {value:6.3f} |{bar}")
    return "\n".join(rows)


def run_with_series(trace, updates=()):
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    catalog = generator.catalog
    arch = build_architecture("en-route", WORKLOAD, seed=2)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=0.03)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    scheme = build_scheme("coordinated", cost, capacity, dentries)
    collector = IntervalMetricsCollector(trace.duration / WINDOWS)
    SimulationEngine(arch, cost, scheme).run(
        trace, updates=updates, interval_collector=collector
    )
    return [s for s in collector.series() if s.requests > 0]


def main() -> None:
    generator = BoeingLikeTraceGenerator(WORKLOAD)
    base_trace = generator.generate()
    catalog = generator.catalog

    print("== warm-up: byte hit ratio per window (plain trace) ==")
    series = run_with_series(base_trace)
    print(sparkline([s.byte_hit_ratio for s in series]))
    print()

    print("== flash crowd on object 9 during windows 6-8 ==")
    start = base_trace.duration * 0.5
    crowded = inject_flash_crowd(
        base_trace, catalog, object_id=9, start=start,
        duration=base_trace.duration * 0.25, extra_rate=40.0,
        num_clients=WORKLOAD.num_clients, seed=7,
    )
    series = run_with_series(crowded)
    print(sparkline([s.byte_hit_ratio for s in series]))
    print("The surge is absorbed: extra requests hit fresh nearby copies,")
    print("so the hit ratio rises rather than collapsing.")
    print()

    print("== invalidation storm (10 updates/s) ==")
    updates = generate_update_events(
        WORKLOAD.num_objects, base_trace.duration, update_rate=10.0, seed=3
    )
    series = run_with_series(base_trace, updates=updates)
    print(sparkline([s.byte_hit_ratio for s in series]))
    print("Updates keep knocking copies out; the hit ratio plateaus lower "
          "than the quiet run.")


if __name__ == "__main__":
    main()
