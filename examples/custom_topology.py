"""Using the library on a custom topology and calling the DP directly.

This example shows the two lower-level entry points a downstream user
needs beyond the canned architectures:

1. Building an arbitrary topology (here: a regional ISP chain with one
   expensive transit link) and running schemes over it.
2. Calling the placement dynamic program directly with hand-computed
   frequencies / penalties / losses -- useful for what-if analysis
   without a simulator in the loop.

Run:  python examples/custom_topology.py
"""

from __future__ import annotations

from repro import (
    LatencyCostModel,
    PlacementProblem,
    SimulationEngine,
    build_scheme,
    solve_placement,
)
from repro.routing.distribution_tree import RoutingTable
from repro.sim.architecture import Architecture
from repro.topology.builder import build_chain
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig


def placement_what_if() -> None:
    """Solve one placement problem by hand (paper Definition 1)."""
    print("-- direct DP call ------------------------------------------")
    # Path A_1..A_4 from the serving node towards the requester.
    problem = PlacementProblem(
        frequencies=(8.0, 5.0, 5.0, 2.0),   # requests/s observed per node
        penalties=(0.2, 0.5, 0.9, 1.4),     # cost from serving node (s)
        losses=(0.3, 0.1, 4.0, 0.2),        # eviction cost loss per node
    )
    solution = solve_placement(problem)
    print(f"cache at path positions {solution.indices} "
          f"(0 = next to serving node)")
    print(f"expected cost reduction: {solution.gain:.2f} per second")
    # Position 2 has a prohibitive eviction loss and is skipped even
    # though its miss penalty is high.
    assert 2 not in solution.indices
    print()


def isp_chain_simulation() -> None:
    """A 6-hop access chain with one slow transit link in the middle."""
    print("-- custom chain topology -----------------------------------")
    # client edge -- metro -- metro -- TRANSIT -- core -- server edge
    delays = [0.005, 0.01, 0.02, 0.25, 0.02]
    network = build_chain(delays)
    server_node = network.num_nodes - 1

    workload = WorkloadConfig(
        num_objects=300,
        num_servers=1,
        num_clients=20,
        num_requests=8_000,
        zipf_theta=0.8,
        seed=9,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    catalog = generator.catalog

    architecture = Architecture(
        name="isp-chain",
        network=network,
        routing=RoutingTable(network),
        client_nodes={c: 0 for c in range(workload.num_clients)},
        server_nodes={0: server_node},
    )
    cost = LatencyCostModel(network, catalog.mean_size)
    capacity = int(0.05 * catalog.total_bytes)
    dcache_entries = int(3 * capacity / catalog.mean_size)

    print(f"{'scheme':<14} {'latency':>9} {'byte hit':>9} {'hops':>6}")
    for name in ("lru", "coordinated"):
        scheme = build_scheme(name, cost, capacity, dcache_entries)
        result = SimulationEngine(architecture, cost, scheme).run(trace)
        s = result.summary
        print(
            f"{result.scheme:<14} {s.mean_latency:>9.4f} "
            f"{s.byte_hit_ratio:>9.3f} {s.mean_hops:>6.2f}"
        )
    print(
        "\nThe coordinated scheme concentrates copies below the expensive "
        "transit link,\nwhere the miss penalty (and thus the DP's gain) is "
        "largest."
    )


def main() -> None:
    placement_what_if()
    isp_chain_simulation()


if __name__ == "__main__":
    main()
