"""The paper's generic per-link cost function ``c(u, v, O)``.

Section 2 leaves the cost function open: it "can be interpreted as
different performance measures such as network latency, bandwidth
consumption and processing cost".  The evaluation (section 3.3) interprets
it as access latency, with the delay of a link "set proportionally to the
size of the requested object" and the topology's base delays being those of
an average-size object.

These classes provide that family.  ``path_cost`` sums the per-link costs
along a node sequence, which is exactly the paper's access cost of a
request that travels over multiple links.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.topology.graph import Network


class CostModel(abc.ABC):
    """Cost of shipping a request + response for an object over a link."""

    def __init__(self, network: Network) -> None:
        self.network = network

    @abc.abstractmethod
    def link_cost(self, u: int, v: int, size: int) -> float:
        """Cost ``c(u, v, O)`` for an object of ``size`` bytes."""

    def path_cost(self, path: Sequence[int], size: int) -> float:
        """Total cost over consecutive links of ``path``."""
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.link_cost(u, v, size)
        return total


class LatencyCostModel(CostModel):
    """Latency cost: base link delay scaled by object size.

    ``c(u, v, O) = delay(u, v) * s(O) / avg_size`` -- the topology's base
    delays are the delays of an object of ``avg_size`` bytes (section 3.2).
    """

    def __init__(self, network: Network, avg_size: float) -> None:
        super().__init__(network)
        if avg_size <= 0:
            raise ValueError("average object size must be positive")
        self.avg_size = float(avg_size)

    def link_cost(self, u: int, v: int, size: int) -> float:
        return self.network.link_delay(u, v) * (size / self.avg_size)


class HopCostModel(CostModel):
    """Hop-count cost: every link costs 1 regardless of object size."""

    def link_cost(self, u: int, v: int, size: int) -> float:
        self.network.link_delay(u, v)  # validates the link exists
        return 1.0


class BandwidthCostModel(CostModel):
    """Bandwidth cost: bytes moved per link, i.e. byte x hops when summed."""

    def link_cost(self, u: int, v: int, size: int) -> float:
        self.network.link_delay(u, v)  # validates the link exists
        return float(size)
