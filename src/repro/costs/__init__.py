"""Cost models: the paper's generic link cost ``c(u, v, O)``."""

from repro.costs.model import (
    BandwidthCostModel,
    CostModel,
    HopCostModel,
    LatencyCostModel,
)

__all__ = [
    "BandwidthCostModel",
    "CostModel",
    "HopCostModel",
    "LatencyCostModel",
]
