"""Object catalog: ids, sizes and owning origin servers.

Every origin server hosts a disjoint collection of objects (paper,
section 2).  The catalog assigns each object a size drawn from a
heavy-tailed distribution (lognormal body + Pareto tail), which matches
the well-known shape of web object sizes the Boeing traces exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class SizeDistribution:
    """Heavy-tailed object size distribution.

    A fraction ``tail_fraction`` of objects draw sizes from a Pareto tail
    starting at ``tail_min``; the rest draw from a lognormal body.  Sizes
    are clamped to ``[min_size, max_size]`` and rounded to whole bytes.
    Defaults are typical 1999-era web object statistics: median a few KB,
    mean dominated by the tail.
    """

    body_median: float = 4096.0
    body_sigma: float = 1.2
    tail_fraction: float = 0.03
    tail_min: float = 65536.0
    tail_alpha: float = 1.2
    min_size: int = 64
    max_size: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if not 0 <= self.tail_fraction <= 1:
            raise ValueError("tail_fraction must be in [0, 1]")
        if self.min_size <= 0 or self.max_size < self.min_size:
            raise ValueError("invalid size bounds")
        if self.body_median <= 0 or self.tail_min <= 0:
            raise ValueError("size scales must be positive")
        if self.tail_alpha <= 0:
            raise ValueError("tail_alpha must be positive")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` object sizes in bytes."""
        body = rng.lognormal(
            mean=np.log(self.body_median), sigma=self.body_sigma, size=count
        )
        tail = self.tail_min * (1.0 + rng.pareto(self.tail_alpha, size=count))
        is_tail = rng.random(count) < self.tail_fraction
        sizes = np.where(is_tail, tail, body)
        sizes = np.clip(sizes, self.min_size, self.max_size)
        return sizes.astype(np.int64)


class ObjectCatalog:
    """Immutable catalog mapping object id -> (size, server id).

    Object ids are dense integers ``0 .. num_objects - 1``.  Servers are
    dense integers ``0 .. num_servers - 1``; each object belongs to exactly
    one server (disjoint server collections, as in the paper's model).
    """

    def __init__(self, sizes: np.ndarray, servers: np.ndarray) -> None:
        if len(sizes) != len(servers):
            raise ValueError("sizes and servers must have equal length")
        if len(sizes) == 0:
            raise ValueError("catalog must contain at least one object")
        if (sizes <= 0).any():
            raise ValueError("object sizes must be positive")
        if (servers < 0).any():
            raise ValueError("server ids must be non-negative")
        self._sizes = np.asarray(sizes, dtype=np.int64)
        self._servers = np.asarray(servers, dtype=np.int64)

    @classmethod
    def generate(
        cls,
        num_objects: int,
        num_servers: int,
        size_distribution: SizeDistribution | None = None,
        seed: int = 0,
    ) -> "ObjectCatalog":
        """Random catalog: sizes from the distribution, servers uniform."""
        if num_objects < 1 or num_servers < 1:
            raise ValueError("need at least one object and one server")
        rng = np.random.default_rng(seed)
        dist = size_distribution or SizeDistribution()
        sizes = dist.sample(num_objects, rng)
        servers = rng.integers(num_servers, size=num_objects)
        return cls(sizes, servers)

    @property
    def num_objects(self) -> int:
        return len(self._sizes)

    @property
    def num_servers(self) -> int:
        return int(self._servers.max()) + 1

    def size(self, object_id: int) -> int:
        return int(self._sizes[object_id])

    def server(self, object_id: int) -> int:
        return int(self._servers[object_id])

    @property
    def sizes(self) -> np.ndarray:
        """All sizes (read-only view)."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def servers(self) -> np.ndarray:
        """All owning server ids (read-only view)."""
        view = self._servers.view()
        view.flags.writeable = False
        return view

    @property
    def total_bytes(self) -> int:
        """Total size of all objects -- the paper's 'relative cache size' base."""
        return int(self._sizes.sum())

    @property
    def mean_size(self) -> float:
        return float(self._sizes.mean())

    def objects_of_server(self, server_id: int) -> List[int]:
        return np.nonzero(self._servers == server_id)[0].tolist()
