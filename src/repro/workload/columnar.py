"""Columnar trace storage: the fast-path twin of :class:`~repro.workload.trace.Trace`.

A :class:`ColumnarTrace` keeps the five trace fields as parallel numpy
arrays (struct-of-arrays) instead of ``num_requests`` frozen dataclasses.
That is ~40 bytes per request instead of several hundred, builds orders of
magnitude faster from vectorized generators, and lets the simulation
engine's fast path gather routing and latency inputs with array ops.

Design rules:

* **Same data, same API surface.**  Every read accessor of ``Trace`` that
  the engine or analysis code uses (``__len__``, ``__iter__`` yielding
  :class:`~repro.workload.trace.TraceRecord`, ``__getitem__``,
  ``split_warmup``, ``duration``, ``total_requested_bytes``,
  ``unique_objects``, ``most_popular``, ``filter_objects``) exists here
  with identical semantics, so a ``ColumnarTrace`` can be dropped into any
  reference-path consumer and produce bit-identical results.
* **Zero-copy views.**  ``view`` / ``iter_chunks`` return array *views*
  onto the parent storage -- chunked streaming never duplicates the trace.
* **Exact round-trips.**  CSV I/O uses ``repr`` for times (shortest float
  representation) exactly like :func:`~repro.workload.trace.write_trace_csv`,
  so files written by either writer load bit-identically through either
  reader.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.workload.trace import _CSV_HEADER, Trace, TraceRecord

# Batch size for the lazy record iterator: bounds transient python-object
# memory while amortizing the numpy -> python conversion.
_ITER_BATCH = 65_536


class ColumnarTrace:
    """A time-ordered request trace stored as parallel numpy arrays."""

    __slots__ = ("times", "client_ids", "object_ids", "server_ids", "sizes")

    def __init__(
        self,
        times: np.ndarray,
        client_ids: np.ndarray,
        object_ids: np.ndarray,
        server_ids: np.ndarray,
        sizes: np.ndarray,
        validate: bool = True,
    ) -> None:
        self.times = np.asarray(times, dtype=np.float64)
        self.client_ids = np.asarray(client_ids, dtype=np.int64)
        self.object_ids = np.asarray(object_ids, dtype=np.int64)
        self.server_ids = np.asarray(server_ids, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = len(self.times)
        for name in ("client_ids", "object_ids", "server_ids", "sizes"):
            if len(getattr(self, name)) != n:
                raise ValueError("trace columns must have equal length")
        if n == 0:
            return
        # Same constraints TraceRecord/Trace enforce per record, vectorized.
        if float(self.times[0]) < 0:
            raise ValueError("request time must be non-negative")
        if np.any(np.diff(self.times) < 0):
            raise ValueError("trace records must be time-ordered")
        if int(self.sizes.min()) <= 0:
            raise ValueError("object size must be positive")
        if (
            int(self.client_ids.min()) < 0
            or int(self.object_ids.min()) < 0
            or int(self.server_ids.min()) < 0
        ):
            raise ValueError("ids must be non-negative")

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[TraceRecord]:
        """Yield :class:`TraceRecord` objects lazily, in batches.

        Records are materialized ``_ITER_BATCH`` at a time from python
        scalars, so iterating never holds a full list of dataclasses.
        This is the compatibility bridge: the reference engine loop (and
        any analysis helper) consumes a ``ColumnarTrace`` through it
        unchanged.
        """
        n = len(self.times)
        for start in range(0, n, _ITER_BATCH):
            stop = min(start + _ITER_BATCH, n)
            times = self.times[start:stop].tolist()
            clients = self.client_ids[start:stop].tolist()
            objects = self.object_ids[start:stop].tolist()
            servers = self.server_ids[start:stop].tolist()
            sizes = self.sizes[start:stop].tolist()
            for i in range(stop - start):
                yield TraceRecord(
                    time=times[i],
                    client_id=clients[i],
                    object_id=objects[i],
                    server_id=servers[i],
                    size=sizes[i],
                )

    def __getitem__(self, index: int) -> TraceRecord:
        return TraceRecord(
            time=float(self.times[index]),
            client_id=int(self.client_ids[index]),
            object_id=int(self.object_ids[index]),
            server_id=int(self.server_ids[index]),
            size=int(self.sizes[index]),
        )

    # -- Trace-compatible accessors ------------------------------------------

    @property
    def duration(self) -> float:
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1]) - float(self.times[0])

    def split_warmup(self, warmup_fraction: float = 0.5) -> tuple[int, int]:
        """Same split as :meth:`Trace.split_warmup`: ``(warmup_end, total)``."""
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        n = len(self.times)
        return int(n * warmup_fraction), n

    def total_requested_bytes(self, start: int = 0) -> int:
        return int(self.sizes[start:].sum())

    def unique_objects(self) -> int:
        return len(np.unique(self.object_ids))

    def most_popular(self, top: int) -> List[int]:
        """Ids of the ``top`` most-requested objects (count desc, id asc)."""
        ids, counts = np.unique(self.object_ids, return_counts=True)
        # lexsort's last key is primary: order by -count, then id ascending.
        order = np.lexsort((ids, -counts))
        return ids[order[:top]].tolist()

    def filter_objects(self, keep: Iterable[int]) -> "ColumnarTrace":
        """Subtrace of requests for the given objects (zero-copy mask gather)."""
        keep_ids = np.fromiter(set(keep), dtype=np.int64)
        mask = np.isin(self.object_ids, keep_ids)
        return ColumnarTrace(
            self.times[mask],
            self.client_ids[mask],
            self.object_ids[mask],
            self.server_ids[mask],
            self.sizes[mask],
            validate=False,
        )

    # -- views and chunking ---------------------------------------------------

    def view(self, start: int, stop: int) -> "ColumnarTrace":
        """Zero-copy sub-trace ``[start:stop)`` sharing the parent arrays."""
        return ColumnarTrace(
            self.times[start:stop],
            self.client_ids[start:stop],
            self.object_ids[start:stop],
            self.server_ids[start:stop],
            self.sizes[start:stop],
            validate=False,
        )

    def iter_chunks(self, chunk_records: int) -> Iterator["ColumnarTrace"]:
        """Yield consecutive zero-copy views of up to ``chunk_records`` each."""
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        n = len(self.times)
        for start in range(0, n, chunk_records):
            yield self.view(start, min(start + chunk_records, n))

    # -- adapters -------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "ColumnarTrace":
        """Build from materialized records (columns validated once)."""
        n = len(records)
        times = np.empty(n, dtype=np.float64)
        clients = np.empty(n, dtype=np.int64)
        objects = np.empty(n, dtype=np.int64)
        servers = np.empty(n, dtype=np.int64)
        sizes = np.empty(n, dtype=np.int64)
        for i, r in enumerate(records):
            times[i] = r.time
            clients[i] = r.client_id
            objects[i] = r.object_id
            servers[i] = r.server_id
            sizes[i] = r.size
        return cls(times, clients, objects, servers, sizes)

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        return cls.from_records(trace.records)

    def to_trace(self) -> Trace:
        """Materialize the reference representation (one dataclass per row)."""
        return Trace(list(self))

    @classmethod
    def concat(cls, chunks: Sequence["ColumnarTrace"]) -> "ColumnarTrace":
        """Concatenate chunks (e.g. from a streaming generator) into one trace."""
        chunks = list(chunks)
        if not chunks:
            return cls(
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                validate=False,
            )
        return cls(
            np.concatenate([c.times for c in chunks]),
            np.concatenate([c.client_ids for c in chunks]),
            np.concatenate([c.object_ids for c in chunks]),
            np.concatenate([c.server_ids for c in chunks]),
            np.concatenate([c.sizes for c in chunks]),
        )


def write_trace_csv_columnar(trace: ColumnarTrace, path: str | Path) -> None:
    """Persist a columnar trace to the standard trace CSV format.

    Produces byte-identical files to
    :func:`~repro.workload.trace.write_trace_csv` on the same data
    (``repr`` float round-trip), without materializing records.
    """
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_CSV_HEADER)
        n = len(trace)
        for start in range(0, n, _ITER_BATCH):
            stop = min(start + _ITER_BATCH, n)
            times = trace.times[start:stop].tolist()
            clients = trace.client_ids[start:stop].tolist()
            objects = trace.object_ids[start:stop].tolist()
            servers = trace.server_ids[start:stop].tolist()
            sizes = trace.sizes[start:stop].tolist()
            writer.writerows(
                [repr(times[i]), clients[i], objects[i], servers[i], sizes[i]]
                for i in range(stop - start)
            )


def read_trace_csv_columnar(path: str | Path) -> ColumnarTrace:
    """Load a trace CSV directly into columns.

    Reads files written by either trace writer; values are bit-identical
    to :func:`~repro.workload.trace.read_trace_csv` (both parsers produce
    the correctly rounded double for each time field).
    """
    with open(path, newline="") as f:
        # readline (not a csv.reader) so no read-ahead buffering steals
        # data rows from the numpy parser below.
        header_line = f.readline()
        header = next(csv.reader([header_line]), None) if header_line else None
        if header != _CSV_HEADER:
            raise ValueError(f"unexpected trace header: {header!r}")
        rows = np.loadtxt(f, delimiter=",", dtype=np.float64, ndmin=2)
    if rows.size == 0:
        return ColumnarTrace.concat([])
    if rows.shape[1] != len(_CSV_HEADER):
        raise ValueError(f"expected {len(_CSV_HEADER)} columns, got {rows.shape[1]}")
    return ColumnarTrace(
        rows[:, 0],
        rows[:, 1].astype(np.int64),
        rows[:, 2].astype(np.int64),
        rows[:, 3].astype(np.int64),
        rows[:, 4].astype(np.int64),
    )
