"""Object groups for group-based invalidation.

The channel coherency mode (see :mod:`repro.coherency`) follows mnot's
squid-channels design: instead of invalidating one object per event, an
origin publishes a *group* stale event and every subscribed cache drops
all of its copies of that group's members.  This module owns the
workload side of that design: a deterministic assignment of objects to
groups.

Group membership is Zipf-skewed, mirroring how real sites cluster
content (a few templates/sections own most pages): object ``i`` joins
group ``ZipfSampler(group_count, skew).sample(...)`` so low-numbered
groups are large and the tail groups are nearly singletons.  With
``skew=0`` the assignment is uniform.  ``per_object()`` builds the
degenerate one-object-per-group assignment used by the differential
oracle, where channel mode must reproduce in-band invalidation
bit-for-bit.

The assignment is a pure function of ``(num_objects, group_count,
skew, seed)``, so a serving cluster's manifest only needs to carry
those four numbers for clients and nodes to agree on membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class GroupAssignment:
    """Immutable object -> group map plus the reverse index.

    Build with :meth:`generate` (Zipf-skewed) or :meth:`per_object`
    (identity).  ``params`` round-trips the generating knobs so the
    assignment can be rebuilt remotely (e.g. from a serve manifest);
    it is ``None`` for hand-built assignments.
    """

    group_of_object: Tuple[int, ...]
    group_count: int
    params: dict | None = None
    _members: Dict[int, Tuple[int, ...]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.group_count < 1:
            raise ValueError("group_count must be >= 1")
        members: Dict[int, List[int]] = {}
        for obj, grp in enumerate(self.group_of_object):
            if not 0 <= grp < self.group_count:
                raise ValueError(
                    f"object {obj} mapped to group {grp}, outside "
                    f"[0, {self.group_count})"
                )
            members.setdefault(grp, []).append(obj)
        object.__setattr__(
            self,
            "_members",
            {grp: tuple(objs) for grp, objs in members.items()},
        )

    @property
    def num_objects(self) -> int:
        return len(self.group_of_object)

    def group_of(self, object_id: int) -> int:
        """Group id of one object."""
        return self.group_of_object[object_id]

    def members(self, group_id: int) -> Tuple[int, ...]:
        """All objects in one group (ascending ids; empty if none)."""
        if not 0 <= group_id < self.group_count:
            raise IndexError(f"group {group_id} out of range")
        return self._members.get(group_id, ())

    def group_sizes(self) -> Dict[int, int]:
        """Non-empty group sizes, for diagnostics."""
        return {grp: len(objs) for grp, objs in self._members.items()}

    @classmethod
    def generate(
        cls,
        num_objects: int,
        group_count: int,
        skew: float = 0.8,
        seed: int = 0,
    ) -> "GroupAssignment":
        """Deterministic Zipf-skewed membership.

        Each object independently draws its group from a
        ``ZipfSampler(group_count, skew)``; identical inputs always
        produce the identical assignment.
        """
        if num_objects < 1:
            raise ValueError("need at least one object")
        if group_count < 1:
            raise ValueError("group_count must be >= 1")
        if group_count > num_objects:
            raise ValueError(
                f"group_count ({group_count}) cannot exceed "
                f"num_objects ({num_objects})"
            )
        rng = np.random.default_rng(seed)
        sampler = ZipfSampler(group_count, skew)
        groups = sampler.sample(num_objects, rng)
        return cls(
            group_of_object=tuple(int(g) for g in groups),
            group_count=group_count,
            params={
                "num_objects": num_objects,
                "group_count": group_count,
                "skew": skew,
                "seed": seed,
            },
        )

    @classmethod
    def per_object(cls, num_objects: int) -> "GroupAssignment":
        """Identity assignment: object ``i`` is alone in group ``i``.

        Under this assignment one group event invalidates exactly one
        object, which is what makes the channel-vs-inband differential
        oracle well-defined.
        """
        if num_objects < 1:
            raise ValueError("need at least one object")
        return cls(
            group_of_object=tuple(range(num_objects)),
            group_count=num_objects,
            params={
                "num_objects": num_objects,
                "group_count": num_objects,
                "skew": 0.0,
                "seed": 0,
                "per_object": True,
            },
        )

    @classmethod
    def from_params(cls, params: dict) -> "GroupAssignment":
        """Rebuild an assignment from its ``params`` dict (manifest)."""
        if params.get("per_object"):
            return cls.per_object(int(params["num_objects"]))
        return cls.generate(
            num_objects=int(params["num_objects"]),
            group_count=int(params["group_count"]),
            skew=float(params.get("skew", 0.8)),
            seed=int(params.get("seed", 0)),
        )
