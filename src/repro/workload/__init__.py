"""Workload substrate: object catalogs, Zipf popularity, traces.

The paper drives its simulation with the (proprietary, now unavailable)
Boeing proxy traces of March 1999.  This package provides (a) a trace file
format with reader/writer so any real trace can be plugged in, and (b) a
synthetic generator reproducing the statistical properties the paper relies
on: Zipf-like object popularity [Breslau et al. 1999], heavy-tailed object
sizes, Poisson request arrivals and random client/server placement.
"""

from repro.workload.catalog import ObjectCatalog, SizeDistribution
from repro.workload.zipf import ZipfSampler
from repro.workload.trace import Trace, TraceRecord, read_trace_csv, write_trace_csv
from repro.workload.columnar import (
    ColumnarTrace,
    read_trace_csv_columnar,
    write_trace_csv_columnar,
)
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.groups import GroupAssignment
from repro.workload.scenarios import (
    inject_flash_crowd,
    inject_invalidation_storm,
    inject_scan,
)
from repro.workload.stats import fit_zipf, summarize_trace
from repro.workload.updates import (
    GroupUpdateEvent,
    UpdateEvent,
    expand_group_events,
    generate_group_update_events,
    generate_update_events,
)

__all__ = [
    "BoeingLikeTraceGenerator",
    "ColumnarTrace",
    "GroupAssignment",
    "GroupUpdateEvent",
    "ObjectCatalog",
    "SizeDistribution",
    "Trace",
    "TraceRecord",
    "UpdateEvent",
    "WorkloadConfig",
    "ZipfSampler",
    "expand_group_events",
    "fit_zipf",
    "generate_group_update_events",
    "generate_update_events",
    "inject_flash_crowd",
    "inject_invalidation_storm",
    "inject_scan",
    "read_trace_csv",
    "read_trace_csv_columnar",
    "summarize_trace",
    "write_trace_csv",
    "write_trace_csv_columnar",
]
