"""Non-stationary workload scenarios (stress extensions).

The paper's traces are replayed as-is; these helpers synthesize the two
classic adversarial patterns for caches so the schemes' adaptivity can be
stressed:

* :func:`inject_flash_crowd` -- a sudden burst of requests for one object
  over a time window (a breaking-news workload).  A good cascaded scheme
  reacts by replicating the object close to clients for the duration.
* :func:`inject_scan` -- a one-pass sequential sweep over many cold
  objects (a crawler).  Scans pollute recency-based caches; admission- or
  cost-aware schemes should shrug them off.
* :func:`inject_invalidation_storm` -- a burst of correlated *group*
  update events (a site-wide template push).  This is the coherency
  stress: in-band mode pays one inv broadcast per member object while
  channel mode pays one event per group (see :mod:`repro.coherency`).

All helpers return new, time-sorted sequences and leave inputs untouched.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.workload.catalog import ObjectCatalog
from repro.workload.trace import Trace, TraceRecord
from repro.workload.updates import GroupUpdateEvent


def _merge(base: Trace, extra: List[TraceRecord]) -> Trace:
    merged = sorted(
        list(base.records) + extra, key=lambda r: r.time
    )
    return Trace(merged)


def inject_flash_crowd(
    trace: Trace,
    catalog: ObjectCatalog,
    object_id: int,
    start: float,
    duration: float,
    extra_rate: float,
    num_clients: int,
    seed: int = 0,
) -> Trace:
    """Add a Poisson burst of requests for one object during a window."""
    if duration <= 0 or extra_rate <= 0:
        raise ValueError("duration and extra_rate must be positive")
    if num_clients < 1:
        raise ValueError("need at least one client")
    rng = np.random.default_rng(seed)
    count = int(rng.poisson(extra_rate * duration))
    times = np.sort(rng.random(count) * duration) + start
    clients = rng.integers(num_clients, size=count)
    size = catalog.size(object_id)
    server = catalog.server(object_id)
    extra = [
        TraceRecord(
            time=float(t),
            client_id=int(c),
            object_id=object_id,
            server_id=server,
            size=size,
        )
        for t, c in zip(times, clients)
    ]
    return _merge(trace, extra)


def inject_scan(
    trace: Trace,
    catalog: ObjectCatalog,
    start: float,
    inter_arrival: float,
    object_ids: List[int] | None = None,
    client_id: int = 0,
) -> Trace:
    """Add a one-pass sequential scan over objects starting at ``start``."""
    if inter_arrival <= 0:
        raise ValueError("inter_arrival must be positive")
    ids = object_ids if object_ids is not None else list(range(catalog.num_objects))
    extra = [
        TraceRecord(
            time=start + i * inter_arrival,
            client_id=client_id,
            object_id=oid,
            server_id=catalog.server(oid),
            size=catalog.size(oid),
        )
        for i, oid in enumerate(ids)
    ]
    return _merge(trace, extra)


def inject_invalidation_storm(
    updates: Sequence[GroupUpdateEvent],
    group_ids: Sequence[int],
    start: float,
    duration: float,
    storm_rate: float,
    seed: int = 0,
) -> List[GroupUpdateEvent]:
    """Add a Poisson burst of updates over correlated groups.

    During ``[start, start + duration]`` the listed ``group_ids`` are
    hammered with extra update events at aggregate rate ``storm_rate``
    (targets drawn uniformly over the listed groups -- the correlation
    *is* the small target set).  Returns a new time-sorted stream.
    """
    if duration <= 0 or storm_rate <= 0:
        raise ValueError("duration and storm_rate must be positive")
    if not group_ids:
        raise ValueError("need at least one target group")
    rng = np.random.default_rng(seed)
    count = int(rng.poisson(storm_rate * duration))
    times = np.sort(rng.random(count) * duration) + start
    targets = rng.integers(len(group_ids), size=count)
    extra = [
        GroupUpdateEvent(time=float(t), group_id=int(group_ids[g]))
        for t, g in zip(times, targets)
    ]
    return sorted(list(updates) + extra, key=lambda e: e.time)
