"""Object-update (invalidation) event streams.

The paper assumes cached objects are up to date, "e.g., by using a cache
coherency protocol [9] if necessary" (section 2), and notes web objects
are read-mostly [13].  This module provides the missing piece as an
extension: a stream of server-side update events that invalidate every
cached copy of an object, so the read-mostly assumption can be stressed
(see ``benchmarks/test_ablation_invalidation.py``).

Update targets follow a Zipf law like reads do (popular objects are also
updated more often), with an independently configurable skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class UpdateEvent:
    """One server-side object update at a point in time."""

    time: float
    object_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("update time must be non-negative")
        if self.object_id < 0:
            raise ValueError("object id must be non-negative")


def generate_update_events(
    num_objects: int,
    duration: float,
    update_rate: float,
    zipf_theta: float = 0.8,
    seed: int = 0,
) -> List[UpdateEvent]:
    """Poisson stream of updates over ``[0, duration]``.

    ``update_rate`` is the aggregate updates per unit time across all
    objects.  A rate of 0 returns an empty stream.
    """
    if num_objects < 1:
        raise ValueError("need at least one object")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if update_rate < 0:
        raise ValueError("update_rate must be non-negative")
    if update_rate == 0 or duration == 0:
        return []
    rng = np.random.default_rng(seed)
    count = int(rng.poisson(update_rate * duration))
    if count == 0:
        return []
    times = np.sort(rng.random(count) * duration)
    objects = ZipfSampler(num_objects, zipf_theta).sample(count, rng)
    return [
        UpdateEvent(time=float(t), object_id=int(o))
        for t, o in zip(times, objects)
    ]
