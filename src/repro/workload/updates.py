"""Object-update (invalidation) event streams.

The paper assumes cached objects are up to date, "e.g., by using a cache
coherency protocol [9] if necessary" (section 2), and notes web objects
are read-mostly [13].  This module provides the missing piece as an
extension: a stream of server-side update events that invalidate every
cached copy of an object, so the read-mostly assumption can be stressed
(see ``benchmarks/test_ablation_invalidation.py``).

Update targets follow a Zipf law like reads do (popular objects are also
updated more often), with an independently configurable skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.workload.groups import GroupAssignment
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class UpdateEvent:
    """One server-side object update at a point in time."""

    time: float
    object_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("update time must be non-negative")
        if self.object_id < 0:
            raise ValueError("object id must be non-negative")


def generate_update_events(
    num_objects: int,
    duration: float,
    update_rate: float,
    zipf_theta: float = 0.8,
    seed: int = 0,
) -> List[UpdateEvent]:
    """Poisson stream of updates over ``[0, duration]``.

    ``update_rate`` is the aggregate updates per unit time across all
    objects.  A rate of 0 returns an empty stream.
    """
    if num_objects < 1:
        raise ValueError("need at least one object")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if update_rate < 0:
        raise ValueError("update_rate must be non-negative")
    if update_rate == 0 or duration == 0:
        return []
    rng = np.random.default_rng(seed)
    count = int(rng.poisson(update_rate * duration))
    if count == 0:
        return []
    times = np.sort(rng.random(count) * duration)
    objects = ZipfSampler(num_objects, zipf_theta).sample(count, rng)
    return [
        UpdateEvent(time=float(t), object_id=int(o))
        for t, o in zip(times, objects)
    ]


@dataclass(frozen=True)
class GroupUpdateEvent:
    """One server-side *group* update: every member object goes stale.

    The group-based analogue of :class:`UpdateEvent`, following the
    squid-channels design where one published event invalidates many
    objects.  Membership lives in a
    :class:`~repro.workload.groups.GroupAssignment`, not on the event.
    """

    time: float
    group_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("update time must be non-negative")
        if self.group_id < 0:
            raise ValueError("group id must be non-negative")


def generate_group_update_events(
    groups: GroupAssignment,
    duration: float,
    update_rate: float,
    zipf_theta: float = 0.8,
    seed: int = 0,
) -> List[GroupUpdateEvent]:
    """Poisson stream of group updates over ``[0, duration]``.

    Identical draw structure to :func:`generate_update_events` (count,
    sorted uniform times, Zipf targets), just targeting group ranks
    instead of object ranks: popular groups are updated more often.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if update_rate < 0:
        raise ValueError("update_rate must be non-negative")
    if update_rate == 0 or duration == 0:
        return []
    rng = np.random.default_rng(seed)
    count = int(rng.poisson(update_rate * duration))
    if count == 0:
        return []
    times = np.sort(rng.random(count) * duration)
    targets = ZipfSampler(groups.group_count, zipf_theta).sample(count, rng)
    return [
        GroupUpdateEvent(time=float(t), group_id=int(g))
        for t, g in zip(times, targets)
    ]


def expand_group_events(
    events: Sequence[GroupUpdateEvent],
    groups: GroupAssignment,
) -> List[UpdateEvent]:
    """Flatten group events into per-object :class:`UpdateEvent`\\ s.

    This is how in-band mode consumes a group-targeted stream: each
    group event becomes one per-object event per member (same
    timestamp, ascending object id), so the existing engine loop and
    the inv-frame broadcast need no group awareness.
    """
    expanded: List[UpdateEvent] = []
    for event in events:
        for object_id in groups.members(event.group_id):
            expanded.append(UpdateEvent(time=event.time, object_id=object_id))
    return expanded
