"""Trace analysis: the statistics the paper's workload argument rests on.

Section 3.1 argues the Boeing requests follow a Zipf-like popularity law
and that subtrace extraction preserves relative frequencies.  When a user
plugs a *real* trace into the simulator, these helpers verify the same
properties hold: Zipf-parameter estimation by least-squares on the
log-log rank-frequency curve, size statistics, and request-rate
summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.trace import Trace


@dataclass(frozen=True)
class PopularityFit:
    """Zipf-like fit of a trace's rank-frequency curve."""

    theta: float
    r_squared: float
    num_objects: int
    top_decile_share: float


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate workload statistics for one trace."""

    requests: int
    unique_objects: int
    unique_clients: int
    duration: float
    mean_request_rate: float
    mean_size: float
    median_size: float
    total_bytes: int


def fit_zipf(trace: Trace, min_objects: int = 10) -> PopularityFit:
    """Estimate the Zipf parameter from a trace's rank-frequency curve.

    Fits ``log(count) = c - theta * log(rank)`` by least squares over all
    object ranks.  ``r_squared`` reports fit quality; a value near 1 means
    the trace is genuinely Zipf-like (the paper's assumption).
    """
    counts: dict[int, int] = {}
    for record in trace:
        counts[record.object_id] = counts.get(record.object_id, 0) + 1
    if len(counts) < min_objects:
        raise ValueError(
            f"need at least {min_objects} distinct objects to fit, "
            f"got {len(counts)}"
        )
    ranked = np.sort(np.array(list(counts.values()), dtype=np.float64))[::-1]
    ranks = np.arange(1, len(ranked) + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(ranked)
    slope, intercept = np.polyfit(x, y, 1)
    predictions = slope * x + intercept
    residual = np.sum((y - predictions) ** 2)
    total = np.sum((y - y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    top = max(1, len(ranked) // 10)
    return PopularityFit(
        theta=float(-slope),
        r_squared=float(r_squared),
        num_objects=len(ranked),
        top_decile_share=float(ranked[:top].sum() / ranked.sum()),
    )


def summarize_trace(trace: Trace) -> TraceStatistics:
    """Aggregate statistics for one trace."""
    if len(trace) == 0:
        raise ValueError("cannot summarize an empty trace")
    sizes = np.array([r.size for r in trace], dtype=np.float64)
    duration = trace.duration
    return TraceStatistics(
        requests=len(trace),
        unique_objects=trace.unique_objects(),
        unique_clients=len({r.client_id for r in trace}),
        duration=duration,
        mean_request_rate=(len(trace) / duration if duration > 0 else 0.0),
        mean_size=float(sizes.mean()),
        median_size=float(np.median(sizes)),
        total_bytes=int(sizes.sum()),
    )
