"""Zipf-like popularity sampling.

The paper (section 3.1, citing Breslau et al. [4]) assumes the access
frequency of the ``i``-th most popular object is proportional to
``1 / i**theta``.  :class:`ZipfSampler` draws object *ranks* from that law
using inverse-CDF sampling over the precomputed normalized weights, which
is exact (not an approximation) and fast via ``numpy.searchsorted``.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Sample ranks ``0 .. n-1`` with probability proportional to ``1/(rank+1)**theta``."""

    def __init__(self, num_items: int, theta: float) -> None:
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.num_items = num_items
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, num_items + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 0 <= rank < self.num_items:
            raise IndexError(f"rank {rank} out of range")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` ranks (dtype int64)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        u = rng.random(count)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)
