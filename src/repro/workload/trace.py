"""Trace records and file I/O.

A trace entry mirrors the fields of the Boeing proxy logs the paper used
(section 3.1): request time, client id, target object (URL id), the owning
origin server, and the object size.  Traces can be streamed from or
persisted to CSV, so real proxy logs can replace the synthetic generator
after a straightforward field mapping.
"""

from __future__ import annotations

import csv
from collections import Counter
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

_CSV_HEADER = ["time", "client_id", "object_id", "server_id", "size"]


@dataclass(frozen=True)
class TraceRecord:
    """One client request."""

    time: float
    client_id: int
    object_id: int
    server_id: int
    size: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("request time must be non-negative")
        if self.size <= 0:
            raise ValueError("object size must be positive")
        if min(self.client_id, self.object_id, self.server_id) < 0:
            raise ValueError("ids must be non-negative")


class Trace:
    """An in-memory, time-ordered sequence of trace records."""

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        self._records = list(records)
        for earlier, later in zip(self._records, self._records[1:]):
            if later.time < earlier.time:
                raise ValueError("trace records must be time-ordered")

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def records(self) -> List[TraceRecord]:
        """The underlying records (do not mutate)."""
        return self._records

    @property
    def duration(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    def split_warmup(self, warmup_fraction: float = 0.5) -> tuple[int, int]:
        """Index split per the paper: first half warms up, second half measures.

        Returns ``(warmup_end, total)`` -- records with index >=
        ``warmup_end`` are the measurement window.
        """
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        return int(len(self._records) * warmup_fraction), len(self._records)

    def total_requested_bytes(self, start: int = 0) -> int:
        # islice instead of a list-slice copy: summing the tail of a large
        # trace must not allocate a second tail.
        return sum(r.size for r in islice(self._records, start, None))

    def unique_objects(self) -> int:
        return len({r.object_id for r in self._records})

    def most_popular(self, top: int) -> List[int]:
        """Ids of the ``top`` most-requested objects, by request count.

        Ties break towards the smaller object id (count desc, id asc).
        """
        counts = Counter(r.object_id for r in self._records)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [object_id for object_id, _ in ranked[:top]]

    def filter_objects(self, keep: Iterable[int]) -> "Trace":
        """Subtrace containing only requests for the given objects.

        This is the paper's subtrace extraction (section 3.1): keeping only
        the most popular objects preserves relative access frequencies.
        """
        keep_set = set(keep)
        return Trace([r for r in self._records if r.object_id in keep_set])


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Persist a trace to CSV with a header row."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_CSV_HEADER)
        for r in trace:
            # repr round-trips floats exactly (shortest representation).
            writer.writerow(
                [repr(r.time), r.client_id, r.object_id, r.server_id, r.size]
            )


def read_trace_csv(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`write_trace_csv`."""
    records: List[TraceRecord] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(f"unexpected trace header: {header!r}")
        for row in reader:
            time, client_id, object_id, server_id, size = row
            records.append(
                TraceRecord(
                    time=float(time),
                    client_id=int(client_id),
                    object_id=int(object_id),
                    server_id=int(server_id),
                    size=int(size),
                )
            )
    return Trace(records)
