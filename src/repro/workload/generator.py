"""Synthetic Boeing-like trace generation.

The Boeing proxy traces are no longer distributable, so the reproduction
drives the simulator with a synthetic stream exhibiting the statistical
properties the paper's analysis rests on (section 3.1):

* object popularity follows a Zipf-like law with parameter ``theta``
  (Breslau et al. observed theta in roughly 0.64-0.83 for proxy traces;
  the default is 0.8);
* object sizes are heavy-tailed (see :class:`~repro.workload.catalog.SizeDistribution`);
* request inter-arrival times are exponential (Poisson arrivals);
* each request is issued by a client drawn uniformly from the client
  population, and the popularity ranking is shared across clients (the
  merged-proxy view the paper uses).

Because all caching schemes replay the *same* stream, relative scheme
performance -- the paper's stated objective -- is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.catalog import ObjectCatalog, SizeDistribution
from repro.workload.trace import Trace, TraceRecord
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic workload.

    The two optional realism knobs extend the plain independent-reference
    model (both default off, leaving the base generator byte-identical):

    * ``diurnal_amplitude`` modulates the arrival rate sinusoidally over
      ``diurnal_period`` seconds (a day-night load cycle), implemented by
      thinning a homogeneous Poisson stream.
    * ``temporal_locality`` is the probability that a request repeats one
      of the most recently referenced objects (an LRU-stack-style burst
      model) instead of drawing fresh from the Zipf law.
    """

    num_objects: int = 2000
    num_servers: int = 20
    num_clients: int = 200
    num_requests: int = 50_000
    zipf_theta: float = 0.8
    request_rate: float = 50.0
    size_distribution: SizeDistribution = SizeDistribution()
    seed: int = 0
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 86_400.0
    temporal_locality: float = 0.0
    locality_window: int = 64

    def __post_init__(self) -> None:
        if self.num_objects < 1 or self.num_servers < 1 or self.num_clients < 1:
            raise ValueError("population sizes must be >= 1")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if self.zipf_theta < 0:
            raise ValueError("zipf_theta must be non-negative")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if not 0 <= self.temporal_locality < 1:
            raise ValueError("temporal_locality must be in [0, 1)")
        if self.locality_window < 1:
            raise ValueError("locality_window must be >= 1")


class BoeingLikeTraceGenerator:
    """Generate synthetic traces per :class:`WorkloadConfig`.

    The generator first builds an :class:`ObjectCatalog` (sizes + owning
    servers), then maps Zipf *ranks* to object ids through a random
    permutation so that popularity is independent of id, server and size.
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self._catalog: ObjectCatalog | None = None

    @property
    def catalog(self) -> ObjectCatalog:
        """The object catalog backing generated traces (built on demand)."""
        if self._catalog is None:
            cfg = self.config
            self._catalog = ObjectCatalog.generate(
                num_objects=cfg.num_objects,
                num_servers=cfg.num_servers,
                size_distribution=cfg.size_distribution,
                seed=cfg.seed,
            )
        return self._catalog

    def generate(self) -> Trace:
        """Produce one trace; identical seeds produce identical traces."""
        cfg = self.config
        catalog = self.catalog
        rng = np.random.default_rng(cfg.seed + 1)

        rank_to_object = rng.permutation(cfg.num_objects)
        sampler = ZipfSampler(cfg.num_objects, cfg.zipf_theta)
        ranks = sampler.sample(cfg.num_requests, rng)
        object_ids = rank_to_object[ranks]
        if cfg.temporal_locality > 0:
            object_ids = self._apply_temporal_locality(object_ids, rng)

        inter_arrivals = rng.exponential(1.0 / cfg.request_rate, size=cfg.num_requests)
        times = np.cumsum(inter_arrivals)
        if cfg.diurnal_amplitude > 0:
            times = self._apply_diurnal_modulation(rng)
        clients = rng.integers(cfg.num_clients, size=cfg.num_requests)

        records = [
            TraceRecord(
                time=float(times[i]),
                client_id=int(clients[i]),
                object_id=int(object_ids[i]),
                server_id=catalog.server(int(object_ids[i])),
                size=catalog.size(int(object_ids[i])),
            )
            for i in range(cfg.num_requests)
        ]
        return Trace(records)

    def _apply_temporal_locality(
        self, object_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Rewrite a fraction of draws to repeat recently seen objects.

        With probability ``temporal_locality`` a request references one of
        the last ``locality_window`` *distinct positions* uniformly -- the
        LRU-stack burst model layered over the Zipf base draw.
        """
        cfg = self.config
        result = object_ids.copy()
        repeat = rng.random(len(result)) < cfg.temporal_locality
        offsets = rng.integers(1, cfg.locality_window + 1, size=len(result))
        for i in range(len(result)):
            if repeat[i] and i > 0:
                result[i] = result[max(0, i - int(offsets[i]))]
        return result

    def _apply_diurnal_modulation(self, rng: np.random.Generator) -> np.ndarray:
        """Arrival times of an inhomogeneous Poisson process by thinning.

        Intensity ``rate * (1 + A * sin(2 pi t / period))``; candidates
        arrive at the peak rate and are accepted with probability
        ``intensity(t) / peak``.  Exactly ``num_requests`` accepted times
        are returned.
        """
        cfg = self.config
        peak = cfg.request_rate * (1 + cfg.diurnal_amplitude)
        accepted: list[np.ndarray] = []
        total = 0
        t = 0.0
        while total < cfg.num_requests:
            batch = max(1024, cfg.num_requests)
            gaps = rng.exponential(1.0 / peak, size=batch)
            candidates = t + np.cumsum(gaps)
            t = float(candidates[-1])
            intensity = cfg.request_rate * (
                1 + cfg.diurnal_amplitude
                * np.sin(2 * np.pi * candidates / cfg.diurnal_period)
            )
            keep = candidates[rng.random(batch) < intensity / peak]
            accepted.append(keep)
            total += len(keep)
        times = np.concatenate(accepted)[: cfg.num_requests]
        return times
