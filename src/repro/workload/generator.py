"""Synthetic Boeing-like trace generation.

The Boeing proxy traces are no longer distributable, so the reproduction
drives the simulator with a synthetic stream exhibiting the statistical
properties the paper's analysis rests on (section 3.1):

* object popularity follows a Zipf-like law with parameter ``theta``
  (Breslau et al. observed theta in roughly 0.64-0.83 for proxy traces;
  the default is 0.8);
* object sizes are heavy-tailed (see :class:`~repro.workload.catalog.SizeDistribution`);
* request inter-arrival times are exponential (Poisson arrivals);
* each request is issued by a client drawn uniformly from the client
  population, and the popularity ranking is shared across clients (the
  merged-proxy view the paper uses).

Because all caching schemes replay the *same* stream, relative scheme
performance -- the paper's stated objective -- is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Iterator

from repro.workload.catalog import ObjectCatalog, SizeDistribution
from repro.workload.columnar import ColumnarTrace
from repro.workload.trace import Trace, TraceRecord
from repro.workload.zipf import ZipfSampler

# Salt mixed into the streaming generator's seed sequence, fixed forever:
# the chunked stream is its own canonical workload (see `stream`), and its
# determinism contract is (seed, salt) -> stream, independent of chunking.
_STREAM_SALT = 0x57A3

# Candidate batch of the streaming diurnal thinner.  Deliberately fixed
# (not tied to chunk_records) so the accept/reject RNG consumption -- and
# therefore the emitted stream -- is invariant to the chunk size.
_THIN_BATCH = 4096


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic workload.

    The two optional realism knobs extend the plain independent-reference
    model (both default off, leaving the base generator byte-identical):

    * ``diurnal_amplitude`` modulates the arrival rate sinusoidally over
      ``diurnal_period`` seconds (a day-night load cycle), implemented by
      thinning a homogeneous Poisson stream.
    * ``temporal_locality`` is the probability that a request repeats one
      of the most recently referenced objects (an LRU-stack-style burst
      model) instead of drawing fresh from the Zipf law.
    """

    num_objects: int = 2000
    num_servers: int = 20
    num_clients: int = 200
    num_requests: int = 50_000
    zipf_theta: float = 0.8
    request_rate: float = 50.0
    size_distribution: SizeDistribution = SizeDistribution()
    seed: int = 0
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 86_400.0
    temporal_locality: float = 0.0
    locality_window: int = 64

    def __post_init__(self) -> None:
        if self.num_objects < 1 or self.num_servers < 1 or self.num_clients < 1:
            raise ValueError("population sizes must be >= 1")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if self.zipf_theta < 0:
            raise ValueError("zipf_theta must be non-negative")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if not 0 <= self.temporal_locality < 1:
            raise ValueError("temporal_locality must be in [0, 1)")
        if self.locality_window < 1:
            raise ValueError("locality_window must be >= 1")


class BoeingLikeTraceGenerator:
    """Generate synthetic traces per :class:`WorkloadConfig`.

    The generator first builds an :class:`ObjectCatalog` (sizes + owning
    servers), then maps Zipf *ranks* to object ids through a random
    permutation so that popularity is independent of id, server and size.
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self._catalog: ObjectCatalog | None = None

    @property
    def catalog(self) -> ObjectCatalog:
        """The object catalog backing generated traces (built on demand)."""
        if self._catalog is None:
            cfg = self.config
            self._catalog = ObjectCatalog.generate(
                num_objects=cfg.num_objects,
                num_servers=cfg.num_servers,
                size_distribution=cfg.size_distribution,
                seed=cfg.seed,
            )
        return self._catalog

    def _draw_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw the (times, clients, object_ids) columns of one trace.

        Single source of the RNG consumption order shared by
        :meth:`generate` and :meth:`generate_columnar`, so the two are
        bit-identical by construction.  The diurnal branch draws its
        arrival times *instead of* the homogeneous exponential stream --
        drawing both and discarding one (the pre-fix behavior) burned RNG
        values in the hot trace-build path and shifted every draw after it.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)

        rank_to_object = rng.permutation(cfg.num_objects)
        sampler = ZipfSampler(cfg.num_objects, cfg.zipf_theta)
        ranks = sampler.sample(cfg.num_requests, rng)
        object_ids = rank_to_object[ranks]
        if cfg.temporal_locality > 0:
            object_ids = self._apply_temporal_locality(object_ids, rng)

        if cfg.diurnal_amplitude > 0:
            times = self._apply_diurnal_modulation(rng)
        else:
            inter_arrivals = rng.exponential(
                1.0 / cfg.request_rate, size=cfg.num_requests
            )
            times = np.cumsum(inter_arrivals)
        clients = rng.integers(cfg.num_clients, size=cfg.num_requests)
        return times, clients, object_ids

    def generate(self) -> Trace:
        """Produce one trace; identical seeds produce identical traces."""
        catalog = self.catalog
        times, clients, object_ids = self._draw_columns()
        records = [
            TraceRecord(
                time=float(times[i]),
                client_id=int(clients[i]),
                object_id=int(object_ids[i]),
                server_id=catalog.server(int(object_ids[i])),
                size=catalog.size(int(object_ids[i])),
            )
            for i in range(self.config.num_requests)
        ]
        return Trace(records)

    def generate_columnar(self) -> ColumnarTrace:
        """Produce the same trace as :meth:`generate`, as columns.

        Bit-identical to ``ColumnarTrace.from_trace(self.generate())``
        (same RNG stream, same values) but built entirely from array ops --
        no per-record dataclasses -- so trace construction is itself part
        of the fast path.
        """
        catalog = self.catalog
        times, clients, object_ids = self._draw_columns()
        object_ids = object_ids.astype(np.int64, copy=False)
        return ColumnarTrace(
            times=times,
            client_ids=clients,
            object_ids=object_ids,
            server_ids=catalog.servers[object_ids],
            sizes=catalog.sizes[object_ids],
        )

    def _apply_temporal_locality(
        self, object_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Rewrite a fraction of draws to repeat recently seen objects.

        With probability ``temporal_locality`` a request references one of
        the last ``locality_window`` *distinct positions* uniformly -- the
        LRU-stack burst model layered over the Zipf base draw.
        """
        cfg = self.config
        result = object_ids.copy()
        repeat = rng.random(len(result)) < cfg.temporal_locality
        offsets = rng.integers(1, cfg.locality_window + 1, size=len(result))
        for i in range(len(result)):
            if repeat[i] and i > 0:
                result[i] = result[max(0, i - int(offsets[i]))]
        return result

    def _apply_diurnal_modulation(self, rng: np.random.Generator) -> np.ndarray:
        """Arrival times of an inhomogeneous Poisson process by thinning.

        Intensity ``rate * (1 + A * sin(2 pi t / period))``; candidates
        arrive at the peak rate and are accepted with probability
        ``intensity(t) / peak``.  Exactly ``num_requests`` accepted times
        are returned.
        """
        cfg = self.config
        peak = cfg.request_rate * (1 + cfg.diurnal_amplitude)
        accepted: list[np.ndarray] = []
        total = 0
        t = 0.0
        while total < cfg.num_requests:
            batch = max(1024, cfg.num_requests)
            gaps = rng.exponential(1.0 / peak, size=batch)
            candidates = t + np.cumsum(gaps)
            t = float(candidates[-1])
            intensity = cfg.request_rate * (
                1 + cfg.diurnal_amplitude
                * np.sin(2 * np.pi * candidates / cfg.diurnal_period)
            )
            keep = candidates[rng.random(batch) < intensity / peak]
            accepted.append(keep)
            total += len(keep)
        times = np.concatenate(accepted)[: cfg.num_requests]
        return times

    # -- streaming -------------------------------------------------------------

    def stream(self, chunk_records: int = 65_536) -> Iterator[ColumnarTrace]:
        """Yield the workload as :class:`ColumnarTrace` chunks, O(chunk) memory.

        For billion-request runs the full trace cannot be materialized;
        this generator produces consecutive chunks of at most
        ``chunk_records`` requests whose concatenation is one valid trace
        of ``num_requests`` requests with the configured statistical
        properties.

        Determinism contract: the emitted stream is a function of the
        workload config alone -- **invariant to ``chunk_records``** --
        because every drawn field consumes its own spawned RNG stream
        (numpy's distribution generators are sequential per value, so
        chunked draws concatenate exactly).  The stream is a *different*
        (equally canonical) realization than :meth:`generate`, whose
        single-stream whole-array draw order cannot be reproduced
        incrementally; ``generate_columnar`` is the bit-identical
        columnar twin of :meth:`generate`, ``stream`` is the scalable
        one.
        """
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        cfg = self.config
        catalog = self.catalog
        seq = np.random.SeedSequence((cfg.seed + 1, _STREAM_SALT))
        r_perm, r_rank, r_repeat, r_offset, r_time, r_client = (
            np.random.default_rng(s) for s in seq.spawn(6)
        )
        rank_to_object = r_perm.permutation(cfg.num_objects)
        sampler = ZipfSampler(cfg.num_objects, cfg.zipf_theta)
        window = cfg.locality_window
        tail: list[int] = []  # last `window` emitted ids (locality carry-over)
        arrivals = (
            _DiurnalThinner(cfg, r_time)
            if cfg.diurnal_amplitude > 0
            else _HomogeneousArrivals(cfg, r_time)
        )
        emitted = 0
        while emitted < cfg.num_requests:
            n = min(chunk_records, cfg.num_requests - emitted)
            ranks = sampler.sample(n, r_rank)
            object_ids = rank_to_object[ranks].astype(np.int64, copy=False)
            if cfg.temporal_locality > 0:
                repeat = r_repeat.random(n) < cfg.temporal_locality
                offsets = r_offset.integers(1, window + 1, size=n)
                ids = object_ids.tolist()
                for i in range(n):
                    if repeat[i] and emitted + i > 0:
                        # Global reference index max(0, g - offset), as in
                        # _apply_temporal_locality; negative local indices
                        # land in the previous chunks' tail (`tail` stays
                        # frozen while this chunk is rewritten).
                        j = max(0, emitted + i - int(offsets[i])) - emitted
                        ids[i] = ids[j] if j >= 0 else tail[j]
                tail = (tail + ids)[-window:]
                object_ids = np.array(ids, dtype=np.int64)
            times = arrivals.take(n)
            clients = r_client.integers(cfg.num_clients, size=n)
            yield ColumnarTrace(
                times=times,
                client_ids=clients,
                object_ids=object_ids,
                server_ids=catalog.servers[object_ids],
                sizes=catalog.sizes[object_ids],
                validate=False,
            )
            emitted += n


class _HomogeneousArrivals:
    """Incremental Poisson arrival times for the streaming path.

    Gaps are drawn and cumulative-summed in fixed ``_THIN_BATCH`` batches
    (never per requested chunk), so the floating-point summation pattern
    -- and therefore every emitted time, bit for bit -- is invariant to
    the consumer's chunk size.
    """

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator) -> None:
        self._scale = 1.0 / config.request_rate
        self._rng = rng
        self._t = 0.0
        self._buffer = np.empty(0, dtype=np.float64)

    def take(self, count: int) -> np.ndarray:
        while len(self._buffer) < count:
            gaps = self._rng.exponential(self._scale, size=_THIN_BATCH)
            times = self._t + np.cumsum(gaps)
            self._t = float(times[-1])
            self._buffer = np.concatenate([self._buffer, times])
        out = self._buffer[:count].copy()
        self._buffer = self._buffer[count:]
        return out


class _DiurnalThinner:
    """Incremental inhomogeneous-Poisson thinning for the streaming path.

    Same accept/reject construction as
    :meth:`BoeingLikeTraceGenerator._apply_diurnal_modulation`, but
    candidates are drawn in fixed-size batches with accepted times carried
    over between ``take`` calls, so memory stays O(batch) and the output
    does not depend on how many times are requested at once.
    """

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator) -> None:
        self._cfg = config
        self._rng = rng
        self._peak = config.request_rate * (1 + config.diurnal_amplitude)
        self._t = 0.0
        self._buffer = np.empty(0, dtype=np.float64)

    def take(self, count: int) -> np.ndarray:
        cfg = self._cfg
        while len(self._buffer) < count:
            gaps = self._rng.exponential(1.0 / self._peak, size=_THIN_BATCH)
            candidates = self._t + np.cumsum(gaps)
            self._t = float(candidates[-1])
            intensity = cfg.request_rate * (
                1 + cfg.diurnal_amplitude
                * np.sin(2 * np.pi * candidates / cfg.diurnal_period)
            )
            keep = candidates[self._rng.random(_THIN_BATCH) < intensity / self._peak]
            self._buffer = np.concatenate([self._buffer, keep])
        out = self._buffer[:count].copy()
        self._buffer = self._buffer[count:]
        return out
