"""cascade-repro: coordinated management of cascaded caches.

A reproduction of Tang & Chanson, *Coordinated Management of Cascaded
Caches for Efficient Content Distribution* (ICDE 2003): the k-optimization
dynamic program for object placement, the coordinated placement +
replacement scheme, the LRU / MODULO / LNC-R baselines, and a trace-driven
simulator for en-route and hierarchical caching architectures.

Quickstart::

    from repro import (
        STANDARD_SCALE, SimulationConfig, build_architecture, run_single,
    )

    preset = STANDARD_SCALE
    generator = preset.generator()
    trace = generator.generate()
    arch = build_architecture("en-route", preset.workload, seed=1)
    point = run_single(
        arch, trace, generator.catalog, "coordinated",
        SimulationConfig(relative_cache_size=0.01),
    )
    print(point.summary.mean_latency)
"""

from repro.analysis.che import expected_byte_hit_ratio, lru_hit_ratios
from repro.analysis.static_plan import greedy_static_plan
from repro.analysis.tree_placement import (
    TreePlacementProblem,
    optimal_tree_placement,
)
from repro.core.coordinated import CoordinatedScheme
from repro.core.placement import (
    PlacementProblem,
    PlacementSolution,
    brute_force_placement,
    enforce_monotone_frequencies,
    solve_placement,
)
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import (
    DEFAULT_CACHE_SIZES,
    PAPER_SCALE,
    SMALL_SCALE,
    STANDARD_SCALE,
    ExperimentPreset,
    build_architecture,
)
from repro.experiments.sweeps import (
    SweepPoint,
    run_cache_size_sweep,
    run_modulo_radius_sweep,
    run_single,
)
from repro.experiments.charts import render_ascii_chart, render_figure
from repro.experiments.tables import (
    figure_series,
    format_sweep_table,
    format_table1,
    topology_characteristics,
)
from repro.experiments.compare import compare_points
from repro.experiments.results_io import (
    load_checkpoint,
    load_points_json,
    load_run_records,
    save_points_json,
    save_run_records,
)
from repro.experiments.robustness import RobustnessResult, run_robustness
from repro.experiments.runner import (
    GridResult,
    GridTask,
    ProgressEvent,
    RunRecord,
    run_grid,
)
from repro.metrics.collector import MetricsSummary
from repro.metrics.replication import (
    copies_per_object,
    density_by_popularity,
    occupancy_by_level,
)
from repro.schemes import LNCRScheme, LRUEverywhereScheme, ModuloScheme
from repro.sim.architecture import (
    Architecture,
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "BoeingLikeTraceGenerator",
    "CoordinatedScheme",
    "DEFAULT_CACHE_SIZES",
    "ExperimentPreset",
    "GridResult",
    "GridTask",
    "LNCRScheme",
    "LRUEverywhereScheme",
    "LatencyCostModel",
    "MetricsSummary",
    "ModuloScheme",
    "PAPER_SCALE",
    "PlacementProblem",
    "PlacementSolution",
    "ProgressEvent",
    "RunRecord",
    "SCHEME_NAMES",
    "SMALL_SCALE",
    "STANDARD_SCALE",
    "SimulationConfig",
    "SimulationEngine",
    "RobustnessResult",
    "SimulationResult",
    "SweepPoint",
    "TreePlacementProblem",
    "WorkloadConfig",
    "brute_force_placement",
    "build_architecture",
    "compare_points",
    "copies_per_object",
    "density_by_popularity",
    "expected_byte_hit_ratio",
    "greedy_static_plan",
    "load_checkpoint",
    "load_points_json",
    "load_run_records",
    "lru_hit_ratios",
    "occupancy_by_level",
    "optimal_tree_placement",
    "run_grid",
    "run_robustness",
    "save_points_json",
    "save_run_records",
    "build_enroute_architecture",
    "build_hierarchical_architecture",
    "build_scheme",
    "enforce_monotone_frequencies",
    "figure_series",
    "format_sweep_table",
    "format_table1",
    "render_ascii_chart",
    "render_figure",
    "run_cache_size_sweep",
    "run_modulo_radius_sweep",
    "run_single",
    "solve_placement",
    "topology_characteristics",
]
