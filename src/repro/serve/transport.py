"""Pluggable node-to-node transports for the live cluster.

A :class:`Transport` hosts node servers and carries request/reply frames
between them.  Two implementations:

* :class:`InProcessTransport` -- every node lives in the calling event
  loop; ``call`` runs the destination handler directly, but still pushes
  each message through the real frame codec, so the serialization path
  is identical to the wire.  Deterministic (no sockets, no scheduling
  races under sequential drivers), which is what the simulator-vs-
  cluster differential oracle runs on.
* :class:`TCPTransport` -- every node listens on its own TCP socket and
  frames flow over loopback or a real network.  Connections are pooled
  per destination; a pooled connection is only ever used by one in-
  flight call at a time, so concurrent requests never interleave frames.

Handlers are ``async (dict) -> dict``.  A handler exception is converted
into an ``error`` frame by the hosting side and surfaces at the caller
as :class:`~repro.serve.protocol.RemoteProtocolError` -- identically on
both transports.
"""

from __future__ import annotations

import abc
import asyncio
import contextlib
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.serve.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    CallTimeout,
    NodeUnreachable,
    ProtocolError,
    decode_payload,
    encode_frame,
    error_message,
    raise_if_error,
    read_message,
    write_message,
)

Handler = Callable[[dict], Awaitable[dict]]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with (seeded) jitter for retryable RPC failures.

    ``attempts`` bounds the *total* number of tries; the delay before try
    ``k+1`` is ``min(backoff_max, backoff_base * backoff_multiplier**k)``
    shrunk by up to ``jitter`` (a fraction in ``[0, 1]``) drawn from the
    caller's RNG -- seeded RNGs make the whole schedule reproducible,
    which is what lets the chaos suite assert identical retry counters
    across runs.
    """

    attempts: int = 3
    backoff_base: float = 0.01
    backoff_multiplier: float = 2.0
    backoff_max: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier**attempt,
        )
        if self.jitter <= 0 or rng is None:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """A count-based per-upstream circuit breaker.

    Counts *logical* call failures (retries exhausted), not individual
    attempts.  After ``failure_threshold`` consecutive failures the
    breaker opens and the next ``cooldown_calls`` calls are rejected
    without touching the wire; then one half-open probe is admitted --
    success closes the breaker, failure re-opens it.  Deliberately
    count-based rather than clock-based so a seeded sequential replay
    trips and recovers identically on every run.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self, failure_threshold: int = 3, cooldown_calls: int = 8
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_calls < 1:
            raise ValueError("cooldown_calls must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._rejections_left = 0

    def allow(self) -> bool:
        """Whether the next call may go out (may admit a half-open probe)."""
        if self.state == self.OPEN:
            if self._rejections_left > 0:
                self._rejections_left -= 1
                return False
            self.state = self.HALF_OPEN
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record one exhausted call; returns True when the breaker trips."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self._rejections_left = self.cooldown_calls
            self.trips += 1
            return True
        return False


class Transport(abc.ABC):
    """Hosts node servers and carries framed calls between them."""

    @abc.abstractmethod
    async def start_node(self, node_id: int, handler: Handler):
        """Start serving one node; returns its published address."""

    @abc.abstractmethod
    async def call(self, address, message: dict) -> dict:
        """Send one message to an address and await the reply.

        Raises :class:`ProtocolError` on framing violations and
        :class:`~repro.serve.protocol.RemoteProtocolError` when the peer
        answers with an ``error`` frame.
        """

    @abc.abstractmethod
    async def close(self) -> None:
        """Stop all node servers and drop any pooled connections."""


async def _dispatch(handler: Handler, message: dict) -> dict:
    """Run a handler, converting failures into ``error`` frames."""
    try:
        return await handler(message)
    except Exception as error:  # noqa: BLE001 - the frame carries the type
        return error_message(error)


class InProcessTransport(Transport):
    """Deterministic single-process transport used by tests and examples.

    ``call_timeout`` bounds one dispatch; it is meant for single-hop
    handlers (a timeout cancels the handler mid-flight, which for a
    nested walk would abandon in-flight upstream calls), so cluster runs
    leave it ``None`` and let injected faults model lost frames instead.
    """

    def __init__(self, call_timeout: Optional[float] = None) -> None:
        self._handlers: Dict[int, Handler] = {}
        self.call_timeout = call_timeout

    async def start_node(self, node_id: int, handler: Handler) -> int:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already started")
        self._handlers[node_id] = handler
        return node_id

    async def call(self, address: int, message: dict) -> dict:
        handler = self._handlers.get(address)
        if handler is None:
            raise NodeUnreachable(f"no node at in-process address {address!r}")
        # Round-trip through the real codec so in-process runs exercise
        # exactly the bytes the TCP transport would put on the wire.
        request = decode_payload(encode_frame(message)[HEADER_BYTES:])
        if self.call_timeout is None:
            reply = await _dispatch(handler, request)
        else:
            try:
                reply = await asyncio.wait_for(
                    _dispatch(handler, request), timeout=self.call_timeout
                )
            except asyncio.TimeoutError:
                raise CallTimeout(
                    f"in-process call to node {address} exceeded "
                    f"{self.call_timeout}s"
                ) from None
        return raise_if_error(
            decode_payload(encode_frame(reply)[HEADER_BYTES:])
        )

    async def close(self) -> None:
        self._handlers.clear()


class TCPTransport(Transport):
    """One listening socket per node; framed request/reply over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        call_timeout: Optional[float] = None,
        drain_timeout: float = 5.0,
        max_connections_per_address: Optional[int] = None,
    ) -> None:
        """``call_timeout`` is the per-RPC deadline (``None`` = wait forever);
        ``drain_timeout`` bounds how long :meth:`close` waits for server-side
        connection loops to exit; ``max_connections_per_address`` caps how
        many connections this transport holds toward one destination
        (``None`` = one per concurrent call) -- excess callers queue for a
        slot, bounding the process's file descriptors under heavy open-loop
        load."""
        if call_timeout is not None and call_timeout <= 0:
            raise ValueError("call_timeout must be positive")
        if drain_timeout <= 0:
            raise ValueError("drain_timeout must be positive")
        if (
            max_connections_per_address is not None
            and max_connections_per_address < 1
        ):
            raise ValueError("max_connections_per_address must be at least 1")
        self.host = host
        self.max_frame_bytes = max_frame_bytes
        self.call_timeout = call_timeout
        self.drain_timeout = drain_timeout
        self.max_connections_per_address = max_connections_per_address
        self._servers: List[asyncio.base_events.Server] = []
        self._pools: Dict[
            Tuple[str, int],
            List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]],
        ] = {}
        self._conn_slots: Dict[Tuple[str, int], asyncio.Semaphore] = {}
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._closed = False

    async def start_node(
        self, node_id: int, handler: Handler, port: int = 0
    ) -> Tuple[str, int]:
        """Listen for this node; ``port=0`` lets the OS assign one."""
        server = await asyncio.start_server(
            lambda r, w: self._serve_connection(handler, r, w),
            host=self.host,
            port=port,
        )
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _serve_connection(
        self,
        handler: Handler,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Per-connection server loop: read frame, dispatch, reply.

        A framing violation from the peer is answered with one ``error``
        frame and the connection is closed -- the stream can no longer
        be trusted past a corrupt frame.
        """
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    message = await read_message(reader, self.max_frame_bytes)
                except ProtocolError as error:
                    with contextlib.suppress(Exception):
                        await write_message(writer, error_message(error))
                    return
                if message is None:
                    return  # clean EOF at a frame boundary
                reply = await _dispatch(handler, message)
                await write_message(writer, reply)
        except ConnectionError:
            pass
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _connection(
        self, address: Tuple[str, int]
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._pools.get(address)
        if pool:
            return pool.pop()
        host, port = address
        try:
            return await asyncio.open_connection(host, port)
        except OSError as error:
            raise NodeUnreachable(
                f"cannot connect to {host}:{port}: {error!r}"
            ) from error

    async def _round_trip(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        message: dict,
    ) -> Optional[dict]:
        await write_message(writer, message)
        return await read_message(reader, self.max_frame_bytes)

    async def call(self, address, message: dict) -> dict:
        address = (address[0], address[1])
        if self.max_connections_per_address is None:
            return await self._call_on_connection(address, message)
        slot = self._conn_slots.get(address)
        if slot is None:
            slot = asyncio.Semaphore(self.max_connections_per_address)
            self._conn_slots[address] = slot
        async with slot:
            return await self._call_on_connection(address, message)

    async def _call_on_connection(
        self, address: Tuple[str, int], message: dict
    ) -> dict:
        reader, writer = await self._connection(address)
        try:
            if self.call_timeout is None:
                reply = await self._round_trip(reader, writer, message)
            else:
                reply = await asyncio.wait_for(
                    self._round_trip(reader, writer, message),
                    timeout=self.call_timeout,
                )
        except asyncio.TimeoutError:
            # The connection may still carry a late reply; never pool it.
            writer.close()
            raise CallTimeout(
                f"call to {address[0]}:{address[1]} exceeded "
                f"{self.call_timeout}s"
            ) from None
        except ProtocolError:
            writer.close()
            raise
        except ConnectionError as error:
            writer.close()
            raise ProtocolError(
                f"connection to {address[0]}:{address[1]} failed "
                f"mid-call: {error!r}"
            ) from error
        if reply is None:
            writer.close()
            raise ProtocolError(
                f"peer {address[0]}:{address[1]} closed the connection "
                "before replying"
            )
        if self._closed:
            writer.close()
        else:
            self._pools.setdefault(address, []).append((reader, writer))
        return raise_if_error(reply)

    async def close(self) -> None:
        self._closed = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._servers.clear()
        for pool in self._pools.values():
            for _, writer in pool:
                writer.close()
        self._pools.clear()
        # Drain server-side connection loops: closing their writers feeds
        # EOF into the pending reads, so every loop exits cleanly before
        # the event loop shuts down (no dangling tasks to cancel).
        for writer in list(self._conn_writers):
            writer.close()
        tasks = [t for t in self._conn_tasks if not t.done()]
        if tasks:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*tasks, return_exceptions=True),
                    timeout=self.drain_timeout,
                )
        # Anything still running past the drain deadline is a handler
        # stuck mid-dispatch (e.g. asleep); cancel it so close() never
        # leaves dangling tasks behind in the event loop.
        stragglers = [t for t in self._conn_tasks if not t.done()]
        for task in stragglers:
            task.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)
        self._conn_slots.clear()
