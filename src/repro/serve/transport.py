"""Pluggable node-to-node transports for the live cluster.

A :class:`Transport` hosts node servers and carries request/reply frames
between them.  Two implementations:

* :class:`InProcessTransport` -- every node lives in the calling event
  loop; ``call`` runs the destination handler directly, but still pushes
  each message through the real frame codec, so the serialization path
  is identical to the wire.  Deterministic (no sockets, no scheduling
  races under sequential drivers), which is what the simulator-vs-
  cluster differential oracle runs on.
* :class:`TCPTransport` -- every node listens on its own TCP socket and
  frames flow over loopback or a real network.  Connections are pooled
  per destination; a pooled connection is only ever used by one in-
  flight call at a time, so concurrent requests never interleave frames.

Handlers are ``async (dict) -> dict``.  A handler exception is converted
into an ``error`` frame by the hosting side and surfaces at the caller
as :class:`~repro.serve.protocol.RemoteProtocolError` -- identically on
both transports.
"""

from __future__ import annotations

import abc
import asyncio
import contextlib
from typing import Awaitable, Callable, Dict, List, Tuple

from repro.serve.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_frame,
    error_message,
    raise_if_error,
    read_message,
    write_message,
)

Handler = Callable[[dict], Awaitable[dict]]


class Transport(abc.ABC):
    """Hosts node servers and carries framed calls between them."""

    @abc.abstractmethod
    async def start_node(self, node_id: int, handler: Handler):
        """Start serving one node; returns its published address."""

    @abc.abstractmethod
    async def call(self, address, message: dict) -> dict:
        """Send one message to an address and await the reply.

        Raises :class:`ProtocolError` on framing violations and
        :class:`~repro.serve.protocol.RemoteProtocolError` when the peer
        answers with an ``error`` frame.
        """

    @abc.abstractmethod
    async def close(self) -> None:
        """Stop all node servers and drop any pooled connections."""


async def _dispatch(handler: Handler, message: dict) -> dict:
    """Run a handler, converting failures into ``error`` frames."""
    try:
        return await handler(message)
    except Exception as error:  # noqa: BLE001 - the frame carries the type
        return error_message(error)


class InProcessTransport(Transport):
    """Deterministic single-process transport used by tests and examples."""

    def __init__(self) -> None:
        self._handlers: Dict[int, Handler] = {}

    async def start_node(self, node_id: int, handler: Handler) -> int:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already started")
        self._handlers[node_id] = handler
        return node_id

    async def call(self, address: int, message: dict) -> dict:
        handler = self._handlers.get(address)
        if handler is None:
            raise ProtocolError(f"no node at in-process address {address!r}")
        # Round-trip through the real codec so in-process runs exercise
        # exactly the bytes the TCP transport would put on the wire.
        request = decode_payload(encode_frame(message)[HEADER_BYTES:])
        reply = await _dispatch(handler, request)
        return raise_if_error(
            decode_payload(encode_frame(reply)[HEADER_BYTES:])
        )

    async def close(self) -> None:
        self._handlers.clear()


class TCPTransport(Transport):
    """One listening socket per node; framed request/reply over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.max_frame_bytes = max_frame_bytes
        self._servers: List[asyncio.base_events.Server] = []
        self._pools: Dict[
            Tuple[str, int],
            List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]],
        ] = {}
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._closed = False

    async def start_node(
        self, node_id: int, handler: Handler, port: int = 0
    ) -> Tuple[str, int]:
        """Listen for this node; ``port=0`` lets the OS assign one."""
        server = await asyncio.start_server(
            lambda r, w: self._serve_connection(handler, r, w),
            host=self.host,
            port=port,
        )
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _serve_connection(
        self,
        handler: Handler,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Per-connection server loop: read frame, dispatch, reply.

        A framing violation from the peer is answered with one ``error``
        frame and the connection is closed -- the stream can no longer
        be trusted past a corrupt frame.
        """
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    message = await read_message(reader, self.max_frame_bytes)
                except ProtocolError as error:
                    with contextlib.suppress(Exception):
                        await write_message(writer, error_message(error))
                    return
                if message is None:
                    return  # clean EOF at a frame boundary
                reply = await _dispatch(handler, message)
                await write_message(writer, reply)
        except ConnectionError:
            pass
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _connection(
        self, address: Tuple[str, int]
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._pools.get(address)
        if pool:
            return pool.pop()
        host, port = address
        return await asyncio.open_connection(host, port)

    async def call(self, address, message: dict) -> dict:
        address = (address[0], address[1])
        reader, writer = await self._connection(address)
        try:
            await write_message(writer, message)
            reply = await read_message(reader, self.max_frame_bytes)
        except ProtocolError:
            writer.close()
            raise
        except ConnectionError as error:
            writer.close()
            raise ProtocolError(
                f"connection to {address[0]}:{address[1]} failed "
                f"mid-call: {error!r}"
            ) from error
        if reply is None:
            writer.close()
            raise ProtocolError(
                f"peer {address[0]}:{address[1]} closed the connection "
                "before replying"
            )
        if self._closed:
            writer.close()
        else:
            self._pools.setdefault(address, []).append((reader, writer))
        return raise_if_error(reply)

    async def close(self) -> None:
        self._closed = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._servers.clear()
        for pool in self._pools.values():
            for _, writer in pool:
                writer.close()
        self._pools.clear()
        # Drain server-side connection loops: closing their writers feeds
        # EOF into the pending reads, so every loop exits cleanly before
        # the event loop shuts down (no dangling tasks to cancel).
        for writer in list(self._conn_writers):
            writer.close()
        tasks = [t for t in self._conn_tasks if not t.done()]
        if tasks:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*tasks, return_exceptions=True), timeout=5.0
                )
