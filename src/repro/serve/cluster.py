"""The cluster orchestrator: a live topology of cache nodes.

A :class:`Cluster` turns an existing :class:`~repro.sim.architecture.
Architecture` into a running cascade: one :class:`~repro.serve.node.
CacheNode` per network node, each owning a **private** instance of the
configured scheme (so only that node's caches ever materialize), wired
to its upstream peers over a pluggable :class:`~repro.serve.transport.
Transport`.  Parent links follow the architecture's distribution trees:
a request entering at a client's attachment node walks exactly the
delivery path the simulator would route, because every node resolves
paths from the same shared routing table.

The orchestrator also provides the control plane:

* ``invalidate`` -- push-invalidate one object across all nodes;
* ``stats_snapshot`` -- the merged per-node counter registry;
* ``enable_metrics`` -- one scrape endpoint per node
  (:class:`~repro.serve.metrics_http.MetricsServer`);
* ``stop`` -- graceful drain (waits for in-flight walks) and an optional
  state snapshot on the way down;
* ``serve_forever`` -- run until SIGINT/SIGTERM, then drain-and-snapshot.

:meth:`Cluster.build` derives the scheme configuration from a catalog
and :class:`~repro.sim.config.SimulationConfig` exactly as the
experiment runner's ``execute_point`` does, which is what lets the
differential oracle compare a live replay against the simulator
bit-for-bit.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import signal as signal_module
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.coherency.config import CoherencyConfig
from repro.coherency.stats import CoherencyStats
from repro.core.piggyback import INV_FRAME_BYTES
from repro.costs.model import CostModel, LatencyCostModel
from repro.obs.export import JsonlTraceWriter
from repro.obs.probe import Probe
from repro.obs.timers import PhaseTimers
from repro.schemes.base import CachingScheme
from repro.serve.channel import (
    BROKER_NODE_ID,
    ChannelBroker,
    ChannelSubscriber,
    merge_channel_stats,
)
from repro.serve.metrics_http import MetricsServer
from repro.serve.node import CacheNode, ResilienceConfig
from repro.serve.protocol import (
    MSG_CHSYNC,
    MSG_INV,
    MSG_PUB,
    MSG_SUB,
    RETRYABLE_ERRORS,
)
from repro.serve.tracing import NodeTracer, TracingConfig
from repro.serve.transport import InProcessTransport, Transport
from repro.sim.architecture import Architecture
from repro.sim.config import SimulationConfig
from repro.sim.factory import build_scheme
from repro.workload.catalog import ObjectCatalog
from repro.workload.groups import GroupAssignment
from repro.workload.updates import GroupUpdateEvent, expand_group_events

SchemeFactory = Callable[[], CachingScheme]


class Cluster:
    """A live cascade of cache nodes over one architecture."""

    def __init__(
        self,
        architecture: Architecture,
        cost_model: CostModel,
        scheme_factory: SchemeFactory,
        transport: Optional[Transport] = None,
        scheme_name: str = "",
        resilience: Optional[ResilienceConfig] = None,
        seed: int = 0,
        max_inflight: Optional[int] = None,
        tracing: Optional[TracingConfig] = None,
        coherency: Optional[CoherencyConfig] = None,
        groups: Optional[GroupAssignment] = None,
    ) -> None:
        if (
            coherency is not None
            and coherency.mode == "channel"
            and groups is None
        ):
            raise ValueError(
                "channel-mode coherency requires a group assignment "
                "(build one from the object catalog via "
                "CoherencyConfig.build_groups)"
            )
        self.architecture = architecture
        self.cost_model = cost_model
        self.scheme_factory = scheme_factory
        # The coherency plane (inv broadcasts, channel subscriptions)
        # only spans cache nodes: the origin is authoritative, never
        # holds a stale copy, and the simulator prices exactly
        # len(architecture.cache_nodes) frames per event.
        self._cache_nodes = frozenset(architecture.cache_nodes)
        self.transport = transport if transport is not None else InProcessTransport()
        self.scheme_name = scheme_name
        # Per-node admission bound (None = unbounded); see CacheNode.
        self.max_inflight = max_inflight
        # Distributed tracing (None = off, the exact untraced path); the
        # JSONL span writer and phase timers are shared by every node.
        self.tracing = tracing
        self.trace_writer: Optional[JsonlTraceWriter] = None
        self.phase_timers: Optional[PhaseTimers] = None
        self._trace_probe: Optional[Probe] = None
        self._inv_seq = 0
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        # Seeds the per-node retry-jitter RNGs; node ``i`` always draws
        # from ``Random(f"{seed}:{i}")``, so a chaos run's backoff
        # schedule -- and with it every resilience counter -- is a pure
        # function of (seed, fault plan, trace).
        self.seed = seed
        self.nodes: Dict[int, CacheNode] = {}
        self.addresses: Dict[int, object] = {}
        self.metrics_servers: Dict[int, MetricsServer] = {}
        # Nodes skipped by best-effort invalidation broadcasts (control
        # plane's failure visibility; the data plane has its own counters).
        self.invalidate_skips = 0
        # Coherency mode (None behaves as implicit in-band with no stats
        # surfaced).  The broker's address deliberately lives OUTSIDE
        # self.addresses: invalidation broadcasts and node sweeps iterate
        # the address map and must never treat the broker as a cache.
        self.coherency = coherency
        self.groups = groups
        self.broker: Optional[ChannelBroker] = None
        self.broker_address: Optional[object] = None
        self._updates_published = 0
        self._inv_frames = 0
        self._copies_invalidated = 0
        self._started = False
        self._draining = False

    @classmethod
    def build(
        cls,
        architecture: Architecture,
        catalog: ObjectCatalog,
        scheme_name: str,
        config: Optional[SimulationConfig] = None,
        transport: Optional[Transport] = None,
        resilience: Optional[ResilienceConfig] = None,
        seed: int = 0,
        max_inflight: Optional[int] = None,
        tracing: Optional[TracingConfig] = None,
        coherency: Optional[CoherencyConfig] = None,
        **params,
    ) -> "Cluster":
        """Derive per-node schemes exactly as the experiment runner does.

        Every node gets a fresh scheme instance built from the same
        ``(cost model, capacity, d-cache entries, params)`` tuple the
        simulator's ``execute_point`` would hand a single shared
        instance; the cluster's distribution is purely an ownership
        split, never a configuration change.  ``coherency`` selects the
        invalidation mode; its group assignment is derived from the
        catalog, so cluster and simulator group objects identically.
        """
        config = config if config is not None else SimulationConfig()
        cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
        capacity = config.capacity_bytes(catalog.total_bytes)
        dcache_entries = config.dcache_entries(
            catalog.total_bytes, catalog.mean_size
        )
        groups = (
            coherency.build_groups(catalog.num_objects)
            if coherency is not None
            else None
        )
        return cls(
            architecture,
            cost_model,
            lambda: build_scheme(
                scheme_name, cost_model, capacity, dcache_entries, **params
            ),
            transport=transport,
            scheme_name=scheme_name,
            resilience=resilience,
            seed=seed,
            max_inflight=max_inflight,
            tracing=tracing,
            coherency=coherency,
            groups=groups,
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Dict[int, object]:
        """Instantiate and serve every node; returns the address map."""
        if self._started:
            raise RuntimeError("cluster already started")
        if self.tracing is not None:
            self.trace_writer = JsonlTraceWriter(self.tracing.path)
            self.phase_timers = PhaseTimers()
            self._trace_probe = Probe(
                self.trace_writer,
                sample_every=self.tracing.sample_every,
                sample_rate=self.tracing.sample_rate,
                seed=self.tracing.seed,
                kinds=("span",),
            )
        for node_id in sorted(self.architecture.network.nodes()):
            tracer = None
            if self._trace_probe is not None:
                tracer = NodeTracer(
                    node_id, self._trace_probe, timers=self.phase_timers
                )
            node = CacheNode(
                node_id,
                self.scheme_factory(),
                self.architecture.request_path,
                self._forward,
                resilience=self.resilience,
                rng=random.Random(f"{self.seed}:{node_id}"),
                max_inflight=self.max_inflight,
                tracer=tracer,
            )
            self.nodes[node_id] = node
            self.addresses[node_id] = await self.transport.start_node(
                node_id, node.handle
            )
        if self.coherency is not None and self.coherency.mode == "channel":
            self.broker = ChannelBroker(self._forward)
            self.broker_address = await self.transport.start_node(
                BROKER_NODE_ID, self.broker.handle
            )
            for node_id in sorted(self.nodes):
                if node_id not in self._cache_nodes:
                    continue
                node = self.nodes[node_id]
                node.subscriber = ChannelSubscriber(
                    node_id, node.scheme, self.groups, self._call_broker
                )
                await self._call_broker(
                    {"type": MSG_SUB, "node": node_id, "groups": "*"}
                )
        self._started = True
        return dict(self.addresses)

    async def _forward(self, node_id: int, message: dict) -> dict:
        return await self.transport.call(self.addresses[node_id], message)

    async def _call_broker(self, message: dict) -> dict:
        return await self.transport.call(self.broker_address, message)

    def ingress_address(self, client_id: int):
        """The address a given client sends its ``get`` frames to."""
        return self.addresses[self.architecture.client_nodes[client_id]]

    async def enable_metrics(
        self, host: str = "127.0.0.1", base_port: int = 0
    ) -> Dict[int, Tuple[str, int]]:
        """Start one ``/metrics`` endpoint per node; returns their addresses.

        With ``base_port=0`` every endpoint gets an OS-assigned port;
        otherwise node ``i`` (in sorted order) listens on
        ``base_port + i``.
        """
        bound: Dict[int, Tuple[str, int]] = {}
        for offset, node_id in enumerate(sorted(self.nodes)):
            port = 0 if base_port == 0 else base_port + offset
            node = self.nodes[node_id]
            server = MetricsServer(
                node.registry,
                host=host,
                port=port,
                extra_text=self._requests_handled_text(node),
                ready=self.is_ready,
            )
            self.metrics_servers[node_id] = server
            bound[node_id] = await server.start()
        return bound

    @staticmethod
    def _requests_handled_text(node: CacheNode):
        """Scrape text for the one counter the registry does not carry."""

        def render() -> str:
            return (
                "# HELP repro_node_requests_handled_total "
                "request walks handled by this node\n"
                "# TYPE repro_node_requests_handled_total counter\n"
                f'repro_node_requests_handled_total{{node="{node.node_id}"}} '
                f"{node.requests_handled}\n"
            )

        return render

    def is_ready(self) -> bool:
        """Readiness: started and not draining (the ``/healthz`` source)."""
        return self._started and not self._draining

    def begin_drain(self) -> None:
        """Flip readiness off so ``/healthz`` steers new work away.

        Liveness is untouched: the endpoints keep answering (503 with
        ``ready: false``) while in-flight walks finish.
        """
        self._draining = True

    async def drain(self, timeout: float = 10.0) -> bool:
        """Wait until no node has an in-flight request walk."""
        self.begin_drain()
        deadline = asyncio.get_running_loop().time() + timeout
        while any(node.inflight for node in self.nodes.values()):
            if asyncio.get_running_loop().time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    def snapshot(self) -> dict:
        """Point-in-time cluster state: per-node counters and cache fill."""
        nodes = {}
        for node_id, node in sorted(self.nodes.items()):
            entry = {
                "requests_handled": node.requests_handled,
                "cached_bytes": node.scheme.total_cached_bytes(),
                "stats": node.registry.snapshot().get(node_id, {}),
            }
            if node.subscriber is not None:
                entry["channel"] = node.subscriber.to_dict()
            nodes[str(node_id)] = entry
        snap = {
            "scheme": self.scheme_name,
            "architecture": self.architecture.name,
            "nodes": nodes,
        }
        if self.broker is not None:
            snap["channel"] = {
                "broker": self.broker.stats_dict(),
                "groups": dict(self.groups.params),
            }
        summary = self.coherency_summary()
        if summary is not None:
            snap["coherency"] = summary
        return snap

    async def stop(
        self,
        drain: bool = True,
        snapshot_path: Optional[Path] = None,
        drain_timeout: float = 10.0,
    ) -> Optional[dict]:
        """Graceful shutdown: drain in-flight walks, snapshot, tear down."""
        snap = None
        self._draining = True
        if self._started:
            if drain:
                await self.drain(timeout=drain_timeout)
                if self.broker is not None:
                    # Deterministic convergence: replay every event the
                    # fan-out lost before the snapshot freezes the state.
                    await self.channel_sync()
            snap = self.snapshot()
            if snapshot_path is not None:
                Path(snapshot_path).write_text(
                    json.dumps(snap, indent=2, sort_keys=True) + "\n"
                )
        for server in self.metrics_servers.values():
            await server.close()
        self.metrics_servers.clear()
        await self.transport.close()
        if self.trace_writer is not None:
            self.trace_writer.close()
            self.trace_writer = None
            self._trace_probe = None
        self._started = False
        return snap

    async def serve_forever(
        self,
        snapshot_path: Optional[Path] = None,
        signals: Sequence[int] = (
            signal_module.SIGINT,
            signal_module.SIGTERM,
        ),
    ) -> Optional[dict]:
        """Serve until a shutdown signal, then drain-and-snapshot."""
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: List[int] = []
        for sig in signals:
            try:
                loop.add_signal_handler(sig, shutdown.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal support: stop() by hand
        try:
            await shutdown.wait()
        finally:
            for sig in installed:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(sig)
        return await self.stop(drain=True, snapshot_path=snapshot_path)

    # -- control plane -------------------------------------------------------

    async def invalidate(self, object_id: int) -> int:
        """Push-invalidate one object everywhere; returns copies removed.

        Broadcasts in sorted node order -- the same order the simulator's
        ``invalidate_object`` sweeps a shared scheme's nodes -- though
        per-node removals are independent, so order never changes counts.
        Best-effort under faults: an unreachable node is skipped (counted
        in ``invalidate_skips``) rather than failing the broadcast; a
        crashed-and-restarted node rejoins with its copy still cached,
        the standard stale-replica window of push invalidation.
        """
        removed = 0
        ctx = None
        if self._trace_probe is not None and self._trace_probe.sample("span"):
            # One trace per broadcast: every node's inv span shares it,
            # so the fan-out reconstructs as one flat tree.
            self._inv_seq += 1
            ctx = {"id": f"tinv.{self._inv_seq}", "parent": None}
        for node_id in sorted(self.addresses):
            if node_id not in self._cache_nodes:
                continue
            frame = {"type": MSG_INV, "object_id": object_id}
            if ctx is not None:
                frame["trace"] = ctx
            try:
                reply = await self.transport.call(
                    self.addresses[node_id], frame
                )
            except RETRYABLE_ERRORS:
                self.invalidate_skips += 1
                continue
            removed += reply["removed"]
            self._inv_frames += 1
        self._copies_invalidated += removed
        return removed

    async def apply_update(self, event) -> int:
        """Apply one update event through the configured coherency mode.

        In-band (or no coherency configured): a group event expands to
        its member objects and each is broadcast-invalidated -- exactly
        what in-band mode pays for group invalidation.  Channel mode:
        one ``pub`` frame to the broker, which sequences and fans out.
        Returns copies removed cluster-wide (for channel mode, by the
        synchronous fan-out; copies recovered later via catchup are not
        in the count).
        """
        self._updates_published += 1
        if self.broker is None:
            events = [event]
            if isinstance(event, GroupUpdateEvent):
                if self.groups is None:
                    raise ValueError(
                        "group-targeted updates require a group assignment"
                    )
                events = expand_group_events([event], self.groups)
            removed = 0
            for per_object in events:
                removed += await self.invalidate(per_object.object_id)
            return removed
        if isinstance(event, GroupUpdateEvent):
            group = event.group_id
        else:
            group = self.groups.group_of(event.object_id)
        reply = await self._call_broker(
            {"type": MSG_PUB, "group": group, "time": event.time}
        )
        removed = reply["removed"]
        self._copies_invalidated += removed
        return removed

    async def channel_sync(self) -> Dict[int, int]:
        """Sync every node to the broker's log; returns per-node pending.

        After a successful sync every node's pending count is zero --
        the convergence invariant the CI smoke's fault stage asserts.
        """
        if self.broker is None:
            return {}
        latest = self.broker.latest()
        pending: Dict[int, int] = {}
        for node_id in sorted(self.nodes):
            if self.nodes[node_id].subscriber is None:
                continue
            reply = await self.transport.call(
                self.addresses[node_id],
                {"type": MSG_CHSYNC, "latest": latest},
            )
            pending[node_id] = reply["pending"]
        return pending

    async def coherency_report(self) -> Optional[dict]:
        """Async face of :meth:`coherency_summary` (matches ClusterClient)."""
        return self.coherency_summary()

    def coherency_summary(self) -> Optional[dict]:
        """Merged coherency accounting, or ``None`` when not configured.

        Channel mode folds the broker's wire accounting and every
        subscriber's staleness counters through
        :func:`~repro.serve.channel.merge_channel_stats`; in-band mode
        prices the inv broadcasts this orchestrator actually delivered.
        """
        if self.coherency is None:
            return None
        if self.broker is not None:
            return merge_channel_stats(
                self.broker.stats_dict(),
                [
                    node.subscriber.to_dict()
                    for _, node in sorted(self.nodes.items())
                    if node.subscriber is not None
                ],
            )
        stats = CoherencyStats(mode="inband")
        stats.events_published = self._updates_published
        stats.inv_frames = self._inv_frames
        stats.inv_bytes = self._inv_frames * INV_FRAME_BYTES
        stats.copies_invalidated = self._copies_invalidated
        return stats.to_dict()
