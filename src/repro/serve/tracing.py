"""Serve-side distributed tracing: per-hop spans through the probe layer.

The cluster's request walk is a chain of ``fwd`` frames hopping node to
node (and, sharded, process to process).  Tracing makes that chain an
artifact: every hop a node handles emits one ``span`` event -- through
the exact :class:`~repro.obs.probe.Probe` /
:class:`~repro.obs.export.JsonlTraceWriter` machinery the simulator's
instrumentation uses -- carrying the trace id minted at ingress, the
hop's own span id, the forwarding span's id, and the hop-local facts:
scheme-step timings (also folded into
:class:`~repro.obs.timers.PhaseTimers` under the ``serve-*`` phases),
upstream await time including every retry and backoff, piggyback bytes
added, retries/failovers survived, admission pressure, and the shard the
hop executed on.  ``repro.obs.spans.reconstruct_traces`` reassembles the
files back into per-request trees.

Contract (same as PR 3's instrumentation layer): **zero overhead when
off** -- an untraced node runs the exact pre-tracing code path -- and
**bit-identical when on** -- spans only observe; no metric, counter or
cache decision ever depends on them.  Ids are deterministic (per-node
monotone counters, no RNG, no wall clock) so two identically-seeded
traced runs produce identical trace structures, and ids minted by
different nodes/shards can never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs.export import JsonlTraceWriter
from repro.obs.probe import Probe
from repro.obs.timers import PhaseTimers

__all__ = [
    "NodeTracer",
    "TracingConfig",
    "shard_trace_path",
    "PHASE_SERVE_LOOKUP",
    "PHASE_SERVE_DECIDE",
    "PHASE_SERVE_DELIVER",
    "PHASE_SERVE_UPSTREAM",
]

# Phase-timer buckets fed by traced hops (see repro.obs.timers).
PHASE_SERVE_LOOKUP = "serve-lookup"
PHASE_SERVE_DECIDE = "serve-decide"
PHASE_SERVE_DELIVER = "serve-deliver"
PHASE_SERVE_UPSTREAM = "serve-upstream"


@dataclass(frozen=True)
class TracingConfig:
    """How a cluster writes spans (shared by every node it hosts).

    ``path`` is the JSONL span file; ``sample_every``/``sample_rate``
    feed the probe's deterministic per-kind sampling, so high-rate
    clusters can keep every Nth walk instead of every walk.  Sampling
    is decided at ingress (a walk either gets a trace context or does
    not), keeping sampled traces complete instead of hole-ridden.
    """

    path: str | Path
    sample_every: int = 1
    sample_rate: float = 1.0
    seed: int = 0


def shard_trace_path(base: str | Path, shard_id: int) -> Path:
    """Per-shard span file: ``trace.jsonl`` -> ``trace.shard0.jsonl``.

    Shard workers are separate processes and cannot share one file
    handle; each writes its own suffixed file, and readers concatenate
    (``reconstruct_traces`` is order- and file-boundary-agnostic).
    """
    base = Path(base)
    if base.suffix:
        return base.with_suffix(f".shard{shard_id}{base.suffix}")
    return base.with_name(f"{base.name}.shard{shard_id}")


class NodeTracer:
    """Per-node span factory over a shared probe.

    One tracer per :class:`~repro.serve.node.CacheNode`; the probe (and
    through it the JSONL writer) is shared by every node of the hosting
    process.  Span/trace ids embed the node id plus a per-node monotone
    counter, so they are deterministic and globally unique without any
    cross-process coordination.
    """

    __slots__ = ("node_id", "shard", "probe", "timers", "_seq")

    def __init__(
        self,
        node_id: int,
        probe: Probe,
        shard: Optional[int] = None,
        timers: Optional[PhaseTimers] = None,
    ) -> None:
        self.node_id = node_id
        self.probe = probe
        self.shard = shard
        self.timers = timers
        self._seq = 0

    def new_trace_id(self) -> str:
        """Mint a trace id at ingress (a walk with no inbound context)."""
        self._seq += 1
        return f"t{self.node_id}.{self._seq}"

    def new_span_id(self) -> str:
        self._seq += 1
        return f"s{self.node_id}.{self._seq}"

    def sample_walk(self) -> bool:
        """Ingress sampling decision: does this walk get a trace at all?

        Decided once where the trace id would be minted; forwarded hops
        of an already-traced walk always record (the context's presence
        is the decision), so sampled traces stay complete.
        """
        return self.probe.sample("span")

    def emit(self, span: dict) -> None:
        """Write one finished span event (and feed the phase timers)."""
        timers = self.timers
        if timers is not None:
            for phase, key in (
                (PHASE_SERVE_LOOKUP, "lookup"),
                (PHASE_SERVE_DECIDE, "decide"),
                (PHASE_SERVE_DELIVER, "deliver"),
                (PHASE_SERVE_UPSTREAM, "upstream"),
            ):
                seconds = span.get(key)
                if seconds is not None:
                    timers.add(phase, seconds)
        self.probe.write("span", **span)
