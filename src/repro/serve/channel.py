"""The live out-of-band invalidation channel: broker and subscribers.

Implements channel-mode coherency for the serving cluster (the
squid-channels design the simulator models in
:class:`~repro.coherency.policy.ChannelCoherency`), on the same framed
JSON protocol every other cluster frame uses:

* every cache node ``sub``-scribes to a :class:`ChannelBroker` (hosted
  on the cluster transport at :data:`BROKER_NODE_ID`, *outside* the
  cache-node address map);
* an origin update is ``pub``-lished to the broker, which appends it to
  a per-group log under a monotonically increasing per-group sequence
  number and fans ``event`` frames out to the subscribers in sorted
  node order;
* a subscriber applies an event by invalidating its stale member
  copies (a copy is stale iff it was inserted before the event's
  origin timestamp) and accounting the staleness window;
* delivery is best-effort: a fan-out frame lost to a fault (timeout,
  unreachable node, corrupted frame) is simply dropped.  Recovery is
  sequence-number driven -- a subscriber that sees a gap (``seq``
  jumping past ``applied + 1``) pulls the missed events with a
  ``catchup``, duplicates (``seq <= applied``) are discarded, and the
  drain-time ``chsync`` replays every group to the broker's latest
  sequence -- so a channel cluster always converges to zero pending
  events, no matter which frames the network ate.

**Staleness accounting** mirrors the simulator policy exactly:

* a *stale copy* is a cached copy whose insertion time precedes the
  event's origin timestamp; applying the event removes it
  (``invalidate_step``) and records the window ``now - event_time``
  on the node's trace-time clock (a stale copy that capacity eviction
  already removed counts as ``stale_copies_evicted``, no window);
* a *stale hit* is a cache hit served off a stale copy between the
  origin update and the event's application.  Subscribers keep a small
  per-object log of ``(hit_time, copy_insert_time, size)`` entries and
  count them retroactively when the event arrives: a hit is stale iff
  ``hit_time >= event_time`` and ``copy_insert_time < event_time``.
  Each hit is counted at most once (entries are pruned as they are
  judged); the log is capped per object, so accounting is exact up to
  :data:`HIT_LOG_CAP` outstanding hits per object.

Under strictly sequential replay every event is applied before the
next request is issued, so no stale hit can occur and every staleness
window is zero -- which is why a channel-mode cluster reproduces the
in-band metrics bit-for-bit in the differential oracle.

Byte accounting is split to avoid double counting when broker and node
stats are merged: the broker prices all channel wire traffic (pub,
fan-out, catchup replay, subscription registration), while subscribers
only account staleness (stale hits/bytes, invalidated copies,
windows).  :func:`merge_channel_stats` folds both sides into one
:class:`~repro.coherency.stats.CoherencyStats`-shaped dict.
"""

from __future__ import annotations

from typing import Awaitable, Callable, Dict, List, Sequence, Tuple

from repro.coherency.stats import (
    CATCHUP_BYTES,
    EVENT_BYTES,
    SUB_BYTES,
    CoherencyStats,
)
from repro.serve.protocol import (
    MSG_CATCHUP,
    MSG_CATCHUP_OK,
    MSG_CHSTATS,
    MSG_CHSTATS_OK,
    MSG_EVENT,
    MSG_PING,
    MSG_PONG,
    MSG_PUB,
    MSG_PUB_OK,
    MSG_SUB,
    MSG_SUB_OK,
    RETRYABLE_ERRORS,
    ProtocolError,
)
from repro.workload.groups import GroupAssignment

# The broker's slot on the cluster transport.  Deliberately outside the
# non-negative cache-node id space so it can never collide with (or be
# mistaken for) a cache node; the cluster keeps its address out of the
# node address map, so invalidation broadcasts and stats sweeps never
# touch it.
BROKER_NODE_ID = -1

# Per-object bound on outstanding (not yet judged) hit-log entries; see
# the module docstring.  Generously above anything a real replay
# produces between two events for one object.
HIT_LOG_CAP = 256

# async (node_id, frame) -> reply: how the broker reaches a subscriber.
Fanout = Callable[[int, dict], Awaitable[dict]]
# async (frame) -> reply: how a subscriber reaches the broker.
BrokerCall = Callable[[dict], Awaitable[dict]]


class ChannelBroker:
    """Per-group sequenced event log with push fan-out.

    The broker is a transport handler like any cache node: ``sub``
    registers a subscriber, ``pub`` appends one event to the group's
    log and fans it out (best-effort -- a retryable failure drops that
    one delivery and is counted in ``event_drops``), ``catchup``
    replays a suffix of a group's log, and ``chstats`` exposes the
    accounting plus the latest sequence numbers (the drain-time sync
    source).
    """

    def __init__(self, fanout: Fanout) -> None:
        self._fanout = fanout
        # group id -> ordered event log; entry i holds seq == i + 1.
        self._log: Dict[int, List[dict]] = {}
        # node id -> subscribed group filter ("*" or a list of ids).
        self._subscribers: Dict[int, object] = {}
        self.stats = CoherencyStats(mode="channel")
        self.event_drops = 0

    # -- transport handler ---------------------------------------------------

    async def handle(self, message: dict) -> dict:
        kind = message["type"]
        if kind == MSG_SUB:
            return self._handle_sub(message)
        if kind == MSG_PUB:
            return await self._handle_pub(message)
        if kind == MSG_CATCHUP:
            return self._handle_catchup(message)
        if kind == MSG_CHSTATS:
            return {"type": MSG_CHSTATS_OK, "stats": self.stats_dict()}
        if kind == MSG_PING:
            return {"type": MSG_PONG, "node": BROKER_NODE_ID}
        raise ProtocolError(f"unexpected message type {kind!r} at broker")

    def _handle_sub(self, message: dict) -> dict:
        try:
            node = message["node"]
        except KeyError as missing:
            raise ProtocolError(f"sub frame missing field {missing}") from None
        self._subscribers[node] = message.get("groups", "*")
        self.stats.subscriptions += 1
        self.stats.channel_bytes += SUB_BYTES
        return {"type": MSG_SUB_OK, "node": node, "latest": self.latest()}

    def _wants(self, node: int, group: int) -> bool:
        groups = self._subscribers[node]
        return groups == "*" or group in groups

    async def _handle_pub(self, message: dict) -> dict:
        try:
            group = message["group"]
            time = message["time"]
        except KeyError as missing:
            raise ProtocolError(f"pub frame missing field {missing}") from None
        log = self._log.setdefault(group, [])
        seq = len(log) + 1
        log.append({"seq": seq, "time": time})
        self.stats.events_published += 1
        self.stats.channel_bytes += EVENT_BYTES  # the pub frame itself
        removed = 0
        for node in sorted(self._subscribers):
            if not self._wants(node, group):
                continue
            self.stats.channel_bytes += EVENT_BYTES
            try:
                reply = await self._fanout(
                    node,
                    {
                        "type": MSG_EVENT,
                        "group": group,
                        "seq": seq,
                        "time": time,
                    },
                )
            except RETRYABLE_ERRORS:
                # Lost on the wire; the subscriber's gap detection or the
                # drain-time chsync will pull it via catchup.
                self.event_drops += 1
                continue
            self.stats.event_deliveries += 1
            removed += reply.get("removed", 0)
        return {
            "type": MSG_PUB_OK,
            "group": group,
            "seq": seq,
            "removed": removed,
        }

    def _handle_catchup(self, message: dict) -> dict:
        try:
            group = message["group"]
            since = message["since"]
        except KeyError as missing:
            raise ProtocolError(
                f"catchup frame missing field {missing}"
            ) from None
        events = self._log.get(group, [])[since:]
        self.stats.catchups += 1
        self.stats.channel_bytes += CATCHUP_BYTES + EVENT_BYTES * len(events)
        return {"type": MSG_CATCHUP_OK, "group": group, "events": events}

    # -- introspection -------------------------------------------------------

    def latest(self) -> Dict[int, int]:
        """Latest sequence number per group (JSON keys become strings)."""
        return {group: len(log) for group, log in self._log.items()}

    def stats_dict(self) -> dict:
        return {
            **self.stats.to_dict(),
            "event_drops": self.event_drops,
            "latest": self.latest(),
        }


class ChannelSubscriber:
    """One cache node's view of the channel: apply, dedup, catch up."""

    def __init__(
        self,
        node_id: int,
        scheme,
        groups: GroupAssignment,
        call_broker: BrokerCall,
    ) -> None:
        self.node_id = node_id
        self.scheme = scheme
        self.groups = groups
        self._call_broker = call_broker
        # group -> last contiguously applied sequence number.
        self.applied: Dict[int, int] = {}
        # group -> highest sequence number this node has heard of.
        self.latest_known: Dict[int, int] = {}
        # object -> insertion time of the currently cached copy.
        self._insert_times: Dict[int, float] = {}
        # object -> [(hit_time, copy_insert_time, size)] not yet judged.
        self._hit_log: Dict[int, List[Tuple[float, float, int]]] = {}
        self.stats = CoherencyStats(mode="channel")
        self.gaps = 0
        self.duplicates = 0
        self.catchups = 0

    # -- data-plane hooks (called from the node's walk) ----------------------

    def note_hit(self, object_id: int, now: float, size: int) -> None:
        """Log one cache hit for retroactive stale-hit judgement."""
        insert_time = self._insert_times.get(object_id)
        if insert_time is None:
            return
        log = self._hit_log.setdefault(object_id, [])
        log.append((now, insert_time, size))
        if len(log) > HIT_LOG_CAP:
            del log[0]

    def note_insert(self, object_id: int, now: float) -> None:
        """A fresh copy arrived from upstream (postdates every update)."""
        self._insert_times[object_id] = now

    # -- event application ---------------------------------------------------

    def apply_event(self, group: int, seq: int, time: float, clock: float) -> int:
        """Apply one in-order event; returns copies removed here.

        ``clock`` is the node's trace-time clock at application -- the
        staleness window of every removed stale copy.
        """
        stats = self.stats
        removed_total = 0
        for object_id in self.groups.members(group):
            log = self._hit_log.get(object_id)
            if log:
                kept = []
                for hit_time, copy_insert, size in log:
                    if copy_insert < time:
                        # This copy is stale relative to the event; the
                        # hit was stale iff it happened after the origin
                        # update.  Either way the entry is judged now --
                        # each hit is counted at most once.
                        if hit_time >= time:
                            stats.stale_hits += 1
                            stats.stale_bytes += size
                    else:
                        kept.append((hit_time, copy_insert, size))
                if kept:
                    self._hit_log[object_id] = kept
                else:
                    self._hit_log.pop(object_id, None)
            insert_time = self._insert_times.get(object_id)
            if insert_time is not None and insert_time < time:
                removed = self.scheme.invalidate_step(self.node_id, object_id)
                self._insert_times.pop(object_id, None)
                if removed:
                    removed_total += removed
                    stats.copies_invalidated += removed
                    stats.record_window(max(0.0, clock - time))
                else:
                    # The tracked copy is gone: capacity eviction beat
                    # the channel to it.  Over the wire this is an upper
                    # bound -- the node cannot see *when* the eviction
                    # happened, so a copy evicted even before the update
                    # still lands here.
                    stats.stale_copies_evicted += 1
        self.applied[group] = seq
        if self.latest_known.get(group, 0) < seq:
            self.latest_known[group] = seq
        return removed_total

    async def deliver(
        self, group: int, seq: int, time: float, clock: float
    ) -> int:
        """One pushed ``event`` frame: dedup, gap-detect, apply."""
        applied = self.applied.get(group, 0)
        if self.latest_known.get(group, 0) < seq:
            self.latest_known[group] = seq
        if seq <= applied:
            # Redelivery (e.g. a fault-injected duplicate): already
            # applied, drop it.
            self.duplicates += 1
            return 0
        if seq > applied + 1:
            # Missed at least one fan-out frame; pull the gap (which
            # includes this event) from the broker's log.
            self.gaps += 1
            return await self.catchup(group, clock)
        return self.apply_event(group, seq, time, clock)

    async def catchup(self, group: int, clock: float) -> int:
        """Replay every unapplied event of one group from the broker."""
        since = self.applied.get(group, 0)
        reply = await self._call_broker(
            {"type": MSG_CATCHUP, "group": group, "since": since}
        )
        self.catchups += 1
        removed = 0
        for entry in reply["events"]:
            if entry["seq"] <= self.applied.get(group, 0):
                continue
            removed += self.apply_event(
                group, entry["seq"], entry["time"], clock
            )
        return removed

    async def sync(self, latest: Dict, clock: float) -> int:
        """Catch up to the broker's latest seqs (the drain-time chsync)."""
        removed = 0
        for group_key, seq in latest.items():
            group = int(group_key)
            if self.latest_known.get(group, 0) < seq:
                self.latest_known[group] = seq
            if self.applied.get(group, 0) < seq:
                removed += await self.catchup(group, clock)
        return removed

    # -- introspection -------------------------------------------------------

    def pending(self) -> int:
        """Known-but-unapplied events (zero after a successful sync)."""
        return sum(
            max(0, seq - self.applied.get(group, 0))
            for group, seq in self.latest_known.items()
        )

    def to_dict(self) -> dict:
        """The node's channel section in stats frames and snapshots."""
        stats = self.stats
        return {
            "applied_events": sum(self.applied.values()),
            "pending": self.pending(),
            "gaps": self.gaps,
            "duplicates": self.duplicates,
            "catchups": self.catchups,
            "stale_hits": stats.stale_hits,
            "stale_bytes": stats.stale_bytes,
            "copies_invalidated": stats.copies_invalidated,
            "stale_copies_evicted": stats.stale_copies_evicted,
            # Raw windows so cross-node percentile merges stay exact.
            "windows": list(stats.staleness_windows),
        }


def merge_channel_stats(
    broker_stats: dict, node_stats: Sequence[dict]
) -> dict:
    """Fold broker wire accounting and per-node staleness into one dict.

    The result is :meth:`CoherencyStats.to_dict`-shaped (so the
    warehouse ingests cluster runs and simulator runs through the same
    schema) plus the channel-specific reliability counters
    (``event_drops``, ``gaps``, ``duplicates``, ``node_catchups``,
    ``pending``).
    """
    merged = CoherencyStats(mode="channel")
    merged.events_published = broker_stats.get("events_published", 0)
    merged.event_deliveries = broker_stats.get("event_deliveries", 0)
    merged.polls = broker_stats.get("polls", 0)
    merged.subscriptions = broker_stats.get("subscriptions", 0)
    merged.catchups = broker_stats.get("catchups", 0)
    merged.channel_bytes = broker_stats.get("channel_bytes", 0)
    for node in node_stats:
        merged.stale_hits += node.get("stale_hits", 0)
        merged.stale_bytes += node.get("stale_bytes", 0)
        merged.copies_invalidated += node.get("copies_invalidated", 0)
        merged.stale_copies_evicted += node.get("stale_copies_evicted", 0)
        merged.staleness_windows.extend(node.get("windows", ()))
    result = merged.to_dict()
    result["event_drops"] = broker_stats.get("event_drops", 0)
    result["gaps"] = sum(node.get("gaps", 0) for node in node_stats)
    result["duplicates"] = sum(node.get("duplicates", 0) for node in node_stats)
    result["node_catchups"] = sum(node.get("catchups", 0) for node in node_stats)
    result["pending"] = sum(node.get("pending", 0) for node in node_stats)
    return result
