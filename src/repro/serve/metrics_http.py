"""A minimal HTTP endpoint exposing one node's live counters.

Serves the node's :class:`~repro.obs.registry.StatRegistry` as
Prometheus text (reusing :func:`repro.obs.export.prometheus_text`), so a
live cluster can be scraped with stock tooling:

* ``GET /metrics``  -- the per-node counters in text exposition format;
* ``GET /healthz``  -- liveness **and** readiness as one JSON object:
  ``{"live": true, "ready": <bool>}``.  Liveness means the process
  answers at all; readiness flips false (and the status to 503) while
  the cluster drains, so a load balancer stops routing new work to a
  node that is still finishing its in-flight walks.

Deliberately not a web framework: a request line, headers up to a blank
line, one response, connection closed.  That is all a scrape needs, and
it keeps the server dependency-free.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Callable, Optional, Tuple

from repro.obs.registry import StatRegistry

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 100


class MetricsServer:
    """One node's scrape endpoint."""

    def __init__(
        self,
        registry: StatRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        extra_text: Optional[Callable[[], str]] = None,
        ready: Optional[Callable[[], bool]] = None,
    ) -> None:
        """``ready`` is polled on every ``/healthz`` hit; ``None`` means
        always ready (a bare metrics server has no drain phase)."""
        self.registry = registry
        self.host = host
        self.port = port
        self.extra_text = extra_text
        self.ready = ready
        self._server: Optional[asyncio.base_events.Server] = None
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_request, host=self.host, port=self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None

    async def _serve_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_LINE:
                await self._respond(writer, 400, "request line too long\n")
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._respond(writer, 400, "malformed request\n")
                return
            method, target = parts[0], parts[1]
            for _ in range(_MAX_HEADER_LINES):  # drain headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                await self._respond(writer, 405, "method not allowed\n")
            elif target == "/metrics":
                from repro.obs.export import prometheus_text

                body = prometheus_text(self.registry.snapshot())
                if self.extra_text is not None:
                    body += self.extra_text()
                await self._respond(writer, 200, body)
            elif target == "/healthz":
                is_ready = True if self.ready is None else bool(self.ready())
                body = json.dumps({"live": True, "ready": is_ready}) + "\n"
                await self._respond(writer, 200 if is_ready else 503, body)
            else:
                await self._respond(writer, 404, "not found\n")
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, body: str
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  503: "Service Unavailable"}.get(status, "Error")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
