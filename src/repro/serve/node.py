"""A live cache node: one server speaking the coordinated protocol.

Each :class:`CacheNode` owns the cache state of exactly one network node
-- a private instance of the configured scheme in which only this node's
caches ever materialize -- and handles the per-request protocol through
the scheme's node-local steps (:meth:`~repro.schemes.base.CachingScheme.
lookup_step` / ``decide_step`` / ``deliver_step``):

* a ``get`` arrives from a client at its attachment node, which resolves
  the delivery path (a branch of the origin's distribution tree) and
  starts the upstream walk;
* a ``fwd`` walks upstream hop by hop, accumulating piggybacked node
  reports, until a cache holds the object or the origin attachment is
  reached; the serving node runs the placement decision;
* the reply unwinds downstream through the same chain of in-flight
  calls -- exactly the paper's response path -- with every node applying
  the shipped decision (inserting, or refreshing its d-cache descriptor)
  and advancing the cost accumulator;
* ``inv`` drops the node's copy of an object (push invalidation).

Every node carries a live :class:`~repro.obs.registry.StatRegistry` fed
the same way the simulator's engine feeds it (lookup hits/misses, serving
reads, insertion writes, piggyback bytes; evictions and occupancy arrive
through the attached cache observers), so ``stats`` frames and the
``/metrics`` endpoint expose the standard per-node counters.

**Resilience.**  Node-to-node forwarding runs through
:meth:`CacheNode._call_upstream`: a per-upstream circuit breaker, then a
bounded retry loop with exponential backoff and seeded jitter around the
retryable failures (:data:`~repro.serve.protocol.RETRYABLE_ERRORS` --
deadlines, unreachable peers, damaged frames).  When an upstream hop
stays dead after retries, the walk *fails over*: the dead hop is skipped
(and an overloaded hop answering ``busy`` is treated the same way)
and the next node on the (full, unmodified) path is tried, degrading the
request to a longer effective miss path instead of an error.  The
response then tells :meth:`~repro.schemes.base.CachingScheme.
deliver_step` which index it physically ``came_from`` so cost-carrying
schemes charge the whole bypassed segment.  Survived faults land in the
registry's resilience counters (``rpc_timeouts``, ``rpc_retries``,
``failovers``, ``breaker_trips``); on a fault-free run every one of them
stays zero and the node's behavior is bit-identical to the pre-resilience
protocol.

**Admission control.**  With ``max_inflight`` set, a ``get``/``fwd``
arriving while the node already has that many walks in flight is shed
with a retryable ``busy`` frame *before* any cache state is touched
(counted as ``busy_rejections``).  One request in flight can never trip
the bound, so sequential replay -- the simulator-equivalence oracle --
is unaffected by any ``max_inflight`` value.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, Mapping, Optional, Sequence

from repro.core.coordinated import CoordinatedScheme
from repro.core.piggyback import (
    ACCUMULATOR_BYTES,
    DECISION_BYTES,
    REPORT_BYTES,
    SKIPPED_NODE_BYTES,
    TAG_BYTES,
)
from repro.obs.instruments import Instruments
from repro.obs.registry import StatRegistry
from repro.schemes.base import CachingScheme
from repro.serve.protocol import (
    MSG_BUSY,
    MSG_CHSYNC,
    MSG_CHSYNC_OK,
    MSG_EVENT,
    MSG_EVENT_OK,
    MSG_FWD,
    MSG_GET,
    MSG_INV,
    MSG_INV_OK,
    MSG_PING,
    MSG_PONG,
    MSG_RESP,
    MSG_STATS,
    MSG_STATS_OK,
    RETRYABLE_ERRORS,
    CallTimeout,
    NodeUnreachable,
    ProtocolError,
)
from repro.serve.tracing import NodeTracer
from repro.serve.transport import CircuitBreaker, RetryPolicy

# async (node_id, message) -> reply: how a node reaches its upstream peer.
Forwarder = Callable[[int, dict], Awaitable[dict]]
# (client_id, server_id) -> delivery path, shared routing state.
PathResolver = Callable[[int, int], Sequence[int]]


def _timed(span: Optional[dict], key: str, fn, *args, **kwargs):
    """Run one scheme step, accumulating its wall time into the span.

    With no span this is a plain call -- the untraced path pays nothing
    beyond the ``None`` test, preserving the zero-overhead-when-off
    contract.
    """
    if span is None:
        return fn(*args, **kwargs)
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    span[key] = span.get(key, 0.0) + (time.perf_counter() - t0)
    return result


@dataclass(frozen=True)
class ResilienceConfig:
    """How a node treats upstream failures (shared by the whole cluster).

    ``retry`` shapes the per-call retry/backoff schedule;
    ``breaker_threshold``/``breaker_cooldown_calls`` parameterize the
    per-upstream :class:`~repro.serve.transport.CircuitBreaker`.  The
    defaults are always safe to leave on: with no faults no call ever
    fails, so no retry, failover or breaker transition can fire.
    """

    retry: RetryPolicy = RetryPolicy()
    breaker_threshold: int = 3
    breaker_cooldown_calls: int = 8

    def new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            cooldown_calls=self.breaker_cooldown_calls,
        )


class CacheNode:
    """One network node of the live cascade."""

    def __init__(
        self,
        node_id: int,
        scheme: CachingScheme,
        resolve_path: PathResolver,
        forward: Forwarder,
        registry: Optional[StatRegistry] = None,
        resilience: Optional[ResilienceConfig] = None,
        rng: Optional[random.Random] = None,
        max_inflight: Optional[int] = None,
        shard_of: Optional[Mapping[int, int]] = None,
        tracer: Optional[NodeTracer] = None,
    ) -> None:
        """``max_inflight`` bounds concurrently admitted request walks
        (``None`` = unbounded); a request arriving at the bound is shed
        with a retryable ``busy`` frame before touching any cache state.
        ``shard_of`` maps node id -> shard id so upstream forwards that
        leave this node's shard are counted (``cross_shard_fwds``).
        ``tracer`` opts the node into distributed tracing (see
        :mod:`repro.serve.tracing`); ``None`` runs the exact untraced
        code path."""
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.node_id = node_id
        self.scheme = scheme
        self._resolve_path = resolve_path
        self._forward = forward
        self.max_inflight = max_inflight
        self._shard_of = dict(shard_of) if shard_of is not None else None
        self._home_shard = (
            self._shard_of.get(node_id) if self._shard_of is not None else None
        )
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        # Jitter source for retry backoff; a per-node seeded RNG makes the
        # whole retry schedule (and thus the chaos counters) reproducible.
        self._rng = rng
        self.breakers: Dict[int, CircuitBreaker] = {}
        self.registry = registry if registry is not None else StatRegistry()
        # Cache-level events (evictions, occupancy, invalidation removals)
        # flow through the standard observer wiring; request-level counts
        # are fed by the handler below, mirroring the engine's feeds.
        scheme.attach_instruments(Instruments(registry=self.registry))
        # Two distinct capabilities, split on purpose: report *decoding*
        # is tied to the coordinated protocol family (its reports are
        # NodeReport wire dicts), while piggyback byte accounting and
        # invalidation-frame pricing apply to any scheme that exposes
        # protocol counters -- a future scheme with its own report format
        # still gets its overhead priced.
        self._coordinated = isinstance(scheme, CoordinatedScheme)
        self._piggyback = getattr(scheme, "protocol_stats", None) is not None
        self._tracer = tracer
        # Channel-mode coherency: the cluster attaches a
        # ChannelSubscriber after construction; None = in-band mode and
        # the exact pre-channel code path.
        self.subscriber = None
        self.requests_handled = 0
        self.inflight = 0
        # Per-node monotone clock: under concurrent load generation,
        # frames carrying older trace timestamps can arrive after newer
        # ones, but a node's notion of "now" must never run backwards
        # (the schemes' frequency estimators require non-decreasing
        # reference times).  Sequential replay is strictly time-ordered,
        # so there the clamp is an identity and cannot perturb the
        # simulator-equivalence oracle.
        self._clock = float("-inf")

    # -- dispatch ------------------------------------------------------------

    async def handle(self, message: dict) -> dict:
        """The transport-facing handler for every frame kind."""
        kind = message["type"]
        if (
            self.max_inflight is not None
            and kind in (MSG_GET, MSG_FWD)
            and self.inflight >= self.max_inflight
        ):
            # Admission control: shed the walk before any cache state is
            # touched.  Control frames (inv/stats/ping) are always
            # admitted -- they are cheap and the operator needs them most
            # exactly when the data plane is saturated.
            self.registry.node(self.node_id).busy_rejections += 1
            tracer = self._tracer
            if tracer is not None:
                ctx = message.get("trace")
                if ctx is not None:
                    # The shed hop of an already-traced walk: without
                    # this span the trace would show the forwarding
                    # parent retrying into a void.
                    tracer.emit(
                        {
                            "trace": ctx.get("id"),
                            "span": tracer.new_span_id(),
                            "parent": ctx.get("parent"),
                            "node": self.node_id,
                            "shard": tracer.shard,
                            "op": "walk",
                            "status": "busy",
                            "t": message.get("time"),
                            "object": message.get("object_id"),
                            "inflight": self.inflight,
                        }
                    )
            return {
                "type": MSG_BUSY,
                "node": self.node_id,
                "inflight": self.inflight,
            }
        self.inflight += 1
        try:
            if kind == MSG_FWD:
                return await self._handle_walk(message)
            if kind == MSG_GET:
                return await self._handle_get(message)
            if kind == MSG_INV:
                return self._handle_invalidate(message)
            if kind == MSG_EVENT:
                return await self._handle_event(message)
            if kind == MSG_CHSYNC:
                return await self._handle_chsync(message)
            if kind == MSG_STATS:
                return self._handle_stats()
            if kind == MSG_PING:
                return {"type": MSG_PONG, "node": self.node_id}
            raise ProtocolError(f"unexpected message type {kind!r}")
        finally:
            self.inflight -= 1

    # -- request path --------------------------------------------------------

    async def _handle_get(self, message: dict) -> dict:
        """Client entry: resolve the delivery path, start the walk."""
        try:
            client_id = message["client_id"]
            server_id = message["server_id"]
            walk = {
                "type": MSG_FWD,
                "object_id": message["object_id"],
                "size": message["size"],
                "time": message["time"],
                "index": 0,
                "reports": [],
                "skipped": list(message.get("skipped", [])),
            }
        except KeyError as missing:
            raise ProtocolError(f"get frame missing field {missing}") from None
        if not isinstance(walk["size"], int) or walk["size"] <= 0:
            raise ProtocolError("object size must be a positive integer")
        path = list(self._resolve_path(client_id, server_id))
        if path[0] != self.node_id:
            raise ProtocolError(
                f"client {client_id} attaches to node {path[0]}, "
                f"not to node {self.node_id}"
            )
        walk["path"] = path
        tracer = self._tracer
        if tracer is not None:
            # Ingress is where a walk gains (or is sampled out of) its
            # trace: a context minted here rides every fwd frame of the
            # walk, so sampled traces are always complete trees.
            ctx = message.get("trace")
            if ctx is None and tracer.sample_walk():
                ctx = {"id": tracer.new_trace_id(), "parent": None}
            if ctx is not None:
                walk["trace"] = ctx
        return await self._handle_walk(walk)

    async def _handle_walk(self, message: dict) -> dict:
        """One upstream stop of the request walk (and its downstream unwind)."""
        try:
            path = message["path"]
            index = message["index"]
            object_id = message["object_id"]
            size = message["size"]
            now = message["time"]
            reports = message["reports"]
        except KeyError as missing:
            raise ProtocolError(f"fwd frame missing field {missing}") from None
        if not isinstance(path, list) or not 0 <= index < len(path):
            raise ProtocolError("fwd frame carries no valid path position")
        if path[index] != self.node_id:
            raise ProtocolError(
                f"misrouted frame: position {index} of {path} is not "
                f"node {self.node_id}"
            )
        if now < self._clock:
            now = self._clock
        else:
            self._clock = now
        self.requests_handled += 1
        tracer = self._tracer
        ctx = message.get("trace") if tracer is not None else None
        if ctx is None:
            # Untraced walk (tracing off, or sampled out at ingress):
            # the exact pre-tracing code path.
            return await self._walk(
                message, path, index, object_id, size, now, reports, None
            )
        span = {
            "trace": ctx.get("id"),
            "span": tracer.new_span_id(),
            "parent": ctx.get("parent"),
            "node": self.node_id,
            "shard": tracer.shard,
            "op": "walk",
            "status": "ok",
            "t": now,
            "object": object_id,
            "size": size,
            "index": index,
            "path": list(path),
            "skipped": [],
            "retries": 0,
            "failovers": 0,
            "piggyback": 0,
            "xshard": False,
            "inflight": self.inflight,
            "start": time.time(),
        }
        begin = time.perf_counter()
        try:
            reply = await self._walk(
                message, path, index, object_id, size, now, reports, span
            )
        except BaseException as error:
            # The walk died at or above this hop (exhausted failover,
            # remote handler error); the span records it so partial
            # traces still show how far the request got.
            span["status"] = type(error).__name__
            span["wall"] = time.perf_counter() - begin
            tracer.emit(span)
            raise
        span["hit_index"] = reply.get("hit_index")
        span["wall"] = time.perf_counter() - begin
        tracer.emit(span)
        return reply

    async def _walk(
        self,
        message: dict,
        path: list,
        index: int,
        object_id,
        size: int,
        now: float,
        reports: list,
        span: Optional[dict],
    ) -> dict:
        """The walk body; ``span`` (when tracing) only observes it."""
        last = len(path) - 1
        scheme = self.scheme

        if index == last:
            # Origin attachment: the origin itself serves; decide from the
            # piggybacked reports and start the downstream unwind.
            decision = _timed(
                span,
                "decide",
                scheme.decide_step,
                path,
                last,
                self._decoded_reports(reports),
                object_id,
                size,
                now,
            )
            reply = {
                "type": MSG_RESP,
                "hit_index": last,
                "decision": decision,
                "inserted": [],
                "evictions": 0,
            }
            if span is not None:
                reply["trace"] = {"id": span["trace"], "span": span["span"]}
            return reply

        hit, report = _timed(
            span, "lookup", scheme.lookup_step, self.node_id, object_id, size, now
        )
        stats = self.registry.node(self.node_id)
        if hit:
            stats.hits += 1
            stats.bytes_read += size
            if self.subscriber is not None:
                # Channel mode: log the hit so a later event can judge
                # retroactively whether it was served off a stale copy.
                self.subscriber.note_hit(object_id, now, size)
            decision = _timed(
                span,
                "decide",
                scheme.decide_step,
                path,
                index,
                self._decoded_reports(reports),
                object_id,
                size,
                now,
            )
            reply = {
                "type": MSG_RESP,
                "hit_index": index,
                "decision": decision,
                "inserted": [],
                "evictions": 0,
            }
            if span is not None:
                reply["trace"] = {"id": span["trace"], "span": span["span"]}
            return reply

        stats.misses += 1
        if report is not None:
            payload = report.to_dict() if hasattr(report, "to_dict") else report
            reports.append(payload)
            if self._piggyback:
                added = REPORT_BYTES if payload.get("d") else TAG_BYTES
                stats.piggyback_bytes += added
                if span is not None:
                    span["piggyback"] += added
        # Forward upstream, failing over past dead hops: each candidate
        # frame keeps the FULL original path (the decision's node-id set
        # and the cost accounting both need it) plus the indices the walk
        # bypassed.  An unreachable origin attachment has nothing left to
        # fail over to and the error propagates downstream.
        skipped = list(message.get("skipped", []))
        next_index = index + 1
        while True:
            upstream = {
                "type": MSG_FWD,
                "path": path,
                "index": next_index,
                "object_id": object_id,
                "size": size,
                "time": now,
                "reports": reports,
                "skipped": skipped,
            }
            if span is not None:
                upstream["trace"] = {
                    "id": span["trace"],
                    "parent": span["span"],
                }
            if (
                self._shard_of is not None
                and self._shard_of.get(path[next_index]) != self._home_shard
            ):
                stats.cross_shard_fwds += 1
                if span is not None:
                    span["xshard"] = True
            try:
                if span is None:
                    reply = await self._call_upstream(path[next_index], upstream)
                else:
                    t0 = time.perf_counter()
                    try:
                        reply = await self._call_upstream(
                            path[next_index], upstream, span
                        )
                    finally:
                        # Cumulative over failover candidates: the whole
                        # time this hop spent waiting on upstreams,
                        # retries and backoff included.
                        span["upstream"] = span.get("upstream", 0.0) + (
                            time.perf_counter() - t0
                        )
                break
            except RETRYABLE_ERRORS:
                if next_index >= last:
                    raise
                stats.failovers += 1
                skipped.append(next_index)
                if span is not None:
                    span["failovers"] += 1
                    span["skipped"].append(next_index)
                if self._piggyback:
                    stats.piggyback_bytes += SKIPPED_NODE_BYTES
                    if span is not None:
                        span["piggyback"] += SKIPPED_NODE_BYTES
                next_index += 1
        if reply.get("type") != MSG_RESP:
            raise ProtocolError(
                f"expected resp frame from upstream, got {reply.get('type')!r}"
            )

        # Downstream unwind: the object physically traversed every link
        # from path[next_index] down (a bypassed node's cache process is
        # dead, its router still forwards); apply the shipped decision at
        # this node, charging that whole segment.
        decision = reply["decision"]
        inserted, evictions = _timed(
            span,
            "deliver",
            scheme.deliver_step,
            index,
            path,
            decision,
            object_id,
            size,
            now,
            came_from=next_index,
        )
        if inserted:
            reply["inserted"].append(self.node_id)
            stats.insertions += 1
            stats.bytes_written += size
            if self.subscriber is not None:
                self.subscriber.note_insert(object_id, now)
        reply["evictions"] += evictions
        if self._piggyback:
            if self.node_id in decision["cache_at"]:
                stats.piggyback_bytes += DECISION_BYTES
                if span is not None:
                    span["piggyback"] += DECISION_BYTES
            if next_index == reply["hit_index"]:
                # First downstream carrier of the response accumulator --
                # the hop directly below the serving node in the chain of
                # nodes that actually answered.
                stats.piggyback_bytes += ACCUMULATOR_BYTES
                if span is not None:
                    span["piggyback"] += ACCUMULATOR_BYTES
        return reply

    async def _call_upstream(
        self, node: int, message: dict, span: Optional[dict] = None
    ) -> dict:
        """One logical upstream call: breaker gate + bounded retry loop.

        Timeouts, unreachable peers and damaged frames are retried with
        exponential backoff (jitter drawn from the node's seeded RNG);
        anything else -- notably a remote handler error -- propagates
        immediately, because the remote side may already have mutated
        state.  An exhausted call feeds the upstream's circuit breaker;
        while the breaker is open, calls fail fast without touching the
        transport, which is what lets a walk skip a dead parent without
        paying the retry schedule on every request.
        """
        breaker = self.breakers.get(node)
        if breaker is None:
            breaker = self.resilience.new_breaker()
            self.breakers[node] = breaker
        stats = self.registry.node(self.node_id)
        if not breaker.allow():
            raise NodeUnreachable(
                f"circuit to upstream node {node} is open (failing fast)"
            )
        policy = self.resilience.retry
        attempt = 0
        while True:
            try:
                reply = await self._forward(node, message)
            except RETRYABLE_ERRORS as error:
                if isinstance(error, CallTimeout):
                    stats.rpc_timeouts += 1
                attempt += 1
                if attempt >= policy.attempts:
                    if breaker.record_failure():
                        stats.breaker_trips += 1
                    raise
                stats.rpc_retries += 1
                if span is not None:
                    span["retries"] += 1
                delay = policy.delay(attempt - 1, self._rng)
                if delay > 0:
                    await asyncio.sleep(delay)
            else:
                breaker.record_success()
                return reply

    def _decoded_reports(self, reports: list) -> list:
        """Reports in the form the scheme's decision step expects."""
        if not self._coordinated:
            return reports
        from repro.core.piggyback import NodeReport

        return [NodeReport.from_dict(raw) for raw in reports]

    # -- control plane -------------------------------------------------------

    def _handle_invalidate(self, message: dict) -> dict:
        try:
            object_id = message["object_id"]
        except KeyError as missing:
            raise ProtocolError(f"inv frame missing field {missing}") from None
        if self._piggyback:
            # One in-band inv frame delivered to this node: priced into
            # the coordination overhead exactly as the simulator counts
            # it (channel-mode coherency never sends these).
            self.scheme.protocol_stats.invalidations += 1
        tracer = self._tracer
        ctx = message.get("trace") if tracer is not None else None
        if ctx is None:
            removed = self.scheme.invalidate_step(self.node_id, object_id)
            return {
                "type": MSG_INV_OK,
                "node": self.node_id,
                "removed": removed,
            }
        start = time.time()
        t0 = time.perf_counter()
        removed = self.scheme.invalidate_step(self.node_id, object_id)
        tracer.emit(
            {
                "trace": ctx.get("id"),
                "span": tracer.new_span_id(),
                "parent": ctx.get("parent"),
                "node": self.node_id,
                "shard": tracer.shard,
                "op": "inv",
                "status": "ok",
                "object": object_id,
                "removed": removed,
                "start": start,
                "wall": time.perf_counter() - t0,
            }
        )
        return {"type": MSG_INV_OK, "node": self.node_id, "removed": removed}

    async def _handle_event(self, message: dict) -> dict:
        """One pushed channel event (see :mod:`repro.serve.channel`)."""
        if self.subscriber is None:
            raise ProtocolError(
                f"node {self.node_id} has no channel subscription"
            )
        try:
            group = message["group"]
            seq = message["seq"]
            event_time = message["time"]
        except KeyError as missing:
            raise ProtocolError(
                f"event frame missing field {missing}"
            ) from None
        removed = await self.subscriber.deliver(
            group, seq, event_time, self._clock
        )
        return {"type": MSG_EVENT_OK, "node": self.node_id, "removed": removed}

    async def _handle_chsync(self, message: dict) -> dict:
        """Drain-time channel sync: catch up to the broker's latest seqs."""
        if self.subscriber is None:
            raise ProtocolError(
                f"node {self.node_id} has no channel subscription"
            )
        removed = await self.subscriber.sync(
            message.get("latest", {}), self._clock
        )
        return {
            "type": MSG_CHSYNC_OK,
            "node": self.node_id,
            "removed": removed,
            "pending": self.subscriber.pending(),
        }

    def _handle_stats(self) -> dict:
        snapshot = self.registry.snapshot().get(self.node_id, {})
        reply = {
            "type": MSG_STATS_OK,
            "node": self.node_id,
            "requests_handled": self.requests_handled,
            "cached_bytes": self.scheme.total_cached_bytes(),
            "stats": snapshot,
        }
        if self.subscriber is not None:
            reply["channel"] = self.subscriber.to_dict()
        return reply
