"""Live serving of the coordinated cascaded-cache protocol.

Where :mod:`repro.sim` *replays* a trace against one in-process scheme
object, :mod:`repro.serve` *runs* the same schemes as a cluster of
asyncio cache-node servers speaking the paper's protocol over real
transports -- piggybacked upstream reports, a shipped placement
decision, and the downstream cost accumulator, all as wire frames.

The layer is built so that serving can never drift from the simulator:
nodes call the very same per-node protocol steps
(:meth:`~repro.schemes.base.CachingScheme.lookup_step` /
``decide_step`` / ``deliver_step``) the simulator's
``process_request`` is built from, and a differential oracle
(``tests/test_serve_cluster.py``) pins an in-process replay to the
simulator's metrics bit-for-bit.

See ``docs/serving.md`` for the wire protocol and deployment notes.
"""

from repro.serve.channel import (
    BROKER_NODE_ID,
    ChannelBroker,
    ChannelSubscriber,
    merge_channel_stats,
)
from repro.serve.cluster import Cluster
from repro.serve.loadgen import ClusterClient, LoadGenerator, LoadReport
from repro.serve.metrics_http import MetricsServer
from repro.serve.node import CacheNode, ResilienceConfig
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    RETRYABLE_ERRORS,
    CallTimeout,
    FrameCorruption,
    FrameDecoder,
    NodeBusy,
    NodeUnreachable,
    ProtocolError,
    RemoteProtocolError,
    decode_payload,
    encode_frame,
    is_retryable,
)
from repro.serve.shard import (
    HashRing,
    ShardedCluster,
    ShardPlan,
    ShardSpec,
    fetch_stats,
)
from repro.serve.tracing import NodeTracer, TracingConfig, shard_trace_path
from repro.serve.transport import (
    CircuitBreaker,
    InProcessTransport,
    RetryPolicy,
    TCPTransport,
    Transport,
)

__all__ = [
    "BROKER_NODE_ID",
    "CacheNode",
    "CallTimeout",
    "ChannelBroker",
    "ChannelSubscriber",
    "CircuitBreaker",
    "Cluster",
    "ClusterClient",
    "FrameCorruption",
    "FrameDecoder",
    "HashRing",
    "InProcessTransport",
    "LoadGenerator",
    "LoadReport",
    "MAX_FRAME_BYTES",
    "MetricsServer",
    "NodeBusy",
    "NodeTracer",
    "NodeUnreachable",
    "ProtocolError",
    "RETRYABLE_ERRORS",
    "RemoteProtocolError",
    "ResilienceConfig",
    "RetryPolicy",
    "ShardPlan",
    "ShardSpec",
    "ShardedCluster",
    "TCPTransport",
    "TracingConfig",
    "Transport",
    "decode_payload",
    "encode_frame",
    "fetch_stats",
    "is_retryable",
    "merge_channel_stats",
    "shard_trace_path",
]
