"""Multi-process sharding of the live cluster.

One Python process cannot push a cascade past a single core.  This
module splits an :class:`~repro.sim.architecture.Architecture` across
worker **shards** -- separate OS processes, each hosting the
:class:`~repro.serve.node.CacheNode` instances of the network nodes it
owns -- wired together over the existing TCP transport, so a request
walk crosses shard boundaries with ordinary ``fwd`` frames and nothing
above the transport changes.

Three pieces:

* :class:`HashRing` / :class:`ShardPlan` -- a consistent-hash
  assignment of network nodes to shards.  The ring is what makes the
  split *stable*: growing from N to N+1 shards remaps only the nodes
  that land on the new shard's ring points, not the whole topology.
  The **client edge** falls out of the same map: a client's ingress
  shard is the shard that owns its attachment node
  (:meth:`ShardPlan.client_shard`), so any frontend that can hash a
  node id routes clients without consulting a directory.
* :class:`ShardSpec` / :func:`_shard_worker_main` -- the picklable
  work order shipped to each ``spawn`` worker, and the worker's
  entrypoint: bind the owned nodes on TCP, rendezvous the address maps
  through a pipe, serve until told to stop, then drain and report
  final per-node stats.
* :class:`ShardedCluster` -- the parent-side orchestrator: spawns the
  workers, merges and re-broadcasts the address map, and tears the
  fleet down in order.

Semantics are unchanged by construction: every node still runs the same
scheme steps on the same private state, paths still come from the shared
routing table, and same-shard forwards short-circuit through the
in-process transport (codec round trip included).  Admission control
(``max_inflight`` -> ``busy`` frames, see :mod:`repro.serve.node`) is
the backpressure story: an overloaded shard sheds instead of queueing
without bound, and clients retry or fail over around it.  The
``cross_shard_fwds`` counter makes the partitioning observable -- a
two-shard run of any non-trivial topology must show boundary crossings.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.node import ResilienceConfig
from repro.serve.protocol import MSG_STATS
from repro.serve.tracing import shard_trace_path
from repro.sim.architecture import Architecture
from repro.sim.config import SimulationConfig
from repro.workload.catalog import ObjectCatalog

# Virtual points per shard on the hash ring: enough to spread small
# topologies evenly, cheap enough that ring construction is trivial.
DEFAULT_REPLICAS = 64


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (sha1; never Python's salted hash)."""
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing of integer keys onto shard ids.

    Each shard contributes ``replicas`` virtual points; a key is owned
    by the first point at or clockwise after its hash.  Deterministic
    across processes and Python versions by construction.
    """

    def __init__(self, shard_ids: List[int], replicas: int = DEFAULT_REPLICAS):
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in shard_ids:
            for replica in range(replicas):
                points.append((_ring_hash(f"shard:{shard}:{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def assign(self, key: int) -> int:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        position = bisect.bisect_right(self._hashes, _ring_hash(f"node:{key}"))
        if position == len(self._hashes):
            position = 0
        return self._shards[position]


@dataclass(frozen=True)
class ShardPlan:
    """A complete nodes->shards assignment for one architecture."""

    num_shards: int
    assignment: Dict[int, int]

    @classmethod
    def compute(
        cls,
        architecture: Architecture,
        num_shards: int,
        replicas: int = DEFAULT_REPLICAS,
    ) -> "ShardPlan":
        """Ring-assign every network node; guarantee no shard is empty.

        The consistent-hash pass can starve a shard on small topologies;
        the deterministic repair loop moves the largest-id node from the
        most-loaded shard into each empty one, so every worker process
        always has at least one node to host.
        """
        nodes = sorted(architecture.network.nodes())
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if num_shards > len(nodes):
            raise ValueError(
                f"cannot spread {len(nodes)} nodes over {num_shards} shards"
            )
        ring = HashRing(list(range(num_shards)), replicas=replicas)
        assignment = {node: ring.assign(node) for node in nodes}
        members: Dict[int, List[int]] = {s: [] for s in range(num_shards)}
        for node, shard in assignment.items():
            members[shard].append(node)
        for shard in range(num_shards):
            while not members[shard]:
                donor = max(
                    members, key=lambda s: (len(members[s]), -s)
                )
                moved = max(members[donor])
                members[donor].remove(moved)
                members[shard].append(moved)
                assignment[moved] = shard
        return cls(num_shards=num_shards, assignment=dict(assignment))

    def nodes_of(self, shard_id: int) -> List[int]:
        return sorted(
            node for node, s in self.assignment.items() if s == shard_id
        )

    def client_shard(self, architecture: Architecture, client_id: int) -> int:
        """The ingress shard of a client: its attachment node's owner."""
        return self.assignment[architecture.client_nodes[client_id]]


@dataclass
class ShardSpec:
    """Everything one worker process needs to host its shard.

    Shipped through ``multiprocessing`` pickling at spawn; every field
    is plain data.  ``assignment`` is the *full* plan (the worker needs
    it to stamp ``cross_shard_fwds``), ``nodes`` the subset it owns.
    """

    shard_id: int
    nodes: List[int]
    assignment: Dict[int, int]
    architecture: Architecture
    catalog: ObjectCatalog
    scheme_name: str
    config: SimulationConfig
    params: dict = field(default_factory=dict)
    resilience: Optional[ResilienceConfig] = None
    seed: int = 0
    host: str = "127.0.0.1"
    max_inflight: Optional[int] = None
    rpc_timeout: Optional[float] = None
    metrics: bool = False
    # Distributed tracing: this worker's own span JSONL file (workers
    # are separate processes and cannot share a file handle), or None
    # for the exact untraced path.
    trace_path: Optional[str] = None
    trace_sample_every: int = 1


def _shard_worker_main(spec: ShardSpec, conn) -> None:
    """Entrypoint of one shard worker process (spawn-safe, module level).

    Pipe protocol, in order:

    1. worker -> parent: ``("addresses", {node: (host, port)}, metrics)``
    2. parent -> worker: ``("peers", {node: (host, port)})`` -- the
       merged map of *every* shard's nodes;
    3. worker -> parent: ``("ready",)`` -- the peer map is installed;
       only after every shard acks may the parent admit traffic (a
       frame could otherwise reach a worker that cannot forward yet);
    4. parent -> worker: ``("stop",)`` -- drain in-flight walks, reply
       ``("stats", {node: {...}})`` with the final counters, exit.

    Any crash is reported as ``("error", traceback_text)`` so the parent
    fails loudly instead of hanging on a dead pipe.
    """
    import asyncio
    import random
    import signal

    # The parent owns shutdown (pipe "stop"); a terminal Ctrl-C -- or a
    # SIGTERM fanned out to the process group by wrappers like
    # `timeout` -- must not race the workers into dying before they
    # have drained and reported their final stats.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    from repro.costs.model import LatencyCostModel
    from repro.obs.export import JsonlTraceWriter
    from repro.obs.probe import Probe
    from repro.serve.metrics_http import MetricsServer
    from repro.serve.node import CacheNode
    from repro.serve.tracing import NodeTracer
    from repro.serve.transport import InProcessTransport, TCPTransport
    from repro.sim.factory import build_scheme

    async def serve() -> None:
        architecture = spec.architecture
        catalog = spec.catalog
        cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
        capacity = spec.config.capacity_bytes(catalog.total_bytes)
        dcache_entries = spec.config.dcache_entries(
            catalog.total_bytes, catalog.mean_size
        )
        resilience = (
            spec.resilience if spec.resilience is not None else
            ResilienceConfig()
        )
        transport = TCPTransport(
            host=spec.host, call_timeout=spec.rpc_timeout
        )
        local = InProcessTransport()
        peers: Dict[int, Tuple[str, int]] = {}
        owned = set(spec.nodes)

        async def forward(node_id: int, message: dict) -> dict:
            # Same-shard hops short-circuit in process (through the real
            # codec); cross-shard hops are ordinary TCP frames.
            if node_id in owned:
                return await local.call(node_id, message)
            return await transport.call(peers[node_id], message)

        nodes: Dict[int, CacheNode] = {}
        addresses: Dict[int, Tuple[str, int]] = {}
        metrics_servers: List[MetricsServer] = []
        metrics_addresses: Dict[int, Tuple[str, int]] = {}
        trace_writer = None
        trace_probe = None
        if spec.trace_path is not None:
            trace_writer = JsonlTraceWriter(spec.trace_path)
            trace_probe = Probe(
                trace_writer,
                sample_every=spec.trace_sample_every,
                kinds=("span",),
            )
        for node_id in sorted(owned):
            node = CacheNode(
                node_id,
                build_scheme(
                    spec.scheme_name,
                    cost_model,
                    capacity,
                    dcache_entries,
                    **spec.params,
                ),
                architecture.request_path,
                forward,
                resilience=resilience,
                rng=random.Random(f"{spec.seed}:{node_id}"),
                max_inflight=spec.max_inflight,
                shard_of=spec.assignment,
                tracer=(
                    NodeTracer(node_id, trace_probe, shard=spec.shard_id)
                    if trace_probe is not None
                    else None
                ),
            )
            nodes[node_id] = node
            addresses[node_id] = await transport.start_node(
                node_id, node.handle
            )
            await local.start_node(node_id, node.handle)
            if spec.metrics:
                server = MetricsServer(node.registry, host=spec.host, port=0)
                metrics_servers.append(server)
                metrics_addresses[node_id] = await server.start()
        conn.send(("addresses", addresses, metrics_addresses))

        loop = asyncio.get_running_loop()
        message = await loop.run_in_executor(None, conn.recv)
        if message[0] != "peers":
            raise RuntimeError(f"expected peers, got {message[0]!r}")
        peers.update(
            {int(n): (h, p) for n, (h, p) in message[1].items()}
        )
        conn.send(("ready",))

        message = await loop.run_in_executor(None, conn.recv)
        if message[0] != "stop":
            raise RuntimeError(f"expected stop, got {message[0]!r}")
        # Drain: let in-flight walks unwind before the sockets go away.
        deadline = loop.time() + 10.0
        while any(node.inflight for node in nodes.values()):
            if loop.time() >= deadline:
                break
            await asyncio.sleep(0.01)
        stats = {
            node_id: {
                "requests_handled": node.requests_handled,
                "cached_bytes": node.scheme.total_cached_bytes(),
                "stats": node.registry.snapshot().get(node_id, {}),
            }
            for node_id, node in sorted(nodes.items())
        }
        for server in metrics_servers:
            await server.close()
        await transport.close()
        await local.close()
        if trace_writer is not None:
            # Close before acking stop: the parent may read the span
            # files the moment stop() returns.
            trace_writer.close()
        conn.send(("stats", stats))

    try:
        asyncio.run(serve())
    except Exception:  # noqa: BLE001 - shipped to the parent verbatim
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ShardedCluster:
    """A cluster split across worker processes, one shard each.

    Synchronous orchestration API (the workers run their own event
    loops): :meth:`start` blocks until every shard is bound and knows
    every peer address, :meth:`stop` drains the fleet and collects the
    final per-node stats into :attr:`final_stats`.
    """

    def __init__(
        self,
        architecture: Architecture,
        catalog: ObjectCatalog,
        scheme_name: str,
        num_shards: int,
        config: Optional[SimulationConfig] = None,
        params: Optional[dict] = None,
        resilience: Optional[ResilienceConfig] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        max_inflight: Optional[int] = None,
        rpc_timeout: Optional[float] = None,
        metrics: bool = False,
        replicas: int = DEFAULT_REPLICAS,
        trace_path: Optional[str] = None,
        trace_sample_every: int = 1,
    ) -> None:
        self.architecture = architecture
        self.catalog = catalog
        self.scheme_name = scheme_name
        self.config = config if config is not None else SimulationConfig()
        self.params = dict(params) if params else {}
        self.resilience = resilience
        self.seed = seed
        self.host = host
        self.max_inflight = max_inflight
        self.rpc_timeout = rpc_timeout
        self.metrics = metrics
        # Base span-file path; worker i writes shard_trace_path(base, i).
        self.trace_path = trace_path
        self.trace_sample_every = trace_sample_every
        self.plan = ShardPlan.compute(
            architecture, num_shards, replicas=replicas
        )
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self.metrics_addresses: Dict[int, Tuple[str, int]] = {}
        self.final_stats: Dict[int, dict] = {}
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._pipes: List = []
        self._started = False

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def trace_paths(self) -> List[str]:
        """The per-shard span files a traced fleet writes, in shard order."""
        if self.trace_path is None:
            return []
        return [
            str(shard_trace_path(self.trace_path, shard))
            for shard in range(self.plan.num_shards)
        ]

    def start(self, timeout: float = 60.0) -> Dict[int, Tuple[str, int]]:
        """Spawn every shard; returns the merged node address map."""
        if self._started:
            raise RuntimeError("sharded cluster already started")
        ctx = multiprocessing.get_context("spawn")
        for shard_id in range(self.plan.num_shards):
            spec = ShardSpec(
                shard_id=shard_id,
                nodes=self.plan.nodes_of(shard_id),
                assignment=self.plan.assignment,
                architecture=self.architecture,
                catalog=self.catalog,
                scheme_name=self.scheme_name,
                config=self.config,
                params=self.params,
                resilience=self.resilience,
                seed=self.seed,
                host=self.host,
                max_inflight=self.max_inflight,
                rpc_timeout=self.rpc_timeout,
                metrics=self.metrics,
                trace_path=(
                    str(shard_trace_path(self.trace_path, shard_id))
                    if self.trace_path is not None
                    else None
                ),
                trace_sample_every=self.trace_sample_every,
            )
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker_main,
                args=(spec, child_conn),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._pipes.append(parent_conn)
        try:
            for shard_id, conn in enumerate(self._pipes):
                message = self._recv(conn, shard_id, timeout)
                if message[0] != "addresses":
                    raise RuntimeError(
                        f"shard {shard_id} failed to bind: {message[1]}"
                    )
                self.addresses.update(message[1])
                self.metrics_addresses.update(message[2])
            peers = {
                node: list(address)
                for node, address in self.addresses.items()
            }
            for conn in self._pipes:
                conn.send(("peers", peers))
            for shard_id, conn in enumerate(self._pipes):
                message = self._recv(conn, shard_id, timeout)
                if message[0] != "ready":
                    raise RuntimeError(
                        f"shard {shard_id} failed to install the peer map"
                    )
        except BaseException:
            self._kill()
            raise
        self._started = True
        return dict(self.addresses)

    def ingress_address(self, client_id: int) -> Tuple[str, int]:
        return self.addresses[
            self.architecture.client_nodes[client_id]
        ]

    def stop(self, timeout: float = 30.0) -> Dict[int, dict]:
        """Drain and stop every shard; returns the final per-node stats."""
        if not self._started:
            self._kill()
            return {}
        for conn in self._pipes:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for shard_id, conn in enumerate(self._pipes):
            try:
                message = self._recv(conn, shard_id, timeout)
            except RuntimeError:
                continue  # dead worker: surfaced by the missing stats
            if message[0] == "stats":
                self.final_stats.update(message[1])
        for process in self._processes:
            process.join(timeout=timeout)
        self._kill()
        self._started = False
        return dict(self.final_stats)

    @staticmethod
    def _recv(conn, shard_id: int, timeout: float):
        if not conn.poll(timeout):
            raise RuntimeError(
                f"shard {shard_id} did not answer within {timeout:.0f}s"
            )
        try:
            message = conn.recv()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"shard {shard_id} died before answering"
            ) from error
        if message[0] == "error":
            raise RuntimeError(
                f"shard {shard_id} crashed:\n{message[1]}"
            )
        return message

    def _kill(self) -> None:
        for process in self._processes:
            if process.is_alive():
                # Workers ignore SIGTERM by design (the pipe owns
                # shutdown), so escalate to SIGKILL if one lingers.
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:
                pass
        self._processes.clear()
        self._pipes.clear()

    def __enter__(self) -> "ShardedCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


async def fetch_stats(
    addresses: Dict[int, Tuple[str, int]]
) -> Dict[int, dict]:
    """Pull ``stats`` frames from a set of live nodes (any transport peer).

    The client-side complement of the workers' final-stats report: lets
    tests and smoke scripts assert on counters (``busy_rejections``,
    ``cross_shard_fwds``, hits/misses) while the fleet is still serving.
    """
    from repro.serve.transport import TCPTransport

    transport = TCPTransport()
    stats: Dict[int, dict] = {}
    try:
        for node_id in sorted(addresses):
            reply = await transport.call(
                addresses[node_id], {"type": MSG_STATS}
            )
            stats[node_id] = reply
    finally:
        await transport.close()
    return stats
