"""Wire protocol of the live cascaded-cache cluster.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by a UTF-8 JSON object with a string ``type`` field.  The frame
kinds mirror the paper's online protocol (section 2.3):

* ``get``   -- a client request, sent to the client's attachment node.
* ``fwd``   -- the request walking upstream: carries the delivery path,
  the walker's position, and the piggybacked per-node reports
  (the coordinated scheme's ``(f_i, m_i, l_i)`` records).
* ``resp``  -- the reply unwinding downstream: the serving position, the
  shipped placement decision (with the coordinated cost accumulator,
  advanced hop by hop), and the insertion/eviction tally.
* ``inv``/``inv-ok``     -- push invalidation of one object.
* ``sub``/``sub-ok``, ``pub``/``pub-ok``, ``event``/``event-ok``,
  ``catchup``/``catchup-ok``, ``chsync``/``chsync-ok``,
  ``chstats``/``chstats-ok`` -- the out-of-band invalidation channel
  (see :mod:`repro.serve.channel`): nodes subscribe to a broker, origins
  publish group stale events, the broker fans them out with per-group
  sequence numbers, and gap/drain recovery replays missed events.
* ``stats``/``stats-ok`` -- a node's live counter snapshot.
* ``ping``/``pong``      -- liveness probe.
* ``busy``  -- admission control: the node's inflight bound is hit and
  the request was shed *before* touching any cache state.  Surfaces at
  the caller as :class:`NodeBusy`, which is retryable -- backing off and
  trying again (or failing over past the overloaded hop) is always safe.
* ``error`` -- a structured protocol failure.

JSON floats round-trip exactly (shortest-repr encoding), which is what
lets an in-process replay of a trace through the cluster reproduce the
simulator's metrics bit-for-bit.

Framing is strict: zero-length frames, frames above
:data:`MAX_FRAME_BYTES`, truncated frames (peer death mid-message) and
payloads that are not JSON objects with a ``type`` all raise
:class:`ProtocolError` -- never a hang, never silent corruption.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import List, Optional

# Upper bound on one frame's payload.  Piggyback reports are a few tens
# of bytes per hop, so real frames sit around a kilobyte; the megabyte
# ceiling is purely a denial-of-service guard.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")
HEADER_BYTES = _LENGTH.size

MSG_GET = "get"
MSG_FWD = "fwd"
MSG_RESP = "resp"
MSG_INV = "inv"
MSG_INV_OK = "inv-ok"
MSG_SUB = "sub"
MSG_SUB_OK = "sub-ok"
MSG_PUB = "pub"
MSG_PUB_OK = "pub-ok"
MSG_EVENT = "event"
MSG_EVENT_OK = "event-ok"
MSG_CATCHUP = "catchup"
MSG_CATCHUP_OK = "catchup-ok"
MSG_CHSYNC = "chsync"
MSG_CHSYNC_OK = "chsync-ok"
MSG_CHSTATS = "chstats"
MSG_CHSTATS_OK = "chstats-ok"
MSG_STATS = "stats"
MSG_STATS_OK = "stats-ok"
MSG_PING = "ping"
MSG_PONG = "pong"
MSG_BUSY = "busy"
MSG_ERROR = "error"


class ProtocolError(Exception):
    """A framing or payload violation of the cluster protocol."""


class RemoteProtocolError(ProtocolError):
    """The peer answered with an ``error`` frame; carries its message."""


class CallTimeout(ProtocolError):
    """An RPC missed its deadline (reply lost, peer stalled, frame dropped)."""


class NodeUnreachable(ProtocolError):
    """The peer cannot be reached at all (dead node, refused connection)."""


class FrameCorruption(ProtocolError):
    """A frame arrived damaged and was rejected by the receiving side."""


class NodeBusy(ProtocolError):
    """The peer shed the request under admission control (``busy`` frame).

    Raised by the *calling* side when a reply is a ``busy`` frame.  The
    receiving node rejected the request before touching any cache state,
    so retrying (after backoff) or failing over past the overloaded hop
    is always safe.
    """


# Failures that a caller may safely retry or route around: the frame never
# produced a *trusted* reply (or, for ``busy``, the peer explicitly shed
# the request before mutating anything), so trying again (or another
# upstream) is the correct reaction.  A RemoteProtocolError is
# deliberately NOT here -- the peer was alive and answered; its handler
# failing is not transient.
RETRYABLE_ERRORS = (CallTimeout, NodeUnreachable, FrameCorruption, NodeBusy)


def is_retryable(error: BaseException) -> bool:
    """Whether a failed call may be retried / failed over."""
    return isinstance(error, RETRYABLE_ERRORS)


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its length-prefixed wire form."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse and validate one frame payload."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame payload: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("type"), str):
        raise ProtocolError("frame payload missing string 'type' field")
    return message


def check_length(length: int, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate a decoded frame length before reading the payload."""
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return length


class FrameDecoder:
    """Incremental frame decoder for byte streams fed in arbitrary chunks.

    Used by the in-process transport and by tests that simulate partial
    reads; the asyncio path uses :func:`read_message` directly.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def at_boundary(self) -> bool:
        """Whether the stream can end here without truncating a frame."""
        return not self._buffer

    def feed(self, data: bytes) -> List[dict]:
        """Consume a chunk; return every message it completes."""
        self._buffer.extend(data)
        messages: List[dict] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return messages
            (length,) = _LENGTH.unpack_from(self._buffer)
            check_length(length, self.max_frame_bytes)
            end = HEADER_BYTES + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[HEADER_BYTES:end])
            del self._buffer[:end]
            messages.append(decode_payload(payload))

    def finish(self) -> None:
        """Assert the stream ended at a frame boundary."""
        if self._buffer:
            raise ProtocolError(
                f"stream ended mid-frame ({len(self._buffer)} bytes pending)"
            )


async def read_message(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{HEADER_BYTES} bytes)"
        ) from None
    (length,) = _LENGTH.unpack(header)
    check_length(length, max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        ) from None
    return decode_payload(payload)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and drain the transport buffer."""
    writer.write(encode_frame(message))
    await writer.drain()


def error_message(error: Exception) -> dict:
    """The ``error`` frame reporting a handler or protocol failure."""
    detail = str(error) or type(error).__name__
    return {"type": MSG_ERROR, "error": type(error).__name__, "detail": detail}


def raise_if_error(message: dict) -> dict:
    """Raise :class:`RemoteProtocolError` when the reply is an error frame.

    A ``busy`` frame -- the peer shedding the request under admission
    control -- surfaces as the retryable :class:`NodeBusy` instead.
    """
    kind = message.get("type")
    if kind == MSG_BUSY:
        raise NodeBusy(
            f"node {message.get('node')} shed the request "
            f"(inflight {message.get('inflight')})"
        )
    if kind == MSG_ERROR:
        raise RemoteProtocolError(
            f"{message.get('error', 'error')}: {message.get('detail', '')}"
        )
    return message
