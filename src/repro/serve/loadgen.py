"""Async load generation against a live cluster.

Drives any :class:`~repro.workload.trace.Trace` through a running
:class:`~repro.serve.cluster.Cluster` and reports two views of the run:

* the **modelled** metrics -- every ``resp`` frame is folded back into a
  :class:`~repro.metrics.collector.MetricsCollector` with the paper's
  cost-model latency, so a live replay yields the same
  :class:`~repro.metrics.collector.MetricsSummary` shape the simulator
  produces (and, in sequential mode, the identical summary);
* the **observed** wall-clock latencies of the protocol round trips,
  summarized as mean/p50/p90/p99 -- the live-serving numbers the
  simulator cannot produce.

Three driving modes:

* ``sequential`` -- one request at a time, in trace order, interleaving
  the update stream exactly as the simulator's engine does.  This is the
  differential-oracle mode: over the in-process transport it reproduces
  the engine's summary bit-for-bit.
* ``closed`` -- ``concurrency`` workers, each with one outstanding
  request; a worker sends its next request the moment its previous one
  completes.  Completion order is nondeterministic, so outcomes are
  folded into the collector in trace-index order afterwards, keeping the
  modelled summary deterministic for a given outcome set.
* ``open`` -- requests fire at their trace timestamps (compressed by
  ``speedup``) regardless of completions, measuring behavior under an
  offered load rather than a load ceiling.  A single pacer coroutine
  walks the trace and spawns one task per due request, so memory is
  O(in-flight requests), never O(trace); ``open_inflight_limit`` caps
  the in-flight set, with over-cap fires counted as ``shed`` (the
  client-side queue overflowing under an offered load the system cannot
  absorb).

Failure accounting (closed/open modes): a server's ``busy`` frame is
retried ``busy_retries`` times with a short backoff; a request still
``busy`` after that counts as ``rejected`` -- explicit backpressure, not
a failure.  Any other exception (protocol violations *and* raw
transport/OS errors) counts as an error; once ``errors > max_errors``
the run stops issuing new requests and drains what is in flight, but the
partial :class:`LoadReport` is always produced (``aborted=True``) --
never lost to a cancelled gather.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.coherency.stats import CoherencyStats
from repro.core.piggyback import INV_FRAME_BYTES
from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.schemes.base import RequestOutcome
from repro.serve.channel import merge_channel_stats
from repro.serve.cluster import Cluster
from repro.serve.protocol import (
    MSG_CHSTATS,
    MSG_CHSYNC,
    MSG_GET,
    MSG_PUB,
    MSG_STATS,
    NodeBusy,
)
from repro.workload.trace import Trace, TraceRecord
from repro.workload.updates import (
    GroupUpdateEvent,
    UpdateEvent,
    expand_group_events,
)

MODES = ("sequential", "closed", "open")


class ClusterClient:
    """Client-side view of a running cluster, e.g. from a serve manifest.

    Exposes the subset of :class:`~repro.serve.cluster.Cluster` the
    :class:`LoadGenerator` drives -- ingress resolution, the transport,
    the cost model, invalidation broadcast -- without owning any node,
    so a load generator in one process can target ``repro serve`` nodes
    in another.  The architecture must be rebuilt from the same
    parameters the server used (the manifest records them); attachment
    and routing are deterministic given those parameters.

    For a channel-mode server the manifest additionally carries the
    broker address and the group parameters; with those set,
    :meth:`apply_update` publishes to the broker instead of
    broadcasting inv frames, and :meth:`coherency_report` merges the
    broker's and every node's channel accounting over the wire.
    """

    def __init__(
        self,
        architecture,
        cost_model,
        addresses,
        transport,
        coherency=None,
        groups=None,
        broker_address=None,
    ) -> None:
        if (
            coherency is not None
            and coherency.mode == "channel"
            and (groups is None or broker_address is None)
        ):
            raise ValueError(
                "a channel-mode client needs the broker address and the "
                "group assignment from the serve manifest"
            )
        self.architecture = architecture
        self.cost_model = cost_model
        self.addresses = dict(addresses)
        self.transport = transport
        # Mirror of Cluster's coherency-plane scoping: only cache
        # nodes receive inv frames or channel syncs (the origin never
        # subscribes, and chsync on a non-subscriber is a protocol
        # error).
        self._cache_nodes = frozenset(architecture.cache_nodes)
        self.coherency = coherency
        self.groups = groups
        self.broker_address = (
            broker_address if coherency is not None
            and coherency.mode == "channel" else None
        )
        self._updates_published = 0
        self._inv_frames = 0
        self._copies_invalidated = 0

    def ingress_address(self, client_id: int):
        return self.addresses[self.architecture.client_nodes[client_id]]

    async def invalidate(self, object_id: int) -> int:
        removed = 0
        for node_id in sorted(self.addresses):
            if node_id not in self._cache_nodes:
                continue
            reply = await self.transport.call(
                self.addresses[node_id],
                {"type": "inv", "object_id": object_id},
            )
            removed += reply["removed"]
            self._inv_frames += 1
        self._copies_invalidated += removed
        return removed

    async def apply_update(self, event) -> int:
        """Mirror of :meth:`Cluster.apply_update` over the wire."""
        self._updates_published += 1
        if self.broker_address is None:
            events = [event]
            if isinstance(event, GroupUpdateEvent):
                if self.groups is None:
                    raise ValueError(
                        "group-targeted updates require a group assignment"
                    )
                events = expand_group_events([event], self.groups)
            removed = 0
            for per_object in events:
                removed += await self.invalidate(per_object.object_id)
            return removed
        if isinstance(event, GroupUpdateEvent):
            group = event.group_id
        else:
            group = self.groups.group_of(event.object_id)
        reply = await self.transport.call(
            self.broker_address,
            {"type": MSG_PUB, "group": group, "time": event.time},
        )
        removed = reply["removed"]
        self._copies_invalidated += removed
        return removed

    async def channel_sync(self) -> dict:
        """Drive every node's catch-up to the broker's latest sequences."""
        if self.broker_address is None:
            return {}
        broker = await self.transport.call(
            self.broker_address, {"type": MSG_CHSTATS}
        )
        latest = broker["stats"].get("latest", {})
        pending = {}
        for node_id in sorted(self.addresses):
            if node_id not in self._cache_nodes:
                continue
            reply = await self.transport.call(
                self.addresses[node_id],
                {"type": MSG_CHSYNC, "latest": latest},
            )
            pending[node_id] = reply["pending"]
        return pending

    async def coherency_report(self) -> Optional[dict]:
        """Merged coherency accounting (None when no mode configured)."""
        if self.coherency is None:
            return None
        if self.broker_address is not None:
            broker = await self.transport.call(
                self.broker_address, {"type": MSG_CHSTATS}
            )
            node_stats = []
            for node_id in sorted(self.addresses):
                reply = await self.transport.call(
                    self.addresses[node_id], {"type": MSG_STATS}
                )
                if "channel" in reply:
                    node_stats.append(reply["channel"])
            return merge_channel_stats(broker["stats"], node_stats)
        stats = CoherencyStats(mode="inband")
        stats.events_published = self._updates_published
        stats.inv_frames = self._inv_frames
        stats.inv_bytes = self._inv_frames * INV_FRAME_BYTES
        stats.copies_invalidated = self._copies_invalidated
        return stats.to_dict()

    async def close(self) -> None:
        await self.transport.close()


@dataclass(frozen=True)
class LoadReport:
    """One load-generation run against a live cluster."""

    mode: str
    requests_total: int
    requests_measured: int
    summary: MetricsSummary
    duration_seconds: float
    # Measured-window throughput: completions past warm-up divided by the
    # wall span from the first measured issue to the last measured
    # completion.  None (JSON null) when the window is degenerate (no
    # measured completions, or a span below timer resolution) -- never a
    # misleading 0.0.
    requests_per_second: Optional[float]
    # None (JSON null) when no request completed -- never NaN.
    wall_latency_mean: Optional[float]
    wall_latency_percentiles: Tuple[
        Optional[float], Optional[float], Optional[float]
    ]
    updates_applied: int = 0
    copies_invalidated: int = 0
    errors: int = 0
    # Backpressure accounting: requests the cluster shed with ``busy``
    # frames even after client-side retries, and fires the open-loop
    # pacer dropped because the in-flight cap was reached.  Neither is an
    # error -- both are the system explicitly refusing offered load.
    rejected: int = 0
    shed: int = 0
    busy_retries: int = 0
    # True when the run stopped early because ``errors > max_errors``;
    # the report still covers everything that completed.
    aborted: bool = False
    # Where completed requests were served, over ALL completions (warm-up
    # included): cache_served + origin_served == completed requests, the
    # conservation law the chaos fault matrix asserts under node crashes.
    cache_served: int = 0
    origin_served: int = 0
    # Coherency accounting (None when the cluster has no coherency mode
    # configured): the merged CoherencyStats dict -- protocol bytes,
    # stale hits, staleness percentiles -- for the in-band vs. channel
    # comparison.
    coherency: Optional[dict] = None

    def to_dict(self) -> dict:
        s = self.summary
        return {
            "mode": self.mode,
            "requests_total": self.requests_total,
            "requests_measured": self.requests_measured,
            "cache_served": self.cache_served,
            "origin_served": self.origin_served,
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "wall_latency_mean": self.wall_latency_mean,
            "wall_latency_p50": self.wall_latency_percentiles[0],
            "wall_latency_p90": self.wall_latency_percentiles[1],
            "wall_latency_p99": self.wall_latency_percentiles[2],
            "updates_applied": self.updates_applied,
            "copies_invalidated": self.copies_invalidated,
            "errors": self.errors,
            "rejected": self.rejected,
            "shed": self.shed,
            "busy_retries": self.busy_retries,
            "aborted": self.aborted,
            "coherency": self.coherency,
            "modelled": {
                "mean_latency": s.mean_latency,
                "mean_response_ratio": s.mean_response_ratio,
                "byte_hit_ratio": s.byte_hit_ratio,
                "hit_ratio": s.hit_ratio,
                "mean_traffic_byte_hops": s.mean_traffic_byte_hops,
                "mean_hops": s.mean_hops,
                "mean_read_load": s.mean_read_load,
                "mean_write_load": s.mean_write_load,
            },
        }


def _percentiles(
    samples: Sequence[float],
) -> Tuple[Optional[float], Optional[float], Optional[float]]:
    """Nearest-rank p50/p90/p99 (the collector's convention).

    An empty sample set yields ``None`` entries -- serialized by
    ``json.dumps`` as standard ``null`` -- rather than ``nan``, which
    would be emitted as the non-standard bare ``NaN`` token.
    """
    if not samples:
        return (None, None, None)
    ordered = sorted(samples)
    return tuple(
        ordered[max(0, math.ceil(q * len(ordered)) - 1)]
        for q in (0.50, 0.90, 0.99)
    )


@dataclass
class _Completed:
    """One finished request, kept until the trace-order metrics fold."""

    index: int
    outcome: RequestOutcome
    latency: float
    wall_seconds: float
    # perf_counter stamps bounding the round trip (measured-window rps).
    started: float = 0.0
    finished: float = 0.0


@dataclass
class _Counters:
    """Mutable per-run failure/backpressure tally shared by the workers."""

    max_errors: int
    errors: int = 0
    rejected: int = 0
    shed: int = 0
    busy_retries: int = 0
    stop: asyncio.Event = field(default_factory=asyncio.Event)

    def record_error(self) -> None:
        self.errors += 1
        if self.errors > self.max_errors:
            self.stop.set()

    @property
    def aborted(self) -> bool:
        return self.stop.is_set()


class LoadGenerator:
    """Replays a trace against a cluster in one of three driving modes."""

    def __init__(
        self,
        cluster: Cluster,
        trace: Trace,
        updates: Sequence["UpdateEvent | GroupUpdateEvent"] = (),
        warmup_fraction: float = 0.5,
    ) -> None:
        if len(trace) == 0:
            raise ValueError("cannot drive a cluster with an empty trace")
        self.cluster = cluster
        self.trace = trace
        self.updates = list(updates)
        self.warmup_fraction = warmup_fraction
        self._path_cost = cluster.cost_model.path_cost
        self._request_path = cluster.architecture.request_path

    # -- one request ---------------------------------------------------------

    async def _issue(
        self, record: TraceRecord
    ) -> Tuple[RequestOutcome, float, float, float]:
        """Send one ``get`` and rebuild the simulator-shape outcome.

        Returns ``(outcome, wall_seconds, started, finished)`` with the
        perf_counter stamps bounding the round trip.
        """
        address = self.cluster.ingress_address(record.client_id)
        started = time.perf_counter()
        reply = await self.cluster.transport.call(
            address,
            {
                "type": MSG_GET,
                "client_id": record.client_id,
                "server_id": record.server_id,
                "object_id": record.object_id,
                "size": record.size,
                "time": record.time,
            },
        )
        finished = time.perf_counter()
        path = self._request_path(record.client_id, record.server_id)
        outcome = RequestOutcome(
            path=path,
            hit_index=reply["hit_index"],
            size=record.size,
            inserted_nodes=tuple(reply["inserted"]),
            evicted_objects=reply["evictions"],
        )
        return outcome, finished - started, started, finished

    async def _issue_with_backoff(
        self,
        record: TraceRecord,
        counters: _Counters,
        busy_retries: int,
        busy_backoff: float,
    ) -> Tuple[RequestOutcome, float, float, float]:
        """One logical request: retry ``busy`` frames before giving up."""
        attempt = 0
        while True:
            try:
                return await self._issue(record)
            except NodeBusy:
                if attempt >= busy_retries:
                    raise
                attempt += 1
                counters.busy_retries += 1
                await asyncio.sleep(busy_backoff * attempt)

    def _modelled_latency(self, outcome: RequestOutcome) -> float:
        return self._path_cost(
            outcome.path[: outcome.hit_index + 1], outcome.size
        )

    # -- driving modes -------------------------------------------------------

    async def run(
        self,
        mode: str = "sequential",
        concurrency: int = 1,
        speedup: float = 1000.0,
        max_errors: int = 0,
        open_inflight_limit: Optional[int] = None,
        busy_retries: int = 2,
        busy_backoff: float = 0.002,
    ) -> LoadReport:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        if open_inflight_limit is not None and open_inflight_limit < 1:
            raise ValueError("open_inflight_limit must be at least 1")
        if busy_retries < 0:
            raise ValueError("busy_retries must be non-negative")
        if mode == "closed" and self.updates:
            raise ValueError(
                "update streams require sequential or open mode "
                "(closed mode has no notion of trace time to pace them)"
            )
        started = time.perf_counter()
        counters = _Counters(max_errors=max_errors)
        self._busy_retries = busy_retries
        self._busy_backoff = busy_backoff
        if mode == "sequential":
            completed, applied, invalidated = await self._run_sequential()
        elif mode == "closed":
            completed = await self._run_closed(concurrency, counters)
            applied = invalidated = 0
        else:
            completed, applied, invalidated = await self._run_open(
                speedup, counters, open_inflight_limit
            )
        duration = time.perf_counter() - started
        # Converge the channel (no-op in-band) before reading the
        # coherency accounting, so the report never shows pending events
        # a chsync would have drained.
        cluster = getattr(self, "cluster", None)
        sync = getattr(cluster, "channel_sync", None)
        if sync is not None:
            await sync()
        coherency = None
        reporter = getattr(cluster, "coherency_report", None)
        if reporter is not None:
            coherency = await reporter()
        return self._report(
            mode, completed, duration, applied, invalidated, counters,
            coherency,
        )

    async def _run_sequential(self) -> Tuple[List[_Completed], int, int]:
        """Trace-order replay, mirroring the simulation engine's loop.

        Updates are applied the moment simulation time passes them --
        between requests, exactly where the engine applies them -- so an
        in-process run is step-for-step identical to the simulator.
        Deliberately strict: any failure propagates, because this is the
        differential-oracle mode and a partial replay proves nothing.
        """
        completed: List[_Completed] = []
        updates = self.updates
        update_index = 0
        applied = 0
        invalidated = 0
        for index, record in enumerate(self.trace):
            while (
                update_index < len(updates)
                and updates[update_index].time <= record.time
            ):
                invalidated += await self.cluster.apply_update(
                    updates[update_index]
                )
                applied += 1
                update_index += 1
            outcome, wall, began, ended = await self._issue(record)
            completed.append(
                _Completed(
                    index,
                    outcome,
                    self._modelled_latency(outcome),
                    wall,
                    began,
                    ended,
                )
            )
        return completed, applied, invalidated

    async def _fire(
        self, index: int, record: TraceRecord,
        completed: List[_Completed], counters: _Counters,
    ) -> None:
        """Issue one request, folding every failure into the counters.

        Nothing escapes: a ``busy`` that outlives its retries is a
        rejection, anything else -- protocol violations and raw
        transport/OS errors alike -- is counted and, past ``max_errors``,
        flips the stop flag.  No exception ever propagates to cancel the
        sibling in-flight requests.
        """
        try:
            outcome, wall, began, ended = await self._issue_with_backoff(
                record, counters, self._busy_retries, self._busy_backoff
            )
        except NodeBusy:
            counters.rejected += 1
            return
        except Exception:
            counters.record_error()
            return
        completed.append(
            _Completed(
                index,
                outcome,
                self._modelled_latency(outcome),
                wall,
                began,
                ended,
            )
        )

    async def _run_closed(
        self, concurrency: int, counters: _Counters
    ) -> List[_Completed]:
        """Fixed worker pool, one outstanding request per worker."""
        records = list(enumerate(self.trace))
        cursor = 0
        completed: List[_Completed] = []

        async def worker() -> None:
            nonlocal cursor
            while not counters.stop.is_set():
                position = cursor
                if position >= len(records):
                    return
                cursor = position + 1
                index, record = records[position]
                await self._fire(index, record, completed, counters)

        await asyncio.gather(*(worker() for _ in range(concurrency)))
        return completed

    async def _run_open(
        self,
        speedup: float,
        counters: _Counters,
        inflight_limit: Optional[int],
    ) -> Tuple[List[_Completed], int, int]:
        """Fire requests at their (compressed) trace timestamps.

        One pacer coroutine walks the trace in order, sleeps until each
        record's absolute fire time, and spawns a task for it -- the fire
        schedule is identical to materializing every task up front, but
        memory stays O(in-flight) and startup does not stampede the event
        loop with O(trace) simultaneous timers.

        Updates (when given) run on a sibling coroutine paced by the same
        compressed timeline, so origin updates land concurrently with the
        offered request load -- the configuration where channel-mode
        staleness is actually observable.  An update failure counts as an
        error like any request failure.
        """
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        trace_start = self.trace[0].time
        completed: List[_Completed] = []
        inflight: Set[asyncio.Task] = set()
        applied = 0
        invalidated = 0

        async def updater() -> None:
            nonlocal applied, invalidated
            for event in self.updates:
                offset = (event.time - trace_start) / speedup
                delay = epoch + offset - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                if counters.stop.is_set():
                    return
                try:
                    invalidated += await self.cluster.apply_update(event)
                    applied += 1
                except Exception:
                    counters.record_error()

        update_task = (
            loop.create_task(updater()) if self.updates else None
        )
        for index, record in enumerate(self.trace):
            if counters.stop.is_set():
                break
            offset = (record.time - trace_start) / speedup
            delay = epoch + offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if inflight_limit is not None and len(inflight) >= inflight_limit:
                # One event-loop yield lets finished requests run their
                # done-callbacks before the shed decision; open-loop
                # semantics forbid actually waiting for capacity.
                await asyncio.sleep(0)
                if len(inflight) >= inflight_limit:
                    counters.shed += 1
                    continue
            task = loop.create_task(
                self._fire(index, record, completed, counters)
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        if update_task is not None:
            await update_task
        return completed, applied, invalidated

    # -- reporting -----------------------------------------------------------

    def _report(
        self,
        mode: str,
        completed: List[_Completed],
        duration: float,
        applied: int,
        invalidated: int,
        counters: _Counters,
        coherency: Optional[dict] = None,
    ) -> LoadReport:
        """Fold completions into the paper's collector, in trace order."""
        warmup_end, total = self.trace.split_warmup(self.warmup_fraction)
        collector = MetricsCollector()
        wall: List[float] = []
        cache_served = 0
        origin_served = 0
        window_start = math.inf
        window_end = -math.inf
        measured = 0
        for item in sorted(completed, key=lambda c: c.index):
            wall.append(item.wall_seconds)
            if item.outcome.served_by_cache:
                cache_served += 1
            else:
                origin_served += 1
            if item.index >= warmup_end:
                collector.record(item.outcome, item.latency)
                measured += 1
                if item.started < window_start:
                    window_start = item.started
                if item.finished > window_end:
                    window_end = item.finished
        if collector.requests:
            summary = collector.summary()
        else:
            # Zero measured requests (every completion errored or landed
            # in warm-up): an all-zero summary with null percentiles
            # keeps the report shape stable and the JSON standard.
            summary = MetricsSummary(
                requests=0,
                mean_latency=0.0,
                mean_response_ratio=0.0,
                byte_hit_ratio=0.0,
                hit_ratio=0.0,
                mean_traffic_byte_hops=0.0,
                mean_hops=0.0,
                mean_read_load=0.0,
                mean_write_load=0.0,
                latency_percentiles=(None, None, None),
            )
        window = window_end - window_start
        # Raw wall samples outlive the report for callers that merge
        # percentiles across processes (multi-driver benchmarks); the
        # frozen LoadReport itself only carries the aggregates.
        self.last_wall_samples = wall
        return LoadReport(
            mode=mode,
            requests_total=total,
            requests_measured=collector.requests,
            summary=summary,
            duration_seconds=duration,
            requests_per_second=(
                measured / window if measured and window > 0 else None
            ),
            wall_latency_mean=(
                sum(wall) / len(wall) if wall else None
            ),
            wall_latency_percentiles=_percentiles(wall),
            updates_applied=applied,
            copies_invalidated=invalidated,
            errors=counters.errors,
            rejected=counters.rejected,
            shed=counters.shed,
            busy_retries=counters.busy_retries,
            aborted=counters.aborted,
            cache_served=cache_served,
            origin_served=origin_served,
            coherency=coherency,
        )
