"""Sliding-window access-frequency estimation.

Paper section 3.2: for each object, up to ``K`` most recent reference
times are recorded and the access frequency is ``f(O) = K' / (t - t_K')``
where ``K' <= K`` is the number of recorded references and ``t_K'`` the
oldest of them.  ``K = 3`` in the paper's experiments.  To bound overhead,
the estimate is refreshed only when the object is referenced and otherwise
at reasonably large intervals (10 minutes in the paper) to reflect aging.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

DEFAULT_WINDOW = 3
DEFAULT_AGING_INTERVAL = 600.0

# Windows shorter than this are treated as instantaneous: dividing by a
# subnormal elapsed time would overflow the estimate to infinity.
_MIN_ELAPSED = 1e-9


class SlidingWindowFrequencyEstimator:
    """Estimate request rate from the K most recent reference times.

    ``value(now)`` is cheap: it returns a cached estimate and only
    recomputes (to reflect aging) when at least ``aging_interval`` has
    passed since the last refresh.  A singleton reference with zero elapsed
    time falls back to one reference per aging interval, a conservative
    prior that avoids the division by zero in the paper's formula.
    """

    __slots__ = ("window", "aging_interval", "_times", "_value", "_refreshed_at")

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        aging_interval: float = DEFAULT_AGING_INTERVAL,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if aging_interval <= 0:
            raise ValueError("aging_interval must be positive")
        self.window = window
        self.aging_interval = aging_interval
        self._times: Deque[float] = deque(maxlen=window)
        self._value = 0.0
        self._refreshed_at = float("-inf")

    @property
    def reference_count(self) -> int:
        """Number of reference times currently recorded (``K'``)."""
        return len(self._times)

    def record(self, now: float) -> float:
        """Record a reference at time ``now`` and refresh the estimate."""
        if self._times and now < self._times[-1]:
            raise ValueError("reference times must be non-decreasing")
        self._times.append(now)
        return self._refresh(now)

    def value(self, now: float) -> float:
        """Current estimate; recomputed lazily at the aging interval."""
        if not self._times:
            return 0.0
        if now - self._refreshed_at >= self.aging_interval:
            return self._refresh(now)
        return self._value

    def peek(self) -> float:
        """Last computed estimate without any refresh."""
        return self._value

    def _refresh(self, now: float) -> float:
        elapsed = now - self._times[0]
        if elapsed >= _MIN_ELAPSED:
            self._value = len(self._times) / elapsed
        else:
            self._value = 1.0 / self.aging_interval
        self._refreshed_at = now
        return self._value

    def clone(self) -> "SlidingWindowFrequencyEstimator":
        """Deep copy (used when descriptors migrate between caches)."""
        copy = SlidingWindowFrequencyEstimator(self.window, self.aging_interval)
        copy._times.extend(self._times)
        copy._value = self._value
        copy._refreshed_at = self._refreshed_at
        return copy
