"""GreedyDual-Size cache [Cao & Irani 1997; Jin & Bestavros 2000].

A classic cost-aware single-cache policy from the paper's related-work
space (section 5 cites the popularity-aware variant [8]).  Each cached
object carries a priority ``H(O) = L + f(O) * cost(O) / s(O)`` where ``L``
is a running inflation value; eviction removes the minimum-priority
object and raises ``L`` to its priority, aging out objects that stopped
being referenced.  With the frequency factor this is GreedyDual-Size-
Popularity (GDSP); setting ``popularity_aware=False`` gives plain GDS.

The object's ``cost`` is taken from its descriptor's miss penalty, which
the schemes set to the immediate upstream link cost (the same convention
the LNC-R baseline uses).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.cache.base import Cache, CacheEntry


class GDSCache(Cache):
    """Cache ordered by inflated GreedyDual-Size priorities."""

    policy_name = "gds"

    def __init__(self, capacity_bytes: int, popularity_aware: bool = True) -> None:
        super().__init__(capacity_bytes)
        self.popularity_aware = popularity_aware
        self._inflation = 0.0
        self._order: List[Tuple[float, int]] = []
        self._keys: Dict[int, float] = {}

    @property
    def inflation(self) -> float:
        """The running aging value ``L``."""
        return self._inflation

    def _priority(self, entry: CacheEntry, now: float) -> float:
        descriptor = entry.descriptor
        value = descriptor.miss_penalty / descriptor.size
        if self.popularity_aware:
            value *= descriptor.frequency(now)
        return self._inflation + value

    def _insert_key(self, object_id: int, key: float) -> None:
        bisect.insort(self._order, (key, object_id))
        self._keys[object_id] = key

    def _delete_key(self, object_id: int) -> None:
        key = self._keys.pop(object_id)
        index = bisect.bisect_left(self._order, (key, object_id))
        if self._order[index] != (key, object_id):
            raise AssertionError("GDS order list out of sync")
        del self._order[index]

    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        victims: List[CacheEntry] = []
        freed = 0
        for _, object_id in self._order:
            if object_id == exclude:
                continue
            entry = self._entries[object_id]
            victims.append(entry)
            freed += entry.size
            if freed >= needed_bytes:
                break
        return victims

    def on_access(self, entry: CacheEntry, now: float) -> None:
        """Re-inflate the touched object's priority (GreedyDual refresh)."""
        entry.descriptor.record_access(now)
        self._delete_key(entry.object_id)
        self._insert_key(entry.object_id, self._priority(entry, now))

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._insert_key(entry.object_id, self._priority(entry, now))

    def on_remove(self, entry: CacheEntry) -> None:
        # Eviction raises L to the victim's priority -- the GreedyDual
        # aging step.  (Explicit invalidations inflate too; the effect is
        # a slightly faster aging, harmless for the baseline.)
        key = self._keys[entry.object_id]
        if key > self._inflation:
            self._inflation = key
        self._delete_key(entry.object_id)

    def eviction_order(self) -> List[int]:
        """Object ids from smallest to largest priority (for tests)."""
        return [object_id for _, object_id in self._order]

    def check_invariants(self) -> None:
        super().check_invariants()
        if len(self._order) != len(self._entries):
            raise AssertionError("GDS key bookkeeping drift")
        if any(key < self._inflation - 1e12 for key, _ in self._order):
            raise AssertionError("priority below inflation floor")
