"""Least-frequently-used cache.

Not used by any of the paper's object caches directly, but provided as a
classic baseline and as the policy backbone of the d-cache (which manages
descriptors by LFU, section 2.4).  Eviction order is lowest hit count
first, ties broken least-recently-used first; bookkeeping is O(1) via
frequency buckets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.cache.base import Cache, CacheEntry


class _FrequencyBuckets:
    """hit-count -> insertion-ordered ids, with O(1) promote/evict."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._buckets: Dict[int, "OrderedDict[int, None]"] = {}
        self._min_count = 0

    def __contains__(self, key: int) -> bool:
        return key in self._counts

    def count(self, key: int) -> int:
        return self._counts[key]

    def add(self, key: int) -> None:
        if key in self._counts:
            raise KeyError(f"duplicate key {key}")
        self._counts[key] = 1
        self._buckets.setdefault(1, OrderedDict())[key] = None
        self._min_count = 1

    def promote(self, key: int) -> None:
        count = self._counts[key]
        bucket = self._buckets[count]
        del bucket[key]
        if not bucket:
            del self._buckets[count]
            if self._min_count == count:
                self._min_count = count + 1
        self._counts[key] = count + 1
        self._buckets.setdefault(count + 1, OrderedDict())[key] = None

    def discard(self, key: int) -> None:
        count = self._counts.pop(key, None)
        if count is None:
            return
        bucket = self._buckets[count]
        del bucket[key]
        if not bucket:
            del self._buckets[count]
            if self._min_count == count:
                self._min_count = min(self._buckets, default=0)

    def eviction_order(self):
        """Yield keys lowest-count-first, LRU-first within a count."""
        for count in sorted(self._buckets):
            yield from self._buckets[count]


class LFUCache(Cache):
    """Evicts least-frequently-accessed objects first (ties: LRU)."""

    policy_name = "lfu"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._buckets = _FrequencyBuckets()

    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        victims: List[CacheEntry] = []
        freed = 0
        for object_id in self._buckets.eviction_order():
            if object_id == exclude:
                continue
            entry = self._entries[object_id]
            victims.append(entry)
            freed += entry.size
            if freed >= needed_bytes:
                break
        return victims

    def hit_count(self, object_id: int) -> int:
        """Accesses recorded for a cached object (for tests)."""
        return self._buckets.count(object_id)

    def on_access(self, entry: CacheEntry, now: float) -> None:
        self._buckets.promote(entry.object_id)

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._buckets.add(entry.object_id)

    def on_remove(self, entry: CacheEntry) -> None:
        self._buckets.discard(entry.object_id)
