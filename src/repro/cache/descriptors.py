"""Object descriptors (cache-substrate home of the paper's meta information).

Paper section 2.3: every cache maintains meta information per object --
the object size, its access frequency (estimated from recent reference
timestamps) and its miss penalty with respect to the node.  Descriptors
live either attached to a cached copy in the main cache or standalone in
the node's d-cache, and migrate between the two as objects are inserted
and evicted.
"""

from __future__ import annotations

from repro.cache.frequency import (
    DEFAULT_AGING_INTERVAL,
    DEFAULT_WINDOW,
    SlidingWindowFrequencyEstimator,
)


class ObjectDescriptor:
    """Per-(node, object) metadata used in caching decisions."""

    __slots__ = ("object_id", "size", "estimator", "miss_penalty")

    def __init__(
        self,
        object_id: int,
        size: int,
        miss_penalty: float = 0.0,
        window: int = DEFAULT_WINDOW,
        aging_interval: float = DEFAULT_AGING_INTERVAL,
    ) -> None:
        if size <= 0:
            raise ValueError("object size must be positive")
        if miss_penalty < 0:
            raise ValueError("miss penalty must be non-negative")
        self.object_id = object_id
        self.size = size
        self.estimator = SlidingWindowFrequencyEstimator(window, aging_interval)
        self.miss_penalty = miss_penalty

    def record_access(self, now: float) -> float:
        """Record one reference; returns the refreshed frequency."""
        return self.estimator.record(now)

    def frequency(self, now: float) -> float:
        """Current access-frequency estimate ``f(O)``."""
        return self.estimator.value(now)

    def cost_rate(self, now: float) -> float:
        """``f(O) * m(O)`` -- the cost loss of removing this object."""
        return self.frequency(now) * self.miss_penalty

    def normalized_cost_loss(self, now: float) -> float:
        """``NCL(O) = f(O) * m(O) / s(O)`` (paper section 2.1)."""
        return self.cost_rate(now) / self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ObjectDescriptor(id={self.object_id}, size={self.size}, "
            f"m={self.miss_penalty:.4g})"
        )
