"""Cache substrate: replacement policies, descriptor caches, estimators.

Main caches are byte-capacity stores of object copies; the auxiliary
*d-cache* (paper section 2.4) stores object descriptors only and is sized
in descriptor count.  Frequency estimation follows the paper's sliding
window of the K most recent reference times (section 3.2).
"""

from repro.cache.base import Cache, CacheEntry, CacheTooSmallError
from repro.cache.lru import LRUCache
from repro.cache.lfu import LFUCache
from repro.cache.ncl import NCLCache
from repro.cache.dcache import DescriptorCache
from repro.cache.frequency import SlidingWindowFrequencyEstimator

__all__ = [
    "Cache",
    "CacheEntry",
    "CacheTooSmallError",
    "DescriptorCache",
    "LFUCache",
    "LRUCache",
    "NCLCache",
    "SlidingWindowFrequencyEstimator",
]
