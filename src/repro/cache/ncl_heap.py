"""Heap-organized NCL cache (the paper's suggested data structure).

Section 2.4: "descriptors of cached objects can be organized as a heap
based on their normalized cost losses.  In this way, the time complexity
for each adjustment (e.g., insertion and removal) is O(log m)."

:class:`HeapNCLCache` implements that design with lazy deletion: every
descriptor mutation pushes a fresh ``(ncl, object_id, version)`` entry
with a globally unique version; stale heap entries are discarded when
popped.  The heap is compacted when it grows past a small multiple of
the live population, keeping amortized costs at O(log m).

It is policy-equivalent to :class:`repro.cache.ncl.NCLCache` (the
bisect-list variant used by default) -- the property tests replay random
workloads through both and require identical victim choices -- and the
micro-benchmark compares their costs.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Optional, Tuple

from repro.cache.base import Cache, CacheEntry

_COMPACT_FACTOR = 4


class HeapNCLCache(Cache):
    """NCL-ordered cache backed by a lazy-deletion min-heap."""

    policy_name = "ncl-heap"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        # Heap items: (ncl, tiebreak object_id, version).  The object id
        # participates in ordering so equal-NCL ties resolve identically
        # to the sorted-list implementation.  Versions are globally
        # unique and monotone so a re-inserted object can never match a
        # stale heap entry from an earlier incarnation.
        self._heap: List[Tuple[float, int, int]] = []
        self._versions: Dict[int, int] = {}
        self._seq = count()

    # -- internal ----------------------------------------------------------

    def _push(self, object_id: int, now: float) -> None:
        entry = self._entries[object_id]
        version = next(self._seq)
        self._versions[object_id] = version
        key = entry.descriptor.normalized_cost_loss(now)
        heapq.heappush(self._heap, (key, object_id, version))

    def _is_live(self, item: Tuple[float, int, int]) -> bool:
        _, object_id, version = item
        return self._versions.get(object_id) == version

    def _compact(self) -> None:
        if len(self._heap) > _COMPACT_FACTOR * max(len(self._entries), 1):
            self._heap = [item for item in self._heap if self._is_live(item)]
            heapq.heapify(self._heap)

    # -- descriptor mutation entry points ------------------------------------

    def record_access(self, object_id: int, now: float) -> None:
        """Record a reference on a cached object's descriptor."""
        entry = self._entries.get(object_id)
        if entry is None:
            raise KeyError(f"object {object_id} not cached")
        entry.descriptor.record_access(now)
        self._push(object_id, now)
        self._compact()

    def set_miss_penalty(self, object_id: int, miss_penalty: float, now: float) -> None:
        """Update a cached object's miss penalty (response-path update)."""
        entry = self._entries.get(object_id)
        if entry is None:
            raise KeyError(f"object {object_id} not cached")
        entry.descriptor.miss_penalty = miss_penalty
        self._push(object_id, now)
        self._compact()

    # -- policy ----------------------------------------------------------------

    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        victims: List[CacheEntry] = []
        freed = 0
        # Non-mutating scan: pop live items in order, then restore.
        popped: List[Tuple[float, int, int]] = []
        seen: set = set()
        while self._heap and freed < needed_bytes:
            item = heapq.heappop(self._heap)
            popped.append(item)
            if not self._is_live(item):
                continue
            _, object_id, _ = item
            if object_id in seen or object_id == exclude:
                continue
            seen.add(object_id)
            entry = self._entries[object_id]
            victims.append(entry)
            freed += entry.size
        for item in popped:
            if self._is_live(item):
                heapq.heappush(self._heap, item)
        # Dead items dropped: the scan doubles as compaction.
        return victims

    def cost_loss(self, object_id: int, size: int, now: float) -> Optional[float]:
        """Cost loss ``l`` of making room for an object (no mutation).

        Victim order follows the NCL keys recorded at the victims' last
        refresh, but each victim's loss contribution is its *current*
        ``f(O_i) * m(O_i)`` at ``now`` -- the same semantics as
        :class:`repro.cache.ncl.NCLCache`, so the two structures stay
        decision-identical.
        """
        if size > self.capacity_bytes:
            return None
        if object_id in self._entries:
            return 0.0
        needed = size - self.free_bytes
        if needed <= 0:
            return 0.0
        loss = 0.0
        freed = 0
        popped: List[Tuple[float, int, int]] = []
        seen: set = set()
        while self._heap and freed < needed:
            item = heapq.heappop(self._heap)
            popped.append(item)
            if not self._is_live(item):
                continue
            _, victim_id, _ = item
            if victim_id in seen:
                continue
            seen.add(victim_id)
            entry = self._entries[victim_id]
            loss += entry.descriptor.cost_rate(now)
            freed += entry.size
        for item in popped:
            if self._is_live(item):
                heapq.heappush(self._heap, item)
        if freed < needed:
            return None
        return loss

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._push(entry.object_id, now)

    def on_remove(self, entry: CacheEntry) -> None:
        del self._versions[entry.object_id]

    def eviction_order(self) -> List[int]:
        """Live object ids in ascending NCL order (for tests; O(m log m))."""
        live = {}
        for key, object_id, version in self._heap:
            if self._versions.get(object_id) == version:
                live[object_id] = (key, object_id)
        return [oid for _, oid in sorted(live.values())]

    def check_invariants(self) -> None:
        super().check_invariants()
        if set(self._versions) != set(self._entries):
            raise AssertionError("heap version bookkeeping drift")
        live = {
            object_id
            for _, object_id, version in self._heap
            if self._versions.get(object_id) == version
        }
        if live != set(self._entries):
            raise AssertionError("heap is missing live entries")
