"""Byte-capacity cache interface shared by all replacement policies."""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional

from repro.cache.descriptors import ObjectDescriptor


class CacheTooSmallError(Exception):
    """Raised when an insertion cannot be accommodated.

    Covers both an object larger than the cache's total capacity and the
    rarer case where the policy's victim selection cannot free enough
    space (e.g. every large-enough entry is excluded from eviction).
    Callers treat it as "do not cache here"; the cache is left unchanged.
    """


class CacheEntry:
    """A cached object copy plus its descriptor."""

    __slots__ = ("descriptor",)

    def __init__(self, descriptor: ObjectDescriptor) -> None:
        self.descriptor = descriptor

    @property
    def object_id(self) -> int:
        return self.descriptor.object_id

    @property
    def size(self) -> int:
        return self.descriptor.size


class Cache(abc.ABC):
    """A store of object copies bounded by a byte capacity.

    Subclasses implement the replacement policy through
    :meth:`select_victims`.  Insertions that need space call it and evict
    the returned victims; infeasible insertions (object larger than the
    whole cache, or victim selection unable to free enough space) raise
    :class:`CacheTooSmallError` (callers treat that as "do not cache").
    """

    #: Short replacement-policy tag stamped on eviction events by the
    #: instrumentation layer (subclasses override).
    policy_name: str = "cache"

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[int, CacheEntry] = {}
        self._used = 0
        # Instrumentation hook (see repro.obs.instruments.CacheObserver):
        # strictly observational, None in uninstrumented runs.
        self.observer = None

    # -- inspection --------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries

    def object_ids(self) -> Iterator[int]:
        return iter(self._entries)

    def entry(self, object_id: int) -> Optional[CacheEntry]:
        """Entry for an object without touching recency state."""
        return self._entries.get(object_id)

    # -- policy hooks ------------------------------------------------------

    @abc.abstractmethod
    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        """Pick entries to evict to free at least ``needed_bytes``.

        Must not mutate the cache.  ``exclude`` names an object id that is
        never a victim (the object being inserted).
        """

    def on_access(self, entry: CacheEntry, now: float) -> None:
        """Policy hook invoked on a cache hit (default: no-op)."""

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        """Policy hook invoked after an entry joins the cache."""

    def on_remove(self, entry: CacheEntry) -> None:
        """Policy hook invoked after an entry leaves the cache."""

    # -- operations --------------------------------------------------------

    def access(self, object_id: int, now: float) -> Optional[CacheEntry]:
        """Look up an object on a request; updates policy recency state."""
        entry = self._entries.get(object_id)
        if entry is not None:
            self.on_access(entry, now)
        return entry

    def insert(self, descriptor: ObjectDescriptor, now: float) -> List[CacheEntry]:
        """Insert an object copy, evicting victims as needed.

        Returns the evicted entries (empty when none were needed).  If the
        object is already present this is a no-op returning ``[]``.  When
        the object cannot be accommodated -- larger than the whole cache,
        or victim selection cannot free enough space -- the insertion is
        refused with :class:`CacheTooSmallError` and the cache is left
        untouched (no partial eviction).
        """
        object_id = descriptor.object_id
        if object_id in self._entries:
            return []
        if descriptor.size > self.capacity_bytes:
            raise CacheTooSmallError(
                f"object {object_id} ({descriptor.size} B) exceeds capacity "
                f"{self.capacity_bytes} B"
            )
        evicted: List[CacheEntry] = []
        observer = self.observer
        needed = descriptor.size - self.free_bytes
        if needed > 0:
            if observer is None:
                victims = self.select_victims(needed, now, exclude=object_id)
            else:
                victims = observer.select_victims(
                    self, needed, now, object_id
                )
            freed = sum(v.size for v in victims)
            if freed < needed:
                # Infeasible eviction: refuse gracefully before touching
                # any entry, so the caller can simply not cache here.
                raise CacheTooSmallError(
                    f"cannot make room for object {object_id}: victims free "
                    f"{freed} B of the {needed} B needed"
                )
            for victim in victims:
                self._remove_entry(victim)
                evicted.append(victim)
            if observer is not None and evicted:
                observer.on_evictions(self, evicted, now)
        entry = CacheEntry(descriptor)
        self._entries[object_id] = entry
        self._used += descriptor.size
        self.on_insert(entry, now)
        if observer is not None:
            observer.on_occupancy(self._used)
        return evicted

    def remove(self, object_id: int) -> Optional[CacheEntry]:
        """Remove an object explicitly (e.g. invalidation)."""
        entry = self._entries.get(object_id)
        if entry is None:
            return None
        self._remove_entry(entry)
        if self.observer is not None:
            self.observer.on_invalidation(entry)
        return entry

    def _remove_entry(self, entry: CacheEntry) -> None:
        del self._entries[entry.object_id]
        self._used -= entry.size
        self.on_remove(entry)

    def check_invariants(self) -> None:
        """Assert accounting consistency (used by tests)."""
        actual = sum(e.size for e in self._entries.values())
        if actual != self._used:
            raise AssertionError(f"byte accounting drift: {actual} != {self._used}")
        if self._used > self.capacity_bytes:
            raise AssertionError("cache over capacity")
