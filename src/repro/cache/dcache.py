"""The d-cache: an auxiliary descriptor cache (paper section 2.4).

Each node keeps a small d-cache holding the descriptors of the most
frequently accessed objects *not* stored in the main cache, so cost
savings of candidate objects can be evaluated without keeping descriptors
for the whole universe.  Capacity is measured in descriptor count (a
descriptor is a few tens of bytes, so the d-cache's byte footprint is
negligible, section 3.2).

The paper manages the d-cache with simple LFU, and notes that descriptors
can alternatively be organized into LRU stacks for O(1) maintenance when
frequencies come from a sliding window.  Both policies are provided here
(``policy="lfu"`` -- the default -- and ``policy="lru"``); the ablation
bench ``benchmarks/test_ablation_dcache_policy.py`` compares them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.cache.lfu import _FrequencyBuckets
from repro.cache.descriptors import ObjectDescriptor

_POLICIES = ("lfu", "lru")


class DescriptorCache:
    """Store of up to ``capacity`` object descriptors (LFU or LRU managed)."""

    def __init__(self, capacity: int, policy: str = "lfu") -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        # Instrumentation hook (see repro.obs.instruments.DcacheObserver):
        # strictly observational, None in uninstrumented runs.
        self.observer = None
        self._descriptors: Dict[int, ObjectDescriptor] = {}
        self._buckets = _FrequencyBuckets() if policy == "lfu" else None
        self._recency: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._descriptors)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._descriptors

    # -- policy bookkeeping --------------------------------------------------

    def _track_insert(self, object_id: int) -> None:
        if self._buckets is not None:
            self._buckets.add(object_id)
        else:
            self._recency[object_id] = None

    def _track_reference(self, object_id: int) -> None:
        if self._buckets is not None:
            self._buckets.promote(object_id)
        else:
            self._recency.move_to_end(object_id)

    def _track_remove(self, object_id: int) -> None:
        if self._buckets is not None:
            self._buckets.discard(object_id)
        else:
            self._recency.pop(object_id, None)

    def _victim(self) -> int:
        if self._buckets is not None:
            return next(self._buckets.eviction_order())
        return next(iter(self._recency))

    # -- operations ------------------------------------------------------------

    def get(self, object_id: int) -> Optional[ObjectDescriptor]:
        """Descriptor lookup; counts as a policy reference when present."""
        descriptor = self._descriptors.get(object_id)
        if descriptor is not None:
            self._track_reference(object_id)
        return descriptor

    def peek(self, object_id: int) -> Optional[ObjectDescriptor]:
        """Descriptor lookup without touching policy state."""
        return self._descriptors.get(object_id)

    def insert(self, descriptor: ObjectDescriptor) -> List[ObjectDescriptor]:
        """Insert a descriptor, evicting per policy if full.

        Returns evicted descriptors.  Inserting an already-present id
        replaces the stored descriptor without resetting its policy state.
        """
        object_id = descriptor.object_id
        if object_id in self._descriptors:
            self._descriptors[object_id] = descriptor
            return []
        if self.capacity == 0:
            return [descriptor]
        evicted: List[ObjectDescriptor] = []
        while len(self._descriptors) >= self.capacity:
            victim_id = self._victim()
            evicted.append(self._descriptors.pop(victim_id))
            self._track_remove(victim_id)
        self._descriptors[object_id] = descriptor
        self._track_insert(object_id)
        if evicted and self.observer is not None:
            self.observer.on_evictions(self, evicted)
        return evicted

    def remove(self, object_id: int) -> Optional[ObjectDescriptor]:
        """Remove a descriptor (e.g. when the object enters the main cache)."""
        descriptor = self._descriptors.pop(object_id, None)
        if descriptor is not None:
            self._track_remove(object_id)
        return descriptor

    def check_invariants(self) -> None:
        if len(self._descriptors) > self.capacity:
            raise AssertionError("d-cache over capacity")
        tracked = (
            len(self._recency)
            if self._buckets is None
            else sum(1 for _ in self._buckets.eviction_order())
        )
        if tracked != len(self._descriptors):
            raise AssertionError("d-cache policy bookkeeping drift")
