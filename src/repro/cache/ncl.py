"""Cost-based cache ordered by normalized cost loss (NCL).

This is the storage substrate of both the coordinated scheme and the
LNC-R baseline.  Victim selection implements the paper's greedy knapsack
heuristic (section 2.1): order cached objects by
``NCL(O) = f(O) * m(O) / s(O)`` and purge from the smallest NCL upward
until enough space is free.  The cache additionally exposes
:meth:`cost_loss`, the *hypothetical* total cost loss ``l`` of making room
for a given object -- the quantity nodes piggyback on request messages.

Entries are kept in a bisect-maintained sorted key list.  The key of an
entry is its NCL at the last (lazy) refresh; any mutation of frequency or
miss penalty flows through :meth:`record_access` / :meth:`set_miss_penalty`
/ :meth:`refresh_key`, which re-sort the touched entry in O(log n + n)
worst case (list memmove) but O(log n) comparisons -- fast at realistic
per-node cache populations.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.cache.base import Cache, CacheEntry


class NCLCache(Cache):
    """Cache whose eviction order is ascending normalized cost loss."""

    policy_name = "ncl"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        # Sorted list of (ncl_key, object_id); one tuple per entry.
        self._order: List[Tuple[float, int]] = []
        self._keys: Dict[int, float] = {}

    # -- key maintenance ---------------------------------------------------

    def _insert_key(self, object_id: int, key: float) -> None:
        bisect.insort(self._order, (key, object_id))
        self._keys[object_id] = key

    def _delete_key(self, object_id: int) -> None:
        key = self._keys.pop(object_id)
        index = bisect.bisect_left(self._order, (key, object_id))
        # The tuple is guaranteed present at `index`.
        if self._order[index] != (key, object_id):
            raise AssertionError("NCL order list out of sync")
        del self._order[index]

    def refresh_key(self, object_id: int, now: float) -> None:
        """Re-sort one entry after its descriptor changed."""
        entry = self._entries.get(object_id)
        if entry is None:
            return
        new_key = entry.descriptor.normalized_cost_loss(now)
        if new_key != self._keys[object_id]:
            self._delete_key(object_id)
            self._insert_key(object_id, new_key)

    # -- descriptor mutation entry points -----------------------------------

    def record_access(self, object_id: int, now: float) -> None:
        """Record a reference on a cached object's descriptor."""
        entry = self._entries.get(object_id)
        if entry is None:
            raise KeyError(f"object {object_id} not cached")
        entry.descriptor.record_access(now)
        self.refresh_key(object_id, now)

    def set_miss_penalty(self, object_id: int, miss_penalty: float, now: float) -> None:
        """Update a cached object's miss penalty (response-path update)."""
        entry = self._entries.get(object_id)
        if entry is None:
            raise KeyError(f"object {object_id} not cached")
        entry.descriptor.miss_penalty = miss_penalty
        self.refresh_key(object_id, now)

    # -- policy ---------------------------------------------------------------

    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        victims: List[CacheEntry] = []
        freed = 0
        for _, object_id in self._order:
            if object_id == exclude:
                continue
            entry = self._entries[object_id]
            victims.append(entry)
            freed += entry.size
            if freed >= needed_bytes:
                break
        return victims

    def cost_loss(self, object_id: int, size: int, now: float) -> Optional[float]:
        """Cost loss ``l`` of making room for an object (no mutation).

        Sums each victim's *current* ``f(O_i) * m(O_i)`` at ``now`` over
        the greedy victim prefix; the prefix itself follows the same
        lazily refreshed key order as :meth:`select_victims`, so the
        reported ``l`` prices exactly the eviction that would happen.
        (Summing the stale sorted keys instead would inflate the
        piggybacked ``l_i`` for aged victims and bias the placement DP
        against caching.)  Returns 0 when the object already fits (or is
        already cached), and ``None`` when the object cannot fit at all
        (larger than capacity) -- callers treat ``None`` as "node cannot
        cache this object".
        """
        if size > self.capacity_bytes:
            return None
        if object_id in self._entries:
            return 0.0
        needed = size - self.free_bytes
        if needed <= 0:
            return 0.0
        loss = 0.0
        freed = 0
        # The loop variable must not be named ``object_id``: it would
        # shadow the parameter, which is still meaningful after the loop.
        for _, victim_id in self._order:
            entry = self._entries[victim_id]
            loss += entry.descriptor.cost_rate(now)
            freed += entry.size
            if freed >= needed:
                return loss
        # Even a full purge cannot make room for ``object_id``.
        return None

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._insert_key(
            entry.object_id, entry.descriptor.normalized_cost_loss(now)
        )

    def on_remove(self, entry: CacheEntry) -> None:
        self._delete_key(entry.object_id)

    def eviction_order(self) -> List[int]:
        """Object ids from smallest to largest NCL key (for tests)."""
        return [object_id for _, object_id in self._order]

    def check_invariants(self) -> None:
        super().check_invariants()
        if len(self._order) != len(self._entries) or len(self._keys) != len(self._entries):
            raise AssertionError("NCL key bookkeeping drift")
        if any(
            self._order[i] > self._order[i + 1]
            for i in range(len(self._order) - 1)
        ):
            raise AssertionError("NCL order list not sorted")
        if {oid for _, oid in self._order} != set(self._entries):
            raise AssertionError("NCL order list does not match entries")
        if any(self._keys.get(oid) != key for key, oid in self._order):
            raise AssertionError("NCL order keys disagree with key map")
