"""Least-recently-used cache (baseline replacement policy)."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.cache.base import Cache, CacheEntry


class LRUCache(Cache):
    """Evicts the least recently accessed objects first.

    This is the replacement policy of the paper's LRU and MODULO baselines
    (section 3.3).
    """

    policy_name = "lru"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._recency: "OrderedDict[int, None]" = OrderedDict()

    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        victims: List[CacheEntry] = []
        freed = 0
        for object_id in self._recency:
            if object_id == exclude:
                continue
            entry = self._entries[object_id]
            victims.append(entry)
            freed += entry.size
            if freed >= needed_bytes:
                break
        return victims

    def on_access(self, entry: CacheEntry, now: float) -> None:
        self._recency.move_to_end(entry.object_id)

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._recency[entry.object_id] = None

    def on_remove(self, entry: CacheEntry) -> None:
        self._recency.pop(entry.object_id, None)

    def recency_order(self) -> List[int]:
        """Object ids from least to most recently used (for tests)."""
        return list(self._recency)
