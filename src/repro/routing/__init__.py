"""Routing substrate: shortest paths and per-server distribution trees.

In the paper, the propagation paths of cache misses for a given origin
server form a tree rooted at that server (section 2); for the en-route
architecture these are shortest-path trees over the network (section 3.2).
"""

from repro.routing.shortest_path import dijkstra
from repro.routing.distribution_tree import DistributionTree, RoutingTable

__all__ = ["DistributionTree", "RoutingTable", "dijkstra"]
