"""Per-origin distribution trees.

A *distribution tree* (paper section 2) is the tree along which cache
misses for one origin server propagate.  For the en-route architecture it
is the shortest-path tree rooted at the server's attachment node; for the
hierarchical architecture it is the cache hierarchy itself.  A
:class:`RoutingTable` lazily builds and memoizes one tree per distinct root
node, since servers co-located at a node share a tree.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.routing.shortest_path import dijkstra
from repro.topology.graph import Network


class DistributionTree:
    """Shortest-path tree rooted at one node.

    ``path_to_root(v)`` returns the node sequence ``[v, ..., root]`` which,
    read left to right, is the cache-miss propagation path of a request
    issued at ``v`` (the paper's ``A_n .. A_0`` read in reverse).
    """

    def __init__(self, network: Network, root: int) -> None:
        self.network = network
        self.root = root
        self._dist, self._parent = dijkstra(network, root)
        self._paths: Dict[int, List[int]] = {}

    def parent(self, node: int) -> int:
        """Parent of ``node`` on the tree (``-1`` at the root)."""
        return self._parent[node]

    def distance(self, node: int) -> float:
        """Total delay from ``node`` to the root."""
        return self._dist[node]

    def is_reachable(self, node: int) -> bool:
        return math.isfinite(self._dist[node])

    def depth(self, node: int) -> int:
        """Hop count from ``node`` up to the root."""
        return len(self.path_to_root(node)) - 1

    def path_to_root(self, node: int) -> List[int]:
        """Node sequence from ``node`` up to (and including) the root.

        Paths are memoized; the returned list must not be mutated.
        """
        cached = self._paths.get(node)
        if cached is not None:
            return cached
        if not self.is_reachable(node):
            raise ValueError(f"node {node} cannot reach root {self.root}")
        path = [node]
        current = node
        while current != self.root:
            current = self._parent[current]
            path.append(current)
        self._paths[node] = path
        return path


class RoutingTable:
    """Memoized distribution trees, keyed by root node.

    Origin servers mapped to the same attachment node share one tree, so
    the table never builds more than ``num_nodes`` trees.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._trees: Dict[int, DistributionTree] = {}

    def tree(self, root: int) -> DistributionTree:
        tree = self._trees.get(root)
        if tree is None:
            tree = DistributionTree(self.network, root)
            self._trees[root] = tree
        return tree

    def request_path(self, client_node: int, server_node: int) -> List[int]:
        """Miss-propagation path ``[client_node, ..., server_node]``."""
        return self.tree(server_node).path_to_root(client_node)

    def mean_path_hops(self, clients: List[int], servers: List[int]) -> float:
        """Average hop count between every (client, server) pair given."""
        if not clients or not servers:
            raise ValueError("need at least one client and one server")
        total = 0
        count = 0
        for server in servers:
            tree = self.tree(server)
            for client in clients:
                total += tree.depth(client)
                count += 1
        return total / count
