"""Dijkstra shortest paths over :class:`repro.topology.Network`."""

from __future__ import annotations

import heapq
import math
from typing import List, Tuple

from repro.topology.graph import Network


def dijkstra(network: Network, source: int) -> Tuple[List[float], List[int]]:
    """Single-source shortest paths by base link delay.

    Returns ``(dist, parent)`` where ``dist[v]`` is the total delay of the
    shortest path from ``source`` to ``v`` (``inf`` if unreachable) and
    ``parent[v]`` is the predecessor of ``v`` on that path (``-1`` for the
    source and unreachable nodes).  Ties are broken deterministically by
    node id so distribution trees are reproducible.
    """
    n = network.num_nodes
    if not 0 <= source < n:
        raise KeyError(f"unknown source node {source}")
    dist = [math.inf] * n
    parent = [-1] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = [False] * n
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        for v, delay in network.neighbors(u):
            nd = d + delay
            if nd < dist[v] or (nd == dist[v] and not settled[v] and u < parent[v]):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent
