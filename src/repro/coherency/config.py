"""Coherency mode selection and validation.

One :class:`CoherencyConfig` travels from the CLI flags
(``--coherency``, ``--channel-poll-interval``, ``--group-count``,
``--group-skew``) into the simulator and the serving cluster.  The
validation here is the single source of truth for which combinations
make sense, so ``repro sim``, ``repro serve`` and ``repro loadgen``
all reject nonsense identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workload.groups import GroupAssignment

MODES = ("inband", "channel")


@dataclass(frozen=True)
class CoherencyConfig:
    """How invalidations reach the caches.

    ``mode="inband"`` is the paper's implicit design: inv frames walk
    the distribution tree synchronously.  ``mode="channel"`` is the
    squid-channels design: caches subscribe to a pub/sub channel and
    poll it every ``poll_interval`` time units (0 means zero-latency
    delivery, the differential-oracle configuration).

    ``group_count=None`` means per-object groups (each object alone in
    its own group); a positive count buckets objects into Zipf-skewed
    groups (skew ``group_skew``, seed ``group_seed``) so one update
    event invalidates many objects.  Groups apply to *both* modes --
    in-band consumes a group stream by expanding it to per-object
    events -- which is what makes the two modes comparable on the same
    workload.
    """

    mode: str = "inband"
    poll_interval: float = 0.0
    group_count: Optional[int] = None
    group_skew: float = 0.8
    group_seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown coherency mode {self.mode!r} "
                f"(expected one of {', '.join(MODES)})"
            )
        if self.poll_interval < 0:
            raise ValueError("poll_interval must be non-negative")
        if self.mode == "inband" and self.poll_interval != 0.0:
            raise ValueError(
                "poll_interval only applies to channel mode "
                "(in-band invalidation is synchronous)"
            )
        if self.group_count is not None and self.group_count < 1:
            raise ValueError("group_count must be >= 1")
        if self.group_skew < 0:
            raise ValueError("group_skew must be non-negative")

    @property
    def grouped(self) -> bool:
        return self.group_count is not None

    def build_groups(self, num_objects: int) -> GroupAssignment:
        """The deterministic group assignment this config describes."""
        if self.group_count is None:
            return GroupAssignment.per_object(num_objects)
        return GroupAssignment.generate(
            num_objects=num_objects,
            group_count=self.group_count,
            skew=self.group_skew,
            seed=self.group_seed,
        )

    def to_dict(self) -> dict:
        """Manifest / artifact form (rebuildable via :meth:`from_dict`)."""
        return {
            "mode": self.mode,
            "poll_interval": self.poll_interval,
            "group_count": self.group_count,
            "group_skew": self.group_skew,
            "group_seed": self.group_seed,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CoherencyConfig":
        return cls(
            mode=raw.get("mode", "inband"),
            poll_interval=float(raw.get("poll_interval", 0.0)),
            group_count=(
                int(raw["group_count"])
                if raw.get("group_count") is not None
                else None
            ),
            group_skew=float(raw.get("group_skew", 0.8)),
            group_seed=int(raw.get("group_seed", 0)),
        )
