"""Coherency-protocol accounting.

:class:`CoherencyStats` is the invalidation-side sibling of
:class:`~repro.core.piggyback.ProtocolStats`: it prices what keeping
caches fresh costs -- in wire bytes (inv frames in-band, sub/event/
catchup/poll frames on the channel) and in *staleness* (how long stale
copies lingered, and how many stale bytes were served off them before
removal).  Both coherency modes fill the same structure so the
in-band vs. channel comparison (the warehouse ``coherency-modes``
query) reads from one schema.

Wire-size assumptions follow the style of the piggyback constants
(:mod:`repro.core.piggyback`): small fixed frames, tunable per call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

# Channel wire-frame sizes: an event is {group, seq, time}, a poll is a
# per-group cursor probe, a subscription registers one group, a catchup
# names a group plus a starting sequence number.
EVENT_BYTES = 16
POLL_BYTES = 8
SUB_BYTES = 8
CATCHUP_BYTES = 16


def staleness_percentile(windows: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over staleness windows (None when empty).

    Same rule as the latency percentiles in
    :mod:`repro.metrics.collector`: the smallest value with at least
    ``q * n`` samples at or below it.
    """
    if not windows:
        return None
    ordered = sorted(windows)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


@dataclass
class CoherencyStats:
    """Counters for one coherency mode over one run.

    ``staleness_windows`` holds one entry per stale copy actually
    removed at a subscriber: the time between the origin update and the
    removal of the cached copy.  ``stale_copies_evicted`` counts stale
    copies that capacity eviction removed before the channel got to
    them (no window is recorded -- the channel cannot take credit).

    In-band runs fill ``inv_frames`` / ``inv_bytes`` and publish
    events with zero staleness by construction (the frames walk the
    tree synchronously); channel runs fill the subscription / event /
    poll counters and the staleness accounting.
    """

    mode: str = "inband"
    events_published: int = 0
    event_deliveries: int = 0
    polls: int = 0
    subscriptions: int = 0
    catchups: int = 0
    channel_bytes: int = 0
    inv_frames: int = 0
    inv_bytes: int = 0
    stale_hits: int = 0
    stale_bytes: int = 0
    copies_invalidated: int = 0
    stale_copies_evicted: int = 0
    staleness_windows: List[float] = field(default_factory=list)

    def record_window(self, window: float) -> None:
        self.staleness_windows.append(window)

    @property
    def staleness_p50(self) -> Optional[float]:
        return staleness_percentile(self.staleness_windows, 0.50)

    @property
    def staleness_p99(self) -> Optional[float]:
        return staleness_percentile(self.staleness_windows, 0.99)

    @property
    def staleness_max(self) -> Optional[float]:
        return max(self.staleness_windows) if self.staleness_windows else None

    @property
    def protocol_bytes(self) -> int:
        """Total coherency wire bytes, whichever mode paid them."""
        return self.channel_bytes + self.inv_bytes

    def to_dict(self) -> dict:
        """JSON form carried by results, reports and snapshots."""
        return {
            "mode": self.mode,
            "events_published": self.events_published,
            "event_deliveries": self.event_deliveries,
            "polls": self.polls,
            "subscriptions": self.subscriptions,
            "catchups": self.catchups,
            "channel_bytes": self.channel_bytes,
            "inv_frames": self.inv_frames,
            "inv_bytes": self.inv_bytes,
            "protocol_bytes": self.protocol_bytes,
            "stale_hits": self.stale_hits,
            "stale_bytes": self.stale_bytes,
            "copies_invalidated": self.copies_invalidated,
            "stale_copies_evicted": self.stale_copies_evicted,
            "staleness_windows": len(self.staleness_windows),
            "staleness_p50": self.staleness_p50,
            "staleness_p99": self.staleness_p99,
            "staleness_max": self.staleness_max,
        }
