"""Cache coherency modes (the invalidation subsystem).

The paper keeps caches fresh "by using a cache coherency protocol if
necessary" (section 2) without ever measuring one.  This package makes
the protocol a first-class, selectable axis:

* ``inband`` -- the existing design: invalidation frames walk the
  distribution tree synchronously (one broadcast per updated object).
* ``channel`` -- the squid-channels design: origins publish (group)
  stale events to a pub/sub channel; caches poll it and apply batches,
  trading staleness for protocol bytes.

:class:`CoherencyConfig` selects and validates a mode,
:mod:`~repro.coherency.policy` implements both for the simulator
behind one seam, and :class:`~repro.coherency.stats.CoherencyStats`
prices either mode in the same schema so the warehouse
``coherency-modes`` query can compare them.  The live-cluster side
(broker, subscribers, wire frames) lives in
:mod:`repro.serve.channel`.  See ``docs/coherency.md``.
"""

from repro.coherency.config import MODES, CoherencyConfig
from repro.coherency.policy import (
    ChannelCoherency,
    InbandCoherency,
    build_policy,
)
from repro.coherency.stats import (
    CATCHUP_BYTES,
    EVENT_BYTES,
    POLL_BYTES,
    SUB_BYTES,
    CoherencyStats,
    staleness_percentile,
)

__all__ = [
    "CATCHUP_BYTES",
    "ChannelCoherency",
    "CoherencyConfig",
    "CoherencyStats",
    "EVENT_BYTES",
    "InbandCoherency",
    "MODES",
    "POLL_BYTES",
    "SUB_BYTES",
    "build_policy",
    "staleness_percentile",
]
