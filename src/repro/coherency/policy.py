"""Simulator-side coherency policies.

The engine's update handling sits behind one seam: a policy object the
replay loop drives with ``advance(index, now)`` before each request and
(for policies that want them) ``observe(outcome, record)`` after.

:class:`InbandCoherency` is the paper's implicit design and carries the
exact loop body the engine used to inline: each due event invalidates
every cached copy of its object immediately (the inv frames walk the
tree "for free" in simulated time).  Metrics are bit-identical to the
pre-seam engine.

:class:`ChannelCoherency` is the squid-channels design: the origin
publishes (group) stale events to a channel; every cache node polls the
channel every ``poll_interval`` time units and applies the batch of
events it missed.  Between the origin update and a node's next poll a
stale copy keeps serving hits -- the policy measures that window
*exactly*:

* at publish time every currently-cached copy of a member object is
  necessarily stale (requests are time-ordered and events apply before
  the first request at or past their timestamp, so any present copy
  was inserted strictly earlier) and gets a stale mark carrying the
  earliest update time it predates;
* a cache hit on a marked copy is a stale hit (count + bytes);
* an insertion at a node clears that node's mark -- the new copy was
  fetched from the origin after the update, so it is fresh; a later
  event re-marks it;
* at a poll, each delivered event removes marked member copies
  (``invalidate_step``) and records the staleness window
  ``apply_time - first_stale_time``; a marked copy that capacity
  eviction already removed counts as ``stale_copies_evicted`` (no
  window -- the channel cannot take credit for it).

With ``poll_interval=0`` delivery is immediate: events apply at the
same code point in-band invalidation uses, so with per-object groups
channel mode reproduces in-band results bit-for-bit -- the
differential oracle in ``tests/test_coherency_oracle.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.coherency.stats import (
    EVENT_BYTES,
    POLL_BYTES,
    SUB_BYTES,
    CoherencyStats,
)
from repro.core.piggyback import INV_FRAME_BYTES
from repro.workload.groups import GroupAssignment
from repro.workload.updates import (
    GroupUpdateEvent,
    UpdateEvent,
    expand_group_events,
)

AnyUpdate = Union[UpdateEvent, GroupUpdateEvent]


def _require_groups(
    events: Sequence[AnyUpdate], groups: Optional[GroupAssignment]
) -> GroupAssignment:
    if groups is None:
        raise ValueError(
            "group-targeted update events require a GroupAssignment"
        )
    return groups


class InbandCoherency:
    """The engine's original inline update loop, behind the seam.

    Accepts per-object :class:`UpdateEvent` streams unchanged; a
    group-targeted stream is expanded to per-object events at bind time
    (one inv broadcast per member object -- exactly what in-band mode
    pays for group invalidation).
    """

    mode = "inband"
    wants_outcomes = False

    def __init__(self, groups: Optional[GroupAssignment] = None) -> None:
        self.groups = groups
        self.stats = CoherencyStats(mode="inband")
        self.updates_applied = 0
        self.copies_invalidated = 0
        self.next_time = float("inf")
        self._updates: Sequence[UpdateEvent] = ()
        self._cursor = 0
        self._scheme = None
        self._probe = None
        self._protocol_stats = None
        self._broadcast_nodes = 0

    def bind(self, scheme, architecture, updates, probe=None) -> None:
        if any(isinstance(e, GroupUpdateEvent) for e in updates):
            groups = _require_groups(updates, self.groups)
            per_object: List[UpdateEvent] = []
            for event in updates:
                if isinstance(event, GroupUpdateEvent):
                    per_object.extend(expand_group_events([event], groups))
                else:
                    per_object.append(event)
            updates = per_object
        self._updates = updates
        self._cursor = 0
        self._scheme = scheme
        self._probe = probe
        self._protocol_stats = getattr(scheme, "protocol_stats", None)
        self._broadcast_nodes = len(architecture.cache_nodes)
        self.next_time = updates[0].time if updates else float("inf")

    def advance(self, index: int, now: float) -> None:
        """Apply every due event: the pre-seam engine loop, verbatim."""
        updates = self._updates
        probe = self._probe
        while self._cursor < len(updates) and updates[self._cursor].time <= now:
            event = updates[self._cursor]
            removed = self._scheme.invalidate_object(event.object_id)
            self.copies_invalidated += removed
            self.updates_applied += 1
            self._cursor += 1
            self.stats.events_published += 1
            self.stats.inv_frames += self._broadcast_nodes
            self.stats.copies_invalidated += removed
            if self._protocol_stats is not None:
                self._protocol_stats.invalidations += self._broadcast_nodes
            if probe is not None and probe.sample("invalidation"):
                probe.write(
                    "invalidation",
                    i=index,
                    t=event.time,
                    object=event.object_id,
                    copies=removed,
                )
        self.next_time = (
            updates[self._cursor].time
            if self._cursor < len(updates)
            else float("inf")
        )

    def observe(self, outcome, record) -> None:  # pragma: no cover - unused
        pass

    def finalize(self, end_time: float) -> None:
        self.stats.inv_bytes = self.stats.inv_frames * INV_FRAME_BYTES

    def stats_dict(self) -> dict:
        return self.stats.to_dict()


class ChannelCoherency:
    """Polled pub/sub invalidation with exact staleness accounting."""

    mode = "channel"
    wants_outcomes = True

    def __init__(
        self,
        groups: GroupAssignment,
        poll_interval: float = 0.0,
    ) -> None:
        if poll_interval < 0:
            raise ValueError("poll_interval must be non-negative")
        self.groups = groups
        self.poll_interval = poll_interval
        self.stats = CoherencyStats(mode="channel")
        self.updates_applied = 0
        self.copies_invalidated = 0
        self.next_time = float("inf")
        # Normalized channel feed: (time, group_id), time-ordered.
        self._events: List[Tuple[float, int]] = []
        self._publish_cursor = 0
        # Per-node cursor into _events: everything before it was applied.
        self._node_cursors: Dict[int, int] = {}
        self._nodes: List[int] = []
        self._scheme = None
        self._probe = None
        # (node, object) -> earliest update time the cached copy predates.
        self._marks: Dict[Tuple[int, int], float] = {}
        self._next_poll = float("inf")

    def bind(self, scheme, architecture, updates, probe=None) -> None:
        events: List[Tuple[float, int]] = []
        for event in updates:
            if isinstance(event, GroupUpdateEvent):
                events.append((event.time, event.group_id))
            else:
                events.append((event.time, self.groups.group_of(event.object_id)))
        events.sort(key=lambda pair: pair[0])
        self._events = events
        self._publish_cursor = 0
        self._scheme = scheme
        self._probe = probe
        self._nodes = list(architecture.cache_nodes)
        self._node_cursors = {node: 0 for node in self._nodes}
        self.stats.subscriptions = len(self._nodes)
        # Registration is wire traffic too -- priced identically by the
        # live broker, so sim and cluster channel bytes stay comparable.
        self.stats.channel_bytes += SUB_BYTES * len(self._nodes)
        self._next_poll = (
            self.poll_interval if self.poll_interval > 0 else float("inf")
        )
        self._refresh_next_time()

    def _refresh_next_time(self) -> None:
        next_event = (
            self._events[self._publish_cursor][0]
            if self._publish_cursor < len(self._events)
            else float("inf")
        )
        if self.poll_interval > 0:
            # Polls only matter while something is left to deliver.
            pending = any(
                self._node_cursors[node] < self._publish_cursor
                for node in self._nodes
            )
            next_poll = self._next_poll if pending else float("inf")
            self.next_time = min(next_event, next_poll)
        else:
            self.next_time = next_event

    def advance(self, index: int, now: float) -> None:
        """Process publishes and polls with timestamps up to ``now``.

        Events and poll ticks interleave in time order (a poll sees
        every event published at or before its tick time), so the
        replay is independent of how requests are spaced.
        """
        while True:
            next_event = (
                self._events[self._publish_cursor][0]
                if self._publish_cursor < len(self._events)
                else float("inf")
            )
            if self.poll_interval > 0:
                if next_event <= now and next_event <= self._next_poll:
                    self._publish(next_event)
                elif self._next_poll <= now:
                    self._poll_all(self._next_poll)
                    self._next_poll += self.poll_interval
                else:
                    break
            else:
                if next_event <= now:
                    self._publish(next_event)
                    self._apply_all(next_event)
                else:
                    break
        self._refresh_next_time()

    def _publish(self, time: float) -> None:
        """Origin pushes one event to the channel; mark live stale copies."""
        _, group_id = self._events[self._publish_cursor]
        self._publish_cursor += 1
        self.updates_applied += 1
        self.stats.events_published += 1
        self.stats.channel_bytes += EVENT_BYTES
        scheme = self._scheme
        for object_id in self.groups.members(group_id):
            for node in self._nodes:
                key = (node, object_id)
                if key not in self._marks and scheme.has_object(node, object_id):
                    self._marks[key] = time
        if self._probe is not None and self._probe.sample("invalidation"):
            self._probe.write(
                "invalidation",
                t=time,
                group=group_id,
                published=self.stats.events_published,
            )

    def _poll_all(self, poll_time: float) -> None:
        """Every node polls: fetch missed events and apply them."""
        for node in self._nodes:
            self.stats.polls += 1
            self.stats.channel_bytes += POLL_BYTES
            self._apply_node(node, poll_time)

    def _apply_all(self, apply_time: float) -> None:
        """Zero-latency delivery: all nodes apply immediately."""
        for node in self._nodes:
            self._apply_node(node, apply_time)

    def _apply_node(self, node: int, apply_time: float) -> None:
        cursor = self._node_cursors[node]
        scheme = self._scheme
        while cursor < self._publish_cursor:
            _, group_id = self._events[cursor]
            cursor += 1
            self.stats.event_deliveries += 1
            self.stats.channel_bytes += EVENT_BYTES
            for object_id in self.groups.members(group_id):
                key = (node, object_id)
                first_stale = self._marks.pop(key, None)
                if first_stale is None:
                    # Never cached here, already fresh (re-fetched after
                    # the update), or already handled by an earlier
                    # event in this same batch.
                    continue
                removed = scheme.invalidate_step(node, object_id)
                if removed:
                    self.copies_invalidated += removed
                    self.stats.copies_invalidated += removed
                    self.stats.record_window(apply_time - first_stale)
                else:
                    self.stats.stale_copies_evicted += 1
        self._node_cursors[node] = cursor

    def observe(self, outcome, record) -> None:
        """Per-request hooks: stale-hit detection and mark clearing."""
        if outcome.served_by_cache:
            key = (outcome.path[outcome.hit_index], record.object_id)
            if key in self._marks:
                self.stats.stale_hits += 1
                self.stats.stale_bytes += record.size
        if outcome.inserted_nodes:
            for node in outcome.inserted_nodes:
                # A fresh copy just arrived from upstream; it postdates
                # every published update.
                self._marks.pop((node, record.object_id), None)

    def finalize(self, end_time: float) -> None:
        """Drain: one final poll per node so every event is delivered.

        Mirrors the serving cluster's drain-time channel sync; gives
        every stale copy a bounded window instead of leaving tail
        events unmeasured.
        """
        pending = any(
            self._node_cursors[node] < self._publish_cursor
            for node in self._nodes
        )
        if pending:
            for node in self._nodes:
                if self._node_cursors[node] < self._publish_cursor:
                    if self.poll_interval > 0:
                        self.stats.polls += 1
                        self.stats.channel_bytes += POLL_BYTES
                    self._apply_node(node, end_time)

    def stats_dict(self) -> dict:
        return self.stats.to_dict()


def build_policy(
    config, num_objects: int
) -> Union[InbandCoherency, ChannelCoherency]:
    """Policy instance for a :class:`~repro.coherency.config.CoherencyConfig`."""
    groups = config.build_groups(num_objects)
    if config.mode == "inband":
        return InbandCoherency(groups=groups)
    return ChannelCoherency(groups=groups, poll_interval=config.poll_interval)
