"""Differential oracle for the columnar fast path.

Runs the same (architecture, cost model, scheme) pair twice -- once over
a materialized :class:`~repro.workload.trace.Trace` through the
reference per-request loop, once over the equivalent
:class:`~repro.workload.columnar.ColumnarTrace` through the fast path --
and asserts the two runs are indistinguishable:

* the full :class:`~repro.sim.engine.SimulationResult` (minus wall-clock
  timing) must be equal, summary percentiles included;
* the final cache state must match -- entry maps, used bytes, LRU
  recency order, NCL ``(key, id)`` order lists and key maps, descriptor
  miss penalties and estimator internals;
* for the coordinated scheme, d-cache contents (descriptor identity and
  iteration order), LFU bucket structure with its ``_min_count``, or LRU
  recency, plus the piggyback protocol counters.

This is the shadow-replay gate the fast-path kernels are held to: not
"statistically close", bit-identical.  Imports the simulation engine, so
like :mod:`repro.verify.replay` it is not re-exported from
:mod:`repro.verify` -- import it as a submodule.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Callable, Sequence

from repro.schemes.base import CachingScheme
from repro.sim.architecture import Architecture
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.workload.columnar import ColumnarTrace
from repro.workload.trace import Trace
from repro.workload.updates import UpdateEvent

# Wall-clock fields: legitimately different between the two runs.
_TIMING_FIELDS = ("duration_seconds", "requests_per_second")


def result_fingerprint(result: SimulationResult) -> dict:
    """The comparable content of a result (timing fields stripped)."""
    data = asdict(result)
    for field in _TIMING_FIELDS:
        data.pop(field)
    return data


def assert_results_identical(
    reference: SimulationResult, fast: SimulationResult, tag: str = ""
) -> None:
    ref_data = result_fingerprint(reference)
    fast_data = result_fingerprint(fast)
    if ref_data == fast_data:
        return
    diffs = [
        f"{key}: reference={ref_data[key]!r} fast={fast_data[key]!r}"
        for key in ref_data
        if ref_data[key] != fast_data[key]
    ]
    raise AssertionError(
        f"fast path diverged from reference {tag}:\n  " + "\n  ".join(diffs)
    )


def assert_cache_state_identical(
    reference: CachingScheme, fast: CachingScheme, tag: str = ""
) -> None:
    """Full post-run state comparison between two schemes.

    ``_entries`` insertion order is compared only for caches without a
    separate recency structure: the LRU kernel stores entries in recency
    order by design (``_entries`` is a keyed map there, never an order
    source), so for LRU caches the policy-bearing ``_recency`` order is
    what must -- and does -- match exactly.
    """
    assert type(reference) is type(fast), (
        f"{tag}: scheme types differ: {type(reference).__name__} vs "
        f"{type(fast).__name__}"
    )
    assert reference.capacity_overrides == fast.capacity_overrides, (
        tag, "capacity overrides",
    )
    ref_caches = reference.caches()
    fast_caches = fast.caches()
    assert set(ref_caches) == set(fast_caches), (
        f"{tag}: node sets differ: {sorted(ref_caches)} vs "
        f"{sorted(fast_caches)}"
    )
    for node in ref_caches:
        rc, fc = ref_caches[node], fast_caches[node]
        assert type(rc) is type(fc), (tag, node, type(rc), type(fc))
        assert rc.capacity_bytes == fc.capacity_bytes, (tag, node)
        assert rc._used == fc._used, (tag, node, rc._used, fc._used)
        ref_entries = {oid: e.size for oid, e in rc._entries.items()}
        fast_entries = {oid: e.size for oid, e in fc._entries.items()}
        assert ref_entries == fast_entries, (tag, node, "entries")
        if hasattr(rc, "_recency"):
            assert list(rc._recency) == list(fc._recency), (
                tag, node, "recency order",
            )
        else:
            assert list(rc._entries) == list(fc._entries), (
                tag, node, "entry order",
            )
        if hasattr(rc, "_order"):
            assert rc._order == fc._order, (tag, node, "ncl order")
            assert rc._keys == fc._keys, (tag, node, "ncl keys")
            for oid in rc._entries:
                rd = rc._entries[oid].descriptor
                fd = fc._entries[oid].descriptor
                _assert_descriptor_identical(rd, fd, tag, node, oid)
    if hasattr(reference, "_nodes"):
        assert set(reference._nodes) == set(fast._nodes), (tag, "node states")
        for node in reference._nodes:
            rdc = reference._nodes[node].dcache
            fdc = fast._nodes[node].dcache
            assert list(rdc._descriptors) == list(fdc._descriptors), (
                tag, node, "dcache order",
            )
            for oid in rdc._descriptors:
                _assert_descriptor_identical(
                    rdc._descriptors[oid], fdc._descriptors[oid], tag, node, oid
                )
            if rdc._buckets is not None:
                assert rdc._buckets._counts == fdc._buckets._counts, (
                    tag, node, "lfu counts",
                )
                assert {
                    count: list(bucket)
                    for count, bucket in rdc._buckets._buckets.items()
                } == {
                    count: list(bucket)
                    for count, bucket in fdc._buckets._buckets.items()
                }, (tag, node, "lfu buckets")
                assert rdc._buckets._min_count == fdc._buckets._min_count, (
                    tag, node, "lfu min count",
                )
            else:
                assert list(rdc._recency) == list(fdc._recency), (
                    tag, node, "dcache recency",
                )
    if hasattr(reference, "protocol_stats"):
        assert reference.protocol_stats == fast.protocol_stats, (
            f"{tag}: protocol stats differ: {reference.protocol_stats} vs "
            f"{fast.protocol_stats}"
        )


def _assert_descriptor_identical(rd, fd, tag, node, oid) -> None:
    assert rd.size == fd.size, (tag, node, oid, "size")
    assert rd.miss_penalty == fd.miss_penalty, (tag, node, oid, "penalty")
    assert list(rd.estimator._times) == list(fd.estimator._times), (
        tag, node, oid, "window",
    )
    assert rd.estimator._value == fd.estimator._value, (tag, node, oid)
    assert rd.estimator._refreshed_at == fd.estimator._refreshed_at, (
        tag, node, oid,
    )


def shadow_compare(
    architecture: Architecture,
    cost_model,
    scheme_factory: Callable[[], CachingScheme],
    trace: Trace,
    columnar: ColumnarTrace,
    updates: Sequence[UpdateEvent] = (),
    tag: str = "",
    **run_kwargs,
) -> SimulationResult:
    """Run reference and fast paths and assert they are identical.

    ``scheme_factory`` must build a fresh scheme per call (each run needs
    its own state).  Returns the fast run's result on success; raises
    ``AssertionError`` with a field-level diff on any divergence.
    """
    ref_scheme = scheme_factory()
    fast_scheme = scheme_factory()
    reference = SimulationEngine(architecture, cost_model, ref_scheme).run(
        trace, updates=updates, **run_kwargs
    )
    fast = SimulationEngine(architecture, cost_model, fast_scheme).run(
        columnar, updates=updates, **run_kwargs
    )
    assert_results_identical(reference, fast, tag)
    assert_cache_state_identical(ref_scheme, fast_scheme, tag)
    return fast
