"""Opt-in correctness audit layer (runtime invariants + differential oracles).

The reproduction's headline numbers rest on delicate bookkeeping --
piggybacked ``(f_i, m_i, l_i)`` reports, the placement DP, descriptor
migration between cache and d-cache -- and that bug class corrupts
silently: runs complete, metrics just drift.  This package catches it:

* :mod:`repro.verify.invariants` -- cross-layer accounting identities
  plus an independent re-accumulation of the metrics collector's books;
* :mod:`repro.verify.oracles` -- differential oracles: list-NCL vs a
  shadow heap-NCL, and the placement DP vs the exhaustive reference on
  real piggybacked problems;
* :mod:`repro.verify.auditor` -- the driver the simulation engine calls
  (``SimulationEngine.run(audit_every=N)`` / ``auditor=...``);
* :mod:`repro.verify.replay` -- shadow-replay harness and the
  ``audited_run`` front used by the experiment runner and the CLI;
* :mod:`repro.verify.metamorphic` -- known-effect transformations
  (delay scaling, zero capacity);
* :mod:`repro.verify.selftest` -- seeded mutations proving the layer
  actually detects deliberately broken schemes;
* :mod:`repro.verify.fastpath_diff` -- the columnar fast path's shadow
  gate: reference loop vs batched kernels, bit-identical results and
  final cache/d-cache/protocol state.

``replay``, ``metamorphic``, ``selftest`` and ``fastpath_diff`` import
the simulation engine and are therefore *not* re-exported here (the
engine itself imports :mod:`repro.verify.auditor`); import them as
submodules.
"""

from repro.verify.auditor import AuditConfig, AuditReport, Auditor
from repro.verify.invariants import OutcomeLedger
from repro.verify.oracles import MirroredNCLCache, PlacementOracle
from repro.verify.violations import AuditFailure, AuditViolation

__all__ = [
    "AuditConfig",
    "AuditFailure",
    "AuditReport",
    "AuditViolation",
    "Auditor",
    "MirroredNCLCache",
    "OutcomeLedger",
    "PlacementOracle",
]
