"""Shadow-replay harness: re-run the trace, expect identical outcomes.

The simulator is deterministic by design: one (architecture, scheme
configuration, trace) triple must always produce the same outcome
sequence.  Hidden mutable state -- module globals, class-level counters,
iteration over unordered containers -- silently breaks that and with it
every A/B comparison the reproduction rests on.

During an audited primary run the :class:`~repro.verify.auditor.Auditor`
samples outcome signatures; :func:`shadow_replay_violations` then
replays the same trace on a *fresh* scheme instance and compares the
sampled subsequence.  :func:`audited_run` packages the whole protocol
(build scheme, audited engine run, optional shadow replay) for the
experiment runner, the CLI and the self-test.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from repro.sim.engine import SimulationEngine, SimulationResult
from repro.verify.auditor import AuditConfig, Auditor, AuditReport, outcome_signature
from repro.verify.violations import AuditViolation


def shadow_replay_violations(
    architecture,
    scheme,
    trace,
    reference: Dict[int, tuple],
    updates: Sequence = (),
) -> List[AuditViolation]:
    """Re-run the trace on a fresh scheme; compare sampled outcomes.

    ``reference`` maps request indices to the primary run's sampled
    :func:`~repro.verify.auditor.outcome_signature` fingerprints.  The
    replay applies the same update stream the primary run saw.
    """
    violations: List[AuditViolation] = []
    request_path = architecture.request_path
    update_index = 0
    for index, record in enumerate(trace):
        while (
            update_index < len(updates)
            and updates[update_index].time <= record.time
        ):
            scheme.invalidate_object(updates[update_index].object_id)
            update_index += 1
        path = request_path(record.client_id, record.server_id)
        outcome = scheme.process_request(
            path, record.object_id, record.size, record.time
        )
        expected = reference.get(index)
        if expected is None:
            continue
        observed = outcome_signature(outcome)
        if observed != expected:
            violations.append(
                AuditViolation(
                    check="shadow-replay",
                    detail=(
                        f"replay diverged: primary saw "
                        f"(hit_index, inserted, evictions, size)={expected} "
                        f"but shadow saw {observed}"
                    ),
                    request_index=index,
                )
            )
    return violations


def audited_run(
    architecture,
    cost_model,
    scheme_factory: Callable[[], object],
    trace,
    config: AuditConfig | None = None,
    warmup_fraction: float = 0.5,
    updates: Sequence = (),
) -> Tuple[SimulationResult, AuditReport]:
    """One fully audited simulation: engine run + optional shadow replay.

    ``scheme_factory`` must build a *fresh* scheme per call -- the shadow
    replay depends on starting from identical empty state.  Returns the
    simulation result (whose ``audit`` field carries the final report)
    and the report itself.
    """
    config = config or AuditConfig()
    auditor = Auditor(config)
    scheme = scheme_factory()
    engine = SimulationEngine(
        architecture, cost_model, scheme, warmup_fraction=warmup_fraction
    )
    result = engine.run(trace, updates=updates, auditor=auditor)
    if config.shadow_replay:
        auditor.checks_run["shadow-replay"] = len(auditor.outcome_signatures)
        auditor.extend(
            shadow_replay_violations(
                architecture,
                scheme_factory(),
                trace,
                auditor.outcome_signatures,
                updates=updates,
            )
        )
        result = dataclasses.replace(result, audit=auditor.report())
    return result, result.audit
