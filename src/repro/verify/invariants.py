"""Cross-layer accounting identities checked during an audited run.

Two families live here:

* **Cache accounting** (:func:`cache_accounting_violations`) -- for every
  materialized node cache, recompute the identities the cache claims to
  maintain from its public surface: ``used_bytes`` equals the sum of the
  entry sizes, usage never exceeds capacity, and the policy's own
  ``check_invariants`` (NCL order totals matching entries, d-cache
  bookkeeping, heap liveness) passes.

* **Collector identity** (:class:`OutcomeLedger`) -- an independent
  second set of books.  The ledger receives exactly the outcome stream
  the :class:`~repro.metrics.collector.MetricsCollector` records and
  re-derives every byte/hit/hop total with the same arithmetic; at audit
  points the two must agree bit-for-bit.  Any divergence means either
  the collector or the outcome construction mis-accounts.
"""

from __future__ import annotations

import math
from typing import List

from repro.verify.violations import AuditViolation

# Floating-point totals are accumulated in the same order by both sets of
# books, so they should agree exactly; the tiny tolerance only forgives
# non-associative reordering a future vectorized collector might do.
_REL_TOL = 1e-12


def cache_accounting_violations(scheme, request_index: int = -1) -> List[AuditViolation]:
    """Recompute per-cache byte accounting across a scheme's nodes."""
    violations: List[AuditViolation] = []
    for node, cache in scheme.caches().items():
        actual = sum(
            cache.entry(object_id).size for object_id in cache.object_ids()
        )
        if actual != cache.used_bytes:
            violations.append(
                AuditViolation(
                    check="cache-accounting",
                    detail=(
                        f"node {node}: used_bytes={cache.used_bytes} but "
                        f"entries sum to {actual}"
                    ),
                    request_index=request_index,
                )
            )
        if cache.used_bytes > cache.capacity_bytes:
            violations.append(
                AuditViolation(
                    check="cache-capacity",
                    detail=(
                        f"node {node}: used_bytes={cache.used_bytes} exceeds "
                        f"capacity {cache.capacity_bytes}"
                    ),
                    request_index=request_index,
                )
            )
    return violations


def scheme_invariant_violations(scheme, request_index: int = -1) -> List[AuditViolation]:
    """Run the scheme's own invariant sweep, converting raises to records."""
    try:
        scheme.check_invariants()
    except AssertionError as error:
        return [
            AuditViolation(
                check="scheme-invariants",
                detail=str(error),
                request_index=request_index,
            )
        ]
    return []


class OutcomeLedger:
    """Independent re-accumulation of the collector's outcome stream.

    Mirrors :meth:`repro.metrics.collector.MetricsCollector.record`
    term for term (same order, same arithmetic) without sharing any code
    path with it, so the comparison is a genuine double-entry check
    rather than the collector agreeing with itself.
    """

    __slots__ = (
        "requests",
        "latency_sum",
        "response_ratio_sum",
        "bytes_requested",
        "bytes_cache_served",
        "cache_hits",
        "byte_hops",
        "hops",
        "bytes_read",
        "bytes_written",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.latency_sum = 0.0
        self.response_ratio_sum = 0.0
        self.bytes_requested = 0
        self.bytes_cache_served = 0
        self.cache_hits = 0
        self.byte_hops = 0.0
        self.hops = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def record(self, outcome, latency: float) -> None:
        self.requests += 1
        self.latency_sum += latency
        self.response_ratio_sum += latency / outcome.size
        self.bytes_requested += outcome.size
        if outcome.served_by_cache:
            self.bytes_cache_served += outcome.size
            self.cache_hits += 1
        self.byte_hops += outcome.size * outcome.hops
        self.hops += outcome.hops
        self.bytes_read += outcome.bytes_read
        self.bytes_written += outcome.bytes_written

    def totals(self) -> dict:
        return {
            "requests": self.requests,
            "latency_sum": self.latency_sum,
            "response_ratio_sum": self.response_ratio_sum,
            "bytes_requested": self.bytes_requested,
            "bytes_cache_served": self.bytes_cache_served,
            "cache_hits": self.cache_hits,
            "byte_hops": self.byte_hops,
            "hops": self.hops,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def violations_against(
        self, collector, request_index: int = -1
    ) -> List[AuditViolation]:
        """Compare the ledger's books against the collector's totals."""
        violations: List[AuditViolation] = []
        theirs = collector.totals()
        for name, expected in self.totals().items():
            observed = theirs.get(name)
            if isinstance(expected, float):
                same = (
                    observed is not None
                    and math.isclose(observed, expected, rel_tol=_REL_TOL)
                )
            else:
                same = observed == expected
            if not same:
                violations.append(
                    AuditViolation(
                        check="collector-identity",
                        detail=(
                            f"{name}: collector={observed!r} but replayed "
                            f"outcomes give {expected!r}"
                        ),
                        request_index=request_index,
                    )
                )
        return violations
