"""Metamorphic relations: transformed inputs with predictable outputs.

No oracle knows the *absolute* correct mean latency of a run, but some
transformations have exactly known effects, and violations expose real
bugs in the cost accounting:

* **Delay scaling** -- multiplying every link cost by a constant k
  (implemented by shrinking :class:`LatencyCostModel`'s reference object
  size, which scales each ``c(u, v, O)`` by exactly k) must scale every
  latency-denominated metric by exactly k and leave all caching
  decisions, hit ratios and hop counts untouched.  k is a power of two
  so the scaling commutes with IEEE-754 rounding and the relation holds
  bit-for-bit, not just approximately.

* **Zero capacity** -- a scheme given capacity 0 at every node must
  degenerate to the no-cache baseline: every request served by the
  origin, zero cache bytes moved, and latencies equal to the full-path
  costs computed analytically from the trace.
"""

from __future__ import annotations

import math
from typing import List

from repro.costs.model import LatencyCostModel
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.verify.violations import AuditViolation

_EXACT_REL_TOL = 1e-12


def _violation(check: str, detail: str) -> AuditViolation:
    return AuditViolation(check=check, detail=detail)


def latency_scaling_violations(
    architecture,
    trace,
    catalog,
    scheme_name: str,
    factor: float = 2.0,
    capacity_bytes: int | None = None,
    dcache_entries: int = 64,
    warmup_fraction: float = 0.5,
    **scheme_params,
) -> List[AuditViolation]:
    """Check that scaling all link delays by ``factor`` scales latency.

    ``factor`` should be a power of two for the relation to be exact
    (see module docstring).  Decision invariance is asserted through the
    hit ratios and hop counts, which must not move at all.
    """
    if capacity_bytes is None:
        capacity_bytes = max(1, int(0.03 * catalog.total_bytes))
    summaries = []
    for avg_size in (catalog.mean_size, catalog.mean_size / factor):
        cost_model = LatencyCostModel(architecture.network, avg_size)
        scheme = build_scheme(
            scheme_name, cost_model, capacity_bytes, dcache_entries,
            **scheme_params,
        )
        engine = SimulationEngine(
            architecture, cost_model, scheme, warmup_fraction=warmup_fraction
        )
        summaries.append(engine.run(trace).summary)
    base, scaled = summaries
    violations: List[AuditViolation] = []
    for metric in ("hit_ratio", "byte_hit_ratio", "mean_hops",
                   "mean_read_load", "mean_write_load"):
        if getattr(base, metric) != getattr(scaled, metric):
            violations.append(_violation(
                "metamorphic-scaling",
                f"{scheme_name}: {metric} changed under delay scaling "
                f"({getattr(base, metric)!r} -> {getattr(scaled, metric)!r}); "
                f"caching decisions are not scale-invariant",
            ))
    for metric in ("mean_latency", "mean_response_ratio"):
        expected = factor * getattr(base, metric)
        observed = getattr(scaled, metric)
        if not math.isclose(observed, expected, rel_tol=_EXACT_REL_TOL):
            violations.append(_violation(
                "metamorphic-scaling",
                f"{scheme_name}: {metric} scaled to {observed!r}, expected "
                f"{factor} x {getattr(base, metric)!r} = {expected!r}",
            ))
    return violations


def zero_capacity_violations(
    architecture,
    trace,
    catalog,
    scheme_name: str,
    warmup_fraction: float = 0.5,
    **scheme_params,
) -> List[AuditViolation]:
    """Check that capacity 0 degenerates to the no-cache baseline."""
    cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
    scheme = build_scheme(scheme_name, cost_model, 0, 1, **scheme_params)
    engine = SimulationEngine(
        architecture, cost_model, scheme, warmup_fraction=warmup_fraction
    )
    summary = engine.run(trace).summary

    # Analytic no-cache replay of the measurement window, accumulated in
    # the same order as the collector so float sums match exactly.
    warmup_end, _ = trace.split_warmup(warmup_fraction)
    requests = 0
    latency_sum = 0.0
    hops_sum = 0
    for index, record in enumerate(trace):
        if index < warmup_end:
            continue
        path = architecture.request_path(record.client_id, record.server_id)
        requests += 1
        latency_sum += cost_model.path_cost(path, record.size)
        hops_sum += len(path) - 1

    violations: List[AuditViolation] = []
    name = scheme.name

    def expect(metric: str, observed, expected, exact: bool = True) -> None:
        same = (
            observed == expected
            if exact
            else math.isclose(observed, expected, rel_tol=_EXACT_REL_TOL)
        )
        if not same:
            violations.append(_violation(
                "metamorphic-zero-capacity",
                f"{name}: {metric} = {observed!r} with capacity 0, but the "
                f"no-cache baseline gives {expected!r}",
            ))

    expect("requests", summary.requests, requests)
    expect("hit_ratio", summary.hit_ratio, 0.0)
    expect("byte_hit_ratio", summary.byte_hit_ratio, 0.0)
    expect("mean_read_load", summary.mean_read_load, 0.0)
    expect("mean_write_load", summary.mean_write_load, 0.0)
    if requests:
        expect("mean_hops", summary.mean_hops, hops_sum / requests, exact=False)
        expect(
            "mean_latency", summary.mean_latency, latency_sum / requests,
            exact=False,
        )
    return violations
