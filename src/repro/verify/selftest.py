"""Seeded-mutation self-test: prove the audit layer catches real bugs.

A correctness layer that never fires is indistinguishable from one that
cannot fire.  This module plants four deliberate bugs -- one per check
family, each modeled on a silent-corruption class the project has
actually hit -- runs each mutant under a full audit, and verifies the
audit *detects* it while an identically configured clean run stays
violation-free:

* ``byte-leak`` -- a cache's ``used_bytes`` drifts from the sum of its
  entries (the accounting-identity family);
* ``descriptor-overlap`` -- an object's descriptor is left in the
  d-cache while its copy sits in the main cache (the descriptor-
  migration family, paper sections 2.3-2.4);
* ``broken-dp`` -- the placement solver returns a corrupted solution
  (the differential-oracle family);
* ``hidden-state`` -- caching decisions leak class-level mutable state
  across runs, breaking determinism (the shadow-replay family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.core.coordinated import CoordinatedScheme
from repro.core.placement import PlacementSolution, solve_placement
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.schemes.lncr import LNCRScheme
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.verify.auditor import AuditConfig
from repro.verify.replay import audited_run
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

_SELFTEST_WORKLOAD = WorkloadConfig(
    num_objects=80,
    num_servers=5,
    num_clients=10,
    # Not a multiple of 3: the hidden-state mutant's modulo-3 counter must
    # end the primary run out of phase for the shadow replay to expose it.
    num_requests=2_000,
    zipf_theta=0.8,
    seed=11,
)

_AUDIT_CONFIG = AuditConfig(
    audit_every=250,
    placement_sample_every=1,
    brute_force_limit=12,
    shadow_replay=True,
    shadow_replay_sample_every=17,
    strict=False,
)


# -- the mutants -------------------------------------------------------------


class _ByteLeakMutant(LRUEverywhereScheme):
    """Eviction accounting leak: used_bytes silently inflates."""

    name = "mutant-byte-leak"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mutation_clock = 0

    def process_request(self, path, object_id, size, now):
        outcome = super().process_request(path, object_id, size, now)
        self._mutation_clock += 1
        if self._mutation_clock % 97 == 0 and self._caches:
            cache = next(iter(self._caches.values()))
            cache._used += 1  # the planted bug
        return outcome


class _DescriptorOverlapMutant(LNCRScheme):
    """Descriptor migration bug: d-cache keeps a cached object's descriptor."""

    name = "mutant-descriptor-overlap"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mutation_clock = 0

    def process_request(self, path, object_id, size, now):
        outcome = super().process_request(path, object_id, size, now)
        self._mutation_clock += 1
        if self._mutation_clock % 151 == 0:
            for state in self._nodes.values():
                cached = next(iter(state.cache.object_ids()), None)
                if cached is not None:
                    state.dcache.insert(state.cache.entry(cached).descriptor)
                    break
        return outcome


class _BrokenDPMutant(CoordinatedScheme):
    """Placement solver corruption: drops a chosen node, keeps the gain."""

    name = "mutant-broken-dp"

    def _solve(self, problem) -> PlacementSolution:
        solution = solve_placement(problem)
        if len(solution.indices) >= 2:
            return PlacementSolution(
                indices=solution.indices[:-1], gain=solution.gain
            )
        if solution.indices:
            return PlacementSolution(
                indices=solution.indices, gain=solution.gain * 1.5
            )
        return solution


class _HiddenStateMutant(LRUEverywhereScheme):
    """Nondeterminism: placement depends on state shared across instances."""

    name = "mutant-hidden-state"

    _shared_counter = 0  # class-level: survives into the shadow replay

    def _placement_indices(self, path, hit_index):
        cls = type(self)
        cls._shared_counter += 1
        if cls._shared_counter % 3 == 0:
            return []
        return super()._placement_indices(path, hit_index)


# -- harness -----------------------------------------------------------------


@dataclass(frozen=True)
class SelftestCase:
    """Outcome of auditing one scheme (mutant or clean control)."""

    name: str
    expect_violations: bool
    expected_checks: Tuple[str, ...]
    violations: Tuple[str, ...]
    fired_checks: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        if not self.expect_violations:
            return not self.violations
        return any(c in self.expected_checks for c in self.fired_checks)

    def format(self) -> str:
        status = "ok" if self.passed else "FAILED"
        if self.expect_violations:
            want = "|".join(self.expected_checks)
            got = ", ".join(self.fired_checks) or "none"
            return f"{status:6s} {self.name}: expected {want}; audit fired {got}"
        return (
            f"{status:6s} {self.name}: clean control, "
            f"{len(self.violations)} violations"
        )


@dataclass(frozen=True)
class SelftestReport:
    cases: Tuple[SelftestCase, ...]

    @property
    def ok(self) -> bool:
        return all(case.passed for case in self.cases)

    def format(self) -> str:
        lines = [case.format() for case in self.cases]
        verdict = (
            "audit self-test PASSED: every seeded mutation was detected"
            if self.ok
            else "audit self-test FAILED"
        )
        return "\n".join(lines + [verdict])


def run_selftest() -> SelftestReport:
    """Audit four seeded mutants and three clean controls."""
    generator = BoeingLikeTraceGenerator(_SELFTEST_WORKLOAD)
    trace = generator.generate()
    catalog = generator.catalog
    architecture = build_architecture(
        "en-route", _SELFTEST_WORKLOAD, seed=_SELFTEST_WORKLOAD.seed
    )
    cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
    capacity = max(1, int(0.03 * catalog.total_bytes))
    dcache_entries = max(1, int(3 * capacity / catalog.mean_size))

    def descriptor_factory(cls) -> Callable[[], object]:
        return lambda: cls(cost_model, capacity, dcache_entries)

    def plain_factory(cls) -> Callable[[], object]:
        return lambda: cls(cost_model, capacity)

    plan = [
        ("byte-leak", plain_factory(_ByteLeakMutant), True,
         ("cache-accounting", "scheme-invariants")),
        ("descriptor-overlap", descriptor_factory(_DescriptorOverlapMutant),
         True, ("scheme-invariants",)),
        ("broken-dp", descriptor_factory(_BrokenDPMutant), True,
         ("placement-objective", "placement-optimality")),
        ("hidden-state", plain_factory(_HiddenStateMutant), True,
         ("shadow-replay",)),
        ("control-lru", plain_factory(LRUEverywhereScheme), False, ()),
        ("control-lnc-r", descriptor_factory(LNCRScheme), False, ()),
        ("control-coordinated", descriptor_factory(CoordinatedScheme),
         False, ()),
    ]

    cases: List[SelftestCase] = []
    for name, factory, expect_violations, expected_checks in plan:
        _, report = audited_run(
            architecture, cost_model, factory, trace, config=_AUDIT_CONFIG
        )
        cases.append(
            SelftestCase(
                name=name,
                expect_violations=expect_violations,
                expected_checks=tuple(expected_checks),
                violations=tuple(v.format() for v in report.violations),
                fired_checks=tuple(
                    sorted({v.check for v in report.violations})
                ),
            )
        )
    return SelftestReport(cases=tuple(cases))
