"""Differential oracles: two independent implementations, one answer.

* :class:`MirroredNCLCache` -- the default bisect-list NCL cache with a
  lazy-deletion heap NCL cache (the paper's suggested structure, section
  2.4) shadowing every mutation.  Both structures see identical
  descriptor state, so every victim selection and every piggybacked
  ``cost_loss`` must agree; divergences are collected (never raised from
  the decision path, so audited runs stay bit-identical to unaudited
  ones) and drained by the auditor's periodic sweep.

* :class:`PlacementOracle` -- samples the coordinated scheme's *live*
  placement problems (real piggybacked ``(f_i, m_i, l_i)`` vectors, not
  synthetic ones) and checks the O(n^2) dynamic program against the
  O(2^n) exhaustive reference: the reported gain must equal the
  objective recomputed from the chosen indices, and must match the
  brute-force optimum.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.cache.base import CacheEntry
from repro.cache.ncl import NCLCache
from repro.cache.ncl_heap import HeapNCLCache
from repro.core.placement import (
    PlacementProblem,
    PlacementSolution,
    brute_force_placement,
    solve_placement,
)
from repro.verify.violations import AuditViolation

_GAIN_REL_TOL = 1e-9
_GAIN_ABS_TOL = 1e-12


class MirroredNCLCache(NCLCache):
    """List-NCL cache shadowed by a heap-NCL twin for differential audit.

    Policy behavior is exactly :class:`~repro.cache.ncl.NCLCache` -- the
    shadow only observes.  The shadow's entries *are* the primary's
    :class:`CacheEntry` objects (shared descriptors), mirrored through
    the insert/remove hooks and key refreshes, so any disagreement in
    eviction decisions or cost-loss pricing indicts one of the two NCL
    bookkeeping structures rather than descriptor state.

    Divergences append to :attr:`divergences`; the audit layer drains
    them via :meth:`drain_divergences`.  ``check_invariants`` verifies
    the shadow itself plus full eviction-order agreement.
    """

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._shadow = HeapNCLCache(capacity_bytes)
        self.divergences: List[str] = []

    # -- mutation mirroring --------------------------------------------------

    def refresh_key(self, object_id: int, now: float) -> None:
        # All descriptor-driven reordering (record_access,
        # set_miss_penalty) funnels through here in the list structure.
        super().refresh_key(object_id, now)
        if object_id in self._shadow._entries:
            self._shadow._push(object_id, now)
            self._shadow._compact()

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        super().on_insert(entry, now)
        shadow = self._shadow
        shadow._entries[entry.object_id] = entry
        shadow._used += entry.size
        shadow._push(entry.object_id, now)
        shadow._compact()

    def on_remove(self, entry: CacheEntry) -> None:
        super().on_remove(entry)
        self._shadow._remove_entry(entry)

    # -- differential decision points ---------------------------------------

    def select_victims(
        self, needed_bytes: int, now: float, exclude: Optional[int] = None
    ) -> List[CacheEntry]:
        victims = super().select_victims(needed_bytes, now, exclude=exclude)
        mirrored = self._shadow.select_victims(needed_bytes, now, exclude=exclude)
        ours = [v.object_id for v in victims]
        theirs = [v.object_id for v in mirrored]
        if ours != theirs:
            self.divergences.append(
                f"select_victims({needed_bytes}B, now={now:g}): "
                f"list chose {ours[:8]} but heap chose {theirs[:8]}"
            )
        return victims

    def cost_loss(self, object_id: int, size: int, now: float) -> Optional[float]:
        loss = super().cost_loss(object_id, size, now)
        mirrored = self._shadow.cost_loss(object_id, size, now)
        # Both implementations sum the same victims' current cost rates in
        # the same order, so agreement should be exact.
        if loss != mirrored:
            self.divergences.append(
                f"cost_loss(object {object_id}, {size}B, now={now:g}): "
                f"list says {loss!r} but heap says {mirrored!r}"
            )
        return loss

    # -- audit surface -------------------------------------------------------

    def drain_divergences(self) -> List[str]:
        """Return and clear the recorded divergences."""
        drained = self.divergences
        self.divergences = []
        return drained

    def check_invariants(self) -> None:
        super().check_invariants()
        self._shadow.check_invariants()
        if self._shadow.used_bytes != self.used_bytes:
            raise AssertionError(
                f"shadow byte accounting drift: list={self.used_bytes} "
                f"heap={self._shadow.used_bytes}"
            )
        ours = self.eviction_order()
        theirs = self._shadow.eviction_order()
        if ours != theirs:
            raise AssertionError(
                f"list/heap NCL eviction order diverged: "
                f"{ours[:8]} vs {theirs[:8]}"
            )


class PlacementOracle:
    """Sampled differential check of live placement decisions.

    Installed as a coordinated-family scheme's ``placement_observer``;
    every ``sample_every``-th solved problem is re-checked.  Violations
    go to the ``report`` callback supplied by the auditor.

    Exact solutions (``method == "dp"``) must equal the brute-force
    optimum.  Approximate solutions (the adaptive scheme's greedy hill
    climb, the cost-aware single-copy rule) are held to two laws -- the
    reported gain must recompute from the chosen indices, and must never
    *exceed* the DP optimum -- while the realised adaptive-vs-DP gap is
    accumulated into :attr:`gap_count` / :attr:`gap_total` /
    :attr:`gap_max` and surfaced per-run by the auditor's report.  On
    small problems the DP reference itself is still cross-checked
    against the exhaustive solver, so approximate runs keep exercising
    the optimality oracle.
    """

    def __init__(
        self,
        report: Callable[[AuditViolation], None],
        sample_every: int = 37,
        brute_force_limit: int = 12,
    ) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be non-negative")
        self.report = report
        self.sample_every = sample_every
        self.brute_force_limit = brute_force_limit
        self.problems_seen = 0
        self.problems_checked = 0
        # Approximation-gap accounting (optimum minus achieved gain) over
        # the sampled problems solved by a non-exact method.
        self.gap_count = 0
        self.gap_total = 0.0
        self.gap_max = 0.0
        self.gap_suboptimal = 0

    def gap_summary(self) -> Optional[str]:
        """One-line description of the observed vs-DP gap, if any."""
        if not self.gap_count:
            return None
        return (
            f"{self.gap_suboptimal}/{self.gap_count} sampled problems "
            f"strictly below the DP optimum; mean gap "
            f"{self.gap_total / self.gap_count:.6g}, max {self.gap_max:.6g}"
        )

    def __call__(
        self, problem: PlacementProblem, solution: PlacementSolution
    ) -> None:
        self.problems_seen += 1
        if self.sample_every <= 0 or self.problems_seen % self.sample_every:
            return
        self.problems_checked += 1
        solver = "DP" if solution.is_exact else solution.method
        try:
            recomputed = problem.objective(solution.indices)
        except (ValueError, IndexError) as error:
            self.report(
                AuditViolation(
                    check="placement-objective",
                    detail=f"solution indices invalid: {error}",
                )
            )
            return
        if not math.isclose(
            recomputed, solution.gain, rel_tol=_GAIN_REL_TOL, abs_tol=_GAIN_ABS_TOL
        ):
            self.report(
                AuditViolation(
                    check="placement-objective",
                    detail=(
                        f"{solver} reports gain {solution.gain!r} for indices "
                        f"{solution.indices} but the objective recomputes to "
                        f"{recomputed!r}"
                    ),
                )
            )
        if not solution.is_exact:
            optimum = solve_placement(problem)
            gap = optimum.gain - solution.gain
            if gap < 0 and not math.isclose(
                optimum.gain,
                solution.gain,
                rel_tol=_GAIN_REL_TOL,
                abs_tol=_GAIN_ABS_TOL,
            ):
                self.report(
                    AuditViolation(
                        check="placement-gap",
                        detail=(
                            f"{solver} gain {solution.gain!r} (indices "
                            f"{solution.indices}) exceeds the DP optimum "
                            f"{optimum.gain!r} (indices {optimum.indices}) -- "
                            f"an approximation cannot beat the exact solver"
                        ),
                    )
                )
                return
            gap = max(gap, 0.0)
            self.gap_count += 1
            self.gap_total += gap
            self.gap_max = max(self.gap_max, gap)
            if gap > _GAIN_ABS_TOL and gap > _GAIN_REL_TOL * abs(optimum.gain):
                self.gap_suboptimal += 1
            # The exact-vs-exhaustive cross-check below now audits the
            # DP reference rather than the scheme's own answer.
            solution = optimum
            solver = "DP"
        if problem.num_nodes > self.brute_force_limit:
            return
        reference = brute_force_placement(problem)
        if not math.isclose(
            reference.gain, solution.gain, rel_tol=_GAIN_REL_TOL, abs_tol=_GAIN_ABS_TOL
        ):
            self.report(
                AuditViolation(
                    check="placement-optimality",
                    detail=(
                        f"{solver} gain {solution.gain!r} (indices "
                        f"{solution.indices}) != brute-force optimum "
                        f"{reference.gain!r} (indices {reference.indices}) on "
                        f"a {problem.num_nodes}-node problem"
                    ),
                )
            )
