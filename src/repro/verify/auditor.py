"""The runtime audit driver wired into the simulation engine.

An :class:`Auditor` rides along a :meth:`SimulationEngine.run
<repro.sim.engine.SimulationEngine.run>` replay:

* it observes every request outcome (feeding the :class:`OutcomeLedger`
  double books and sampling outcome signatures for the shadow-replay
  harness);
* every ``audit_every`` requests -- and once at the end -- it sweeps the
  scheme's invariants plus the cross-layer accounting identities;
* on coordinated schemes it installs a :class:`~repro.verify.oracles.
  PlacementOracle` on the ``placement_observer`` seam, differential-
  checking the live placement DP against the exhaustive reference.

``strict=True`` (the default) raises :class:`AuditFailure` at the first
violation -- the loud mode behind ``repro sim --audit``.  The experiment
runner uses ``strict=False`` so violations become structured records in
the checkpoint / run-record sidecars instead of aborting a whole grid.

None of the audit work feeds back into the simulation: an audited run's
metrics are bit-identical to the same run without an auditor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.verify.invariants import (
    OutcomeLedger,
    cache_accounting_violations,
    scheme_invariant_violations,
)
from repro.verify.oracles import MirroredNCLCache, PlacementOracle
from repro.verify.violations import AuditFailure, AuditViolation


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of one audited run.

    ``audit_every`` is the periodic sweep cadence in requests.
    ``placement_sample_every`` / ``brute_force_limit`` control the
    placement oracle (every Nth live problem, brute-forced only up to
    the given path length).  ``shadow_replay`` asks the harness driving
    the run to re-execute the trace on a fresh scheme afterwards and
    compare outcome signatures sampled every
    ``shadow_replay_sample_every`` requests.  ``strict`` selects loud
    (raise) versus collecting behavior.
    """

    audit_every: int = 1000
    placement_sample_every: int = 37
    brute_force_limit: int = 12
    shadow_replay: bool = False
    shadow_replay_sample_every: int = 17
    strict: bool = True

    def __post_init__(self) -> None:
        if self.audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        if self.shadow_replay_sample_every < 1:
            raise ValueError("shadow_replay_sample_every must be >= 1")


@dataclass(frozen=True)
class AuditReport:
    """What one audited run checked and what it found.

    ``notes`` carries informational observations that are not
    violations -- e.g. the adaptive scheme's measured vs-DP placement
    gap -- keyed by check name.
    """

    violations: Tuple[AuditViolation, ...] = ()
    checks_run: Dict[str, int] = field(default_factory=dict)
    notes: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_checks(self) -> int:
        return sum(self.checks_run.values())

    def format(self) -> str:
        checks = ", ".join(
            f"{name} x{count}" for name, count in sorted(self.checks_run.items())
        )
        head = f"audit: {self.total_checks} checks ({checks or 'none'})"
        if self.ok:
            lines = [head + ", no violations"]
        else:
            lines = [head + f", {len(self.violations)} VIOLATIONS:"]
            lines.extend("  " + v.format() for v in self.violations)
        lines.extend(
            f"  {name}: {note}" for name, note in sorted(self.notes.items())
        )
        return "\n".join(lines)


class Auditor:
    """Collects observations during a run and executes the checks."""

    def __init__(self, config: AuditConfig | None = None) -> None:
        self.config = config or AuditConfig()
        self.violations: List[AuditViolation] = []
        self.checks_run: Dict[str, int] = {}
        self._ledger = OutcomeLedger()
        self._signatures: Dict[int, tuple] = {}
        self._placement_oracle: PlacementOracle | None = None
        self.notes: Dict[str, str] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, scheme) -> None:
        """Install the oracles a scheme exposes seams for."""
        if hasattr(scheme, "placement_observer"):
            self._placement_oracle = PlacementOracle(
                report=self._flag,
                sample_every=self.config.placement_sample_every,
                brute_force_limit=self.config.brute_force_limit,
            )
            scheme.placement_observer = self._placement_oracle

    # -- per-request observations -------------------------------------------

    def observe_outcome(self, index: int, outcome) -> None:
        """Sample outcome signatures for the shadow-replay harness."""
        if (
            self.config.shadow_replay
            and index % self.config.shadow_replay_sample_every == 0
        ):
            self._signatures[index] = outcome_signature(outcome)

    def observe_measured(self, outcome, latency: float) -> None:
        """Mirror one measured outcome into the independent ledger."""
        self._ledger.record(outcome, latency)

    @property
    def outcome_signatures(self) -> Dict[int, tuple]:
        """Sampled ``{request_index: signature}`` of the primary run."""
        return dict(self._signatures)

    # -- periodic sweep ------------------------------------------------------

    def audit_now(self, scheme, collector, request_index: int = -1) -> None:
        """Run the invariant sweep and accounting identities right now."""
        self._count("invariant-sweep")
        for violation in scheme_invariant_violations(scheme, request_index):
            self._flag(violation)
        for violation in cache_accounting_violations(scheme, request_index):
            self._flag(violation)
        for node, cache in scheme.caches().items():
            if isinstance(cache, MirroredNCLCache):
                for detail in cache.drain_divergences():
                    self._flag(
                        AuditViolation(
                            check="ncl-shadow",
                            detail=f"node {node}: {detail}",
                            request_index=request_index,
                        )
                    )
        for violation in self._ledger.violations_against(collector, request_index):
            self._flag(violation)

    def finalize(self, scheme, collector, request_index: int = -1) -> AuditReport:
        """Final sweep + report; called by the engine after the replay."""
        self.audit_now(scheme, collector, request_index)
        oracle = self._placement_oracle
        if oracle is not None:
            self.checks_run["placement-oracle"] = oracle.problems_checked
            if oracle.gap_count:
                self.checks_run["placement-gap"] = oracle.gap_count
                summary = oracle.gap_summary()
                if summary is not None:
                    self.notes["placement-gap"] = summary
        return self.report()

    def extend(self, violations) -> None:
        """Fold in violations found by an out-of-run harness (replay)."""
        for violation in violations:
            self._flag(violation)

    def report(self) -> AuditReport:
        return AuditReport(
            violations=tuple(self.violations),
            checks_run=dict(self.checks_run),
            notes=dict(self.notes),
        )

    # -- internals -----------------------------------------------------------

    def _count(self, check: str) -> None:
        self.checks_run[check] = self.checks_run.get(check, 0) + 1

    def _flag(self, violation: AuditViolation) -> None:
        self.violations.append(violation)
        if self.config.strict:
            raise AuditFailure(violation)


def outcome_signature(outcome) -> tuple:
    """Comparable fingerprint of one request outcome."""
    return (
        outcome.hit_index,
        tuple(outcome.inserted_nodes),
        outcome.evicted_objects,
        outcome.size,
    )
