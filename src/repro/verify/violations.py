"""Structured audit findings and the loud-failure exception.

Every check in :mod:`repro.verify` reports problems as
:class:`AuditViolation` records -- small, JSON-ready facts naming the
check that fired, what it observed and (when known) the request index at
which it observed it.  In strict mode the :class:`~repro.verify.auditor.
Auditor` converts the first violation into an :class:`AuditFailure`
raised out of the simulation; in collect mode violations accumulate and
flow into the experiment runner's checkpoint / run-record sidecars.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AuditViolation:
    """One failed correctness check.

    ``check`` is a stable slug naming the identity or oracle that fired
    (e.g. ``"cache-accounting"``, ``"placement-optimality"``,
    ``"shadow-replay"``); ``detail`` is the human-readable evidence;
    ``request_index`` is the 0-based trace position at the time of the
    check, or ``-1`` when the violation is not tied to a request.
    """

    check: str
    detail: str
    request_index: int = -1

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "detail": self.detail,
            "request_index": self.request_index,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "AuditViolation":
        return cls(
            check=str(raw.get("check", "unknown")),
            detail=str(raw.get("detail", "")),
            request_index=int(raw.get("request_index", -1)),
        )

    def format(self) -> str:
        where = (
            f" @ request {self.request_index}" if self.request_index >= 0 else ""
        )
        return f"[{self.check}]{where} {self.detail}"


class AuditFailure(Exception):
    """Raised in strict audit mode the moment a check fails.

    Carries the triggering :class:`AuditViolation` so callers can log or
    persist the structured record even when failing loudly.
    """

    def __init__(self, violation: AuditViolation) -> None:
        super().__init__(violation.format())
        self.violation = violation
