"""Tiers-like random WAN/MAN topology generator.

The paper's en-route experiments use topologies produced by the Tiers
program [Calvert, Doar & Zegura 1997]: a wide-area backbone (WAN) plus a
number of metropolitan-area networks (MANs) hanging off it.  Tiers places
nodes at random plane coordinates, connects each tier with a minimum
spanning tree over Euclidean distance, and adds redundancy links between
near-by nodes.  This module reimplements that construction.

Defaults reproduce Table 1 of the paper: 100 nodes (50 WAN + 50 MAN split
into 5 MANs of 10 nodes), 173 links, and a WAN:MAN mean-delay ratio of
roughly 8:1 (0.146 s vs 0.018 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.topology.graph import Network, NodeKind


@dataclass(frozen=True)
class TiersConfig:
    """Parameters for :class:`TiersTopologyGenerator`.

    The defaults match Table 1 of the paper: ``49 + 59`` WAN links,
    ``5 * (9 + 3)`` MAN links and 5 MAN-to-WAN attachment links, i.e. 173
    links over 100 nodes.
    """

    wan_nodes: int = 50
    num_mans: int = 5
    man_nodes: int = 10
    wan_extra_links: int = 59
    man_extra_links: int = 3
    wan_delay_mean: float = 0.146
    man_delay_mean: float = 0.018
    seed: int = 0

    def __post_init__(self) -> None:
        if self.wan_nodes < 2:
            raise ValueError("need at least 2 WAN nodes")
        if self.num_mans < 1 or self.man_nodes < 1:
            raise ValueError("need at least one MAN with one node")
        if self.wan_delay_mean <= 0 or self.man_delay_mean <= 0:
            raise ValueError("mean delays must be positive")
        if self.wan_extra_links < 0 or self.man_extra_links < 0:
            raise ValueError("redundancy link counts must be non-negative")

    @property
    def total_nodes(self) -> int:
        return self.wan_nodes + self.num_mans * self.man_nodes


def _mst_edges(points: np.ndarray) -> List[Tuple[int, int]]:
    """Prim's minimum spanning tree over Euclidean distance.

    Returns edges as local index pairs.  ``points`` is an ``(n, 2)`` array.
    """
    n = len(points)
    if n == 1:
        return []
    dist = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=2)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best_dist = dist[0].copy()
    best_from = np.zeros(n, dtype=int)
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        v = int(np.argmin(candidates))
        edges.append((int(best_from[v]), v))
        in_tree[v] = True
        closer = dist[v] < best_dist
        update = closer & ~in_tree
        best_dist[update] = dist[v][update]
        best_from[update] = v
    return edges


def _redundancy_edges(
    points: np.ndarray,
    existing: set,
    count: int,
) -> List[Tuple[int, int]]:
    """Pick the ``count`` shortest non-existing edges (Tiers-style redundancy)."""
    n = len(points)
    candidates: List[Tuple[float, int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in existing:
                d = float(np.linalg.norm(points[i] - points[j]))
                candidates.append((d, i, j))
    candidates.sort()
    return [(i, j) for _, i, j in candidates[:count]]


class TiersTopologyGenerator:
    """Generate random two-tier (WAN + MANs) topologies.

    Usage::

        net = TiersTopologyGenerator(TiersConfig(seed=7)).generate()

    Node ids ``0 .. wan_nodes-1`` are WAN nodes; the remainder are MAN
    nodes, grouped contiguously per MAN.  Clients and origin servers should
    attach to MAN nodes only (the WAN is a pure backbone, section 3.2).
    """

    def __init__(self, config: TiersConfig | None = None) -> None:
        self.config = config or TiersConfig()

    def generate(self) -> Network:
        """Build one random topology according to the configuration."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        net = Network()

        for _ in range(cfg.wan_nodes):
            net.add_node(NodeKind.WAN)
        man_groups: List[List[int]] = []
        for _ in range(cfg.num_mans):
            group = [net.add_node(NodeKind.MAN) for _ in range(cfg.man_nodes)]
            man_groups.append(group)

        wan_points = rng.random((cfg.wan_nodes, 2))
        self._connect_tier(
            net,
            points=wan_points,
            node_ids=list(range(cfg.wan_nodes)),
            extra_links=cfg.wan_extra_links,
            delay_mean=cfg.wan_delay_mean,
        )

        for man_index, group in enumerate(man_groups):
            man_points = rng.random((cfg.man_nodes, 2)) * 0.1
            self._connect_tier(
                net,
                points=man_points,
                node_ids=group,
                extra_links=cfg.man_extra_links,
                delay_mean=cfg.man_delay_mean,
            )
            # Attach each MAN's gateway (its first node) to a WAN node.
            gateway = group[0]
            wan_attach = int(rng.integers(cfg.wan_nodes))
            attach_delay = float(
                cfg.man_delay_mean * rng.uniform(0.5, 1.5)
            )
            net.add_link(gateway, wan_attach, attach_delay)

        return net

    def _connect_tier(
        self,
        net: Network,
        points: np.ndarray,
        node_ids: Sequence[int],
        extra_links: int,
        delay_mean: float,
    ) -> None:
        """Wire one tier: MST over random points plus redundancy links.

        Link delays are proportional to Euclidean distance, rescaled so
        that the tier's mean link delay equals ``delay_mean``.
        """
        n = len(node_ids)
        tree = _mst_edges(points)
        existing = {tuple(sorted(e)) for e in tree}
        max_extra = n * (n - 1) // 2 - len(existing)
        extra = _redundancy_edges(points, existing, min(extra_links, max_extra))
        edges = tree + extra
        if not edges:
            return
        distances = np.array(
            [np.linalg.norm(points[i] - points[j]) for i, j in edges]
        )
        # Guard degenerate layouts where all points coincide.
        mean_dist = float(distances.mean())
        if mean_dist <= 0:
            delays = np.full(len(edges), delay_mean)
        else:
            delays = distances * (delay_mean / mean_dist)
            # Never emit a zero-delay link: clamp to 1% of the mean.
            delays = np.maximum(delays, delay_mean * 0.01)
        for (i, j), delay in zip(edges, delays):
            net.add_link(node_ids[i], node_ids[j], float(delay))
