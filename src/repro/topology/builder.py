"""Convenience topology builders for tests, examples and micro-studies."""

from __future__ import annotations

from typing import Sequence

from repro.topology.graph import Network, NodeKind


def build_chain(delays: Sequence[float], kind: NodeKind = NodeKind.MAN) -> Network:
    """Build a chain topology ``0 - 1 - ... - n`` with the given link delays.

    A chain is the simplest cascaded architecture: node ``len(delays)`` can
    act as the origin-server attachment and node 0 as the client attachment.
    """
    if not delays:
        raise ValueError("a chain needs at least one link delay")
    net = Network()
    for _ in range(len(delays) + 1):
        net.add_node(kind)
    for i, delay in enumerate(delays):
        net.add_link(i, i + 1, delay)
    return net


def build_star(leaf_delays: Sequence[float], kind: NodeKind = NodeKind.MAN) -> Network:
    """Build a star: node 0 is the hub, leaves ``1..n`` hang off it."""
    if not leaf_delays:
        raise ValueError("a star needs at least one leaf")
    net = Network()
    net.add_node(kind)
    for delay in leaf_delays:
        leaf = net.add_node(kind)
        net.add_link(0, leaf, delay)
    return net
