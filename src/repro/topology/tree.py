"""Full O-ary tree topologies for the hierarchical caching architecture.

Paper section 3.2 / Figure 5: caches form a full tree of fanout ``O`` and a
given depth.  Origin servers attach above the root, clients below the
leaves.  Link delays grow exponentially towards the root: the link between a
level-``i`` node and its level-``(i+1)`` parent has mean delay ``g**i * d``
where ``d`` is the base delay and ``g`` the growth factor (defaults
``d = 0.008`` s, ``g = 5``).  The *level* of a node is its height above the
leaves (leaves are level 0, the root is level ``depth - 1``).

The virtual origin-server attachment above the root is **not** a node of the
tree returned here; the simulator models it as a dedicated server node (see
:func:`build_tree_topology`, which can optionally append it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.topology.graph import Network, NodeKind


@dataclass(frozen=True)
class TreeConfig:
    """Parameters for the hierarchical architecture (paper defaults)."""

    depth: int = 4
    fanout: int = 3
    base_delay: float = 0.008
    growth_factor: float = 5.0
    include_server_node: bool = True

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("tree depth must be >= 1")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.base_delay <= 0:
            raise ValueError("base delay must be positive")
        if self.growth_factor <= 0:
            raise ValueError("growth factor must be positive")

    @property
    def num_cache_nodes(self) -> int:
        """Number of cache nodes in a full tree of this depth/fanout."""
        if self.fanout == 1:
            return self.depth
        return (self.fanout**self.depth - 1) // (self.fanout - 1)

    def level_delay(self, level: int) -> float:
        """Mean delay of the link from a level-``level`` node to its parent."""
        return self.base_delay * self.growth_factor**level


@dataclass(frozen=True)
class TreeTopology:
    """A built hierarchical topology.

    Attributes
    ----------
    network:
        The underlying :class:`Network`.  Node 0 is the root cache; node ids
        increase breadth-first.  When ``config.include_server_node`` is set,
        the last node is the origin-server attachment point, linked to the
        root with delay ``g**(depth-1) * d`` (the paper's ``g**3 * d`` for
        its depth-4 tree whose root sits at level 3).
    root:
        Node id of the root cache.
    leaves:
        Node ids of the leaf caches (clients attach here).
    server_node:
        Node id of the origin-server attachment, or ``None``.
    """

    network: Network
    config: TreeConfig
    root: int
    leaves: List[int]
    server_node: int | None


def build_tree_topology(config: TreeConfig | None = None) -> TreeTopology:
    """Build a full O-ary tree per the paper's hierarchical architecture.

    With the paper's defaults (depth 4, fanout 3) the tree has 40 cache
    nodes: 1 root (level 3), 3 + 9 internal (levels 2, 1) and 27 leaves
    (level 0).  The root-to-server link delay is ``g**(depth-1) * d``
    (``g**3 * d`` in the paper's notation where the root is level 3).
    """
    cfg = config or TreeConfig()
    net = Network()

    # Breadth-first construction: level of a node = height above leaves.
    root_level = cfg.depth - 1
    root = net.add_node(NodeKind.TREE, level=root_level)
    frontier = [root]
    for level in range(root_level - 1, -1, -1):
        next_frontier: List[int] = []
        for parent in frontier:
            for _ in range(cfg.fanout):
                child = net.add_node(NodeKind.TREE, level=level)
                # Link between a level-`level` child and its parent has
                # delay g**level * d (paper: level of the lower end).
                net.add_link(child, parent, cfg.level_delay(level))
                next_frontier.append(child)
        frontier = next_frontier
    leaves = frontier if cfg.depth > 1 else [root]

    server_node: int | None = None
    if cfg.include_server_node:
        server_node = net.add_node(NodeKind.TREE, level=cfg.depth)
        # Paper: "the average delay between the root node and an origin
        # server is set to g**3 * d" for a depth-4 tree whose root sits at
        # level 3 -- i.e. g**root_level... note g**3 = g**(depth-1).
        net.add_link(root, server_node, cfg.level_delay(root_level))

    return TreeTopology(
        network=net,
        config=cfg,
        root=root,
        leaves=leaves,
        server_node=server_node,
    )
