"""Generic undirected network model.

The paper models a cascaded caching architecture as a graph ``G = (V, E)``
where nodes are caches/origin servers and every link ``(u, v)`` carries a
non-negative cost for shipping a request and its response across it
(section 2).  This module provides that graph: nodes are small integers,
links are undirected and carry a *base delay* -- the delay experienced by an
average-size object (section 3.2).  Object-size-dependent costs are layered
on top by :mod:`repro.costs`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple


class NodeKind(enum.Enum):
    """Role of a node in the topology.

    ``WAN`` nodes form the backbone (no clients or servers attach to them),
    ``MAN`` nodes are edge nodes where clients and origin servers live, and
    ``TREE`` marks nodes of the hierarchical architecture.
    """

    WAN = "wan"
    MAN = "man"
    TREE = "tree"


@dataclass(frozen=True)
class Link:
    """An undirected network link with a base delay in seconds.

    The base delay is the cost of transferring a request plus the response
    for an object of *average* size; actual per-object costs scale with
    object size (see :class:`repro.costs.LatencyCostModel`).
    """

    u: int
    v: int
    delay: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop link at node {self.u}")
        if self.delay < 0:
            raise ValueError(f"negative link delay {self.delay}")

    def endpoints(self) -> Tuple[int, int]:
        """Return the canonical (min, max) endpoint pair."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


class Network:
    """An undirected network of caches and attachment points.

    Nodes are dense integers ``0 .. num_nodes - 1``.  Each node has a
    :class:`NodeKind` and optionally a *level* (used by tree topologies).
    Links are unique per unordered node pair.
    """

    def __init__(self) -> None:
        self._kinds: List[NodeKind] = []
        self._levels: List[int] = []
        self._adjacency: List[Dict[int, float]] = []

    # -- construction ------------------------------------------------------

    def add_node(self, kind: NodeKind, level: int = 0) -> int:
        """Add a node and return its id."""
        self._kinds.append(kind)
        self._levels.append(level)
        self._adjacency.append({})
        return len(self._kinds) - 1

    def add_link(self, u: int, v: int, delay: float) -> Link:
        """Add an undirected link; raises if it already exists."""
        link = Link(u, v, delay)
        self._check_node(u)
        self._check_node(v)
        if v in self._adjacency[u]:
            raise ValueError(f"duplicate link ({u}, {v})")
        self._adjacency[u][v] = delay
        self._adjacency[v][u] = delay
        return link

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._kinds):
            raise KeyError(f"unknown node {node}")

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._kinds)

    @property
    def num_links(self) -> int:
        return sum(len(adj) for adj in self._adjacency) // 2

    def nodes(self) -> range:
        return range(self.num_nodes)

    def kind(self, node: int) -> NodeKind:
        self._check_node(node)
        return self._kinds[node]

    def level(self, node: int) -> int:
        self._check_node(node)
        return self._levels[node]

    def nodes_of_kind(self, kind: NodeKind) -> List[int]:
        return [n for n in self.nodes() if self._kinds[n] is kind]

    def neighbors(self, node: int) -> Iterator[Tuple[int, float]]:
        """Yield (neighbor, delay) pairs for a node."""
        self._check_node(node)
        return iter(self._adjacency[node].items())

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adjacency[node])

    def has_link(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in self._adjacency[u]

    def link_delay(self, u: int, v: int) -> float:
        """Base delay of the link between ``u`` and ``v``."""
        self._check_node(u)
        if v not in self._adjacency[u]:
            raise KeyError(f"no link ({u}, {v})")
        return self._adjacency[u][v]

    def links(self) -> Iterator[Link]:
        """Yield every link exactly once (u < v)."""
        for u in self.nodes():
            for v, delay in self._adjacency[u].items():
                if u < v:
                    yield Link(u, v, delay)

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0 (or empty)."""
        if self.num_nodes == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_nodes

    def mean_delay(self, kinds: Iterable[NodeKind] | None = None) -> float:
        """Mean base delay over links.

        When ``kinds`` is given, only links whose *higher-kind* endpoint
        classification matches are counted: a link is a WAN link when both
        endpoints are WAN nodes, otherwise it is a MAN(-attachment) link.
        """
        selected = list(kinds) if kinds is not None else None
        total = 0.0
        count = 0
        for link in self.links():
            if selected is not None:
                both_wan = (
                    self._kinds[link.u] is NodeKind.WAN
                    and self._kinds[link.v] is NodeKind.WAN
                )
                link_kind = NodeKind.WAN if both_wan else NodeKind.MAN
                if link_kind not in selected:
                    continue
            total += link.delay
            count += 1
        return total / count if count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Network(nodes={self.num_nodes}, links={self.num_links})"
