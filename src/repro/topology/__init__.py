"""Network topology models for cascaded caching architectures.

This package provides the network substrate the paper's evaluation runs on:

* :mod:`repro.topology.graph` -- the generic undirected network model with
  per-link base delays.
* :mod:`repro.topology.tiers` -- a Tiers-like random WAN/MAN topology
  generator (en-route caching architecture, paper section 3.2 / Table 1).
* :mod:`repro.topology.tree` -- full O-ary tree topologies with exponentially
  growing level delays (hierarchical caching architecture, Figure 5).
* :mod:`repro.topology.builder` -- convenience builders for hand-crafted
  topologies (chains, stars) used in tests and examples.
"""

from repro.topology.graph import Link, Network, NodeKind
from repro.topology.builder import build_chain, build_star
from repro.topology.tiers import TiersConfig, TiersTopologyGenerator
from repro.topology.tree import TreeConfig, build_tree_topology

__all__ = [
    "Link",
    "Network",
    "NodeKind",
    "TiersConfig",
    "TiersTopologyGenerator",
    "TreeConfig",
    "build_chain",
    "build_star",
    "build_tree_topology",
]
