"""Deterministic, seeded fault injection for the live serving layer.

``repro.faults`` makes the cluster's failure behavior testable: a
:class:`FaultPlan` scripts frame drops, delays, duplicates, corruption
and whole-node crashes/slow-downs; a :class:`FaultInjector` turns the
plan into per-call decisions from one seeded RNG; and a
:class:`FaultyTransport` applies them above any real
:class:`~repro.serve.transport.Transport` -- so the very same plan runs
against the in-process oracle transport and against loopback TCP.

The resilience machinery it exercises (per-RPC deadlines, retry with
backoff, per-upstream circuit breakers, and upstream failover in the
piggyback walk) lives in :mod:`repro.serve`; the chaos gate tying the
two together is ``tests/test_faults_chaos.py``.
"""

from repro.faults.injector import (
    DROP_HOLD_SECONDS,
    FaultInjector,
    FaultyTransport,
    LinkDecision,
)
from repro.faults.plan import NODE_FAULT_KINDS, FaultPlan, LinkRule, NodeFault

__all__ = [
    "DROP_HOLD_SECONDS",
    "FaultInjector",
    "FaultPlan",
    "FaultyTransport",
    "LinkDecision",
    "LinkRule",
    "NODE_FAULT_KINDS",
    "NodeFault",
]
