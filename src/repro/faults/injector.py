"""Deterministic fault injection above any cluster transport.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into per-call decisions; the :class:`FaultyTransport` applies them while
wrapping a real :class:`~repro.serve.transport.Transport`:

* a **dropped** frame never reaches the destination handler -- the
  wrapper (optionally after a short hold) raises
  :class:`~repro.serve.protocol.CallTimeout`, exactly what the caller
  would observe when its per-RPC deadline expires on a lost frame;
* a **corrupted** frame is rejected before dispatch and surfaces as
  :class:`~repro.serve.protocol.FrameCorruption` (the receiving side's
  error-frame answer, collapsed into one exception);
* a **delayed** frame is held back, then delivered normally;
* a **duplicated** frame is dispatched twice, back to back, and the
  first reply wins -- the retransmit case where both copies arrive;
* a call towards a **crashed** node is refused with
  :class:`~repro.serve.protocol.NodeUnreachable` before touching the
  inner transport, and calls towards a **slow** node are delayed by the
  fault's ``delay_seconds``.

Faults are decided *above* the inner transport and *before* dispatch, so
a handler is never cancelled mid-mutation: under a sequential driver the
whole faulted run -- including which frames drop and when a node dies --
is a deterministic function of (plan, seed, call sequence).  That
determinism is the chaos suite's repeatability gate.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, Optional

from repro.faults.plan import FaultPlan, LinkRule
from repro.serve.protocol import (
    CallTimeout,
    FrameCorruption,
    NodeUnreachable,
)
from repro.serve.transport import Handler, Transport

# How long a dropped frame is held before the simulated deadline fires.
# Kept tiny: the point is to exercise the caller's timeout/retry path,
# not to burn a real RPC deadline of wall-clock per lost frame.
DROP_HOLD_SECONDS = 0.001


class FaultInjector:
    """Seeded per-call fault decisions for one run of a plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.calls = 0
        self.clock = float("-inf")
        # Injection tally (what was *injected*, as opposed to the nodes'
        # resilience counters, which record what was *survived*).
        self.drops = 0
        self.delays = 0
        self.duplicates = 0
        self.corruptions = 0
        self.refused_calls = 0

    # -- schedule state ------------------------------------------------------

    def observe(self, message: dict) -> None:
        """Advance the injector's call counter and trace clock."""
        self.calls += 1
        now = message.get("time")
        if isinstance(now, (int, float)) and now > self.clock:
            self.clock = float(now)

    def node_down(self, node: Optional[int]) -> bool:
        """Whether calls towards ``node`` are currently refused."""
        if node is None:
            return False
        return any(
            fault.kind == "crash" and fault.active(self.clock, self.calls)
            for fault in self.plan.node_faults_for(node)
        )

    def node_slowdown(self, node: Optional[int]) -> float:
        """Extra delay for calls towards ``node`` (0.0 when healthy)."""
        if node is None:
            return 0.0
        return sum(
            fault.delay_seconds
            for fault in self.plan.node_faults_for(node)
            if fault.kind == "slow" and fault.active(self.clock, self.calls)
        )

    # -- link decisions ------------------------------------------------------

    def link_decision(
        self, op: str, dest_node: Optional[int]
    ) -> "LinkDecision":
        """Draw this call's frame faults from the seeded stream.

        One RNG draw per configured rate keeps the stream aligned across
        runs regardless of which faults fire.
        """
        decision = LinkDecision()
        for rule in self.plan.links:
            decision.fold(rule, self._rng, applies=rule.matches(op, dest_node))
        if decision.drop:
            self.drops += 1
        elif decision.corrupt:
            self.corruptions += 1
        elif decision.duplicate:
            self.duplicates += 1
        if decision.delay_seconds > 0:
            self.delays += 1
        return decision

    def summary(self) -> dict:
        return {
            "calls": self.calls,
            "drops": self.drops,
            "delays": self.delays,
            "duplicates": self.duplicates,
            "corruptions": self.corruptions,
            "refused_calls": self.refused_calls,
        }


class LinkDecision:
    """The frame faults one call draws (folded over all matching rules)."""

    __slots__ = ("drop", "corrupt", "duplicate", "delay_seconds")

    def __init__(self) -> None:
        self.drop = False
        self.corrupt = False
        self.duplicate = False
        self.delay_seconds = 0.0

    def fold(
        self, rule: LinkRule, rng: random.Random, applies: bool
    ) -> None:
        """Consume the rule's RNG draws; apply them when the rule matches.

        Draws happen even for non-matching rules so the seeded stream
        stays aligned across calls with different scopes.
        """
        drop = rng.random() < rule.drop_rate
        delay = rng.random() < rule.delay_rate
        duplicate = rng.random() < rule.duplicate_rate
        corrupt = rng.random() < rule.corrupt_rate
        if not applies:
            return
        self.drop = self.drop or drop
        self.corrupt = self.corrupt or corrupt
        self.duplicate = self.duplicate or duplicate
        if delay:
            self.delay_seconds += rule.delay_seconds


class FaultyTransport(Transport):
    """A transport wrapper injecting one plan's faults into every call.

    Wrap the real transport before handing it to the cluster::

        injector = FaultInjector(FaultPlan.from_json_file(path))
        cluster = Cluster.build(..., transport=FaultyTransport(inner, injector))

    ``start_node`` passes handlers through untouched (node death is
    modelled at the caller's edge, like a refused connection) but records
    the address -> node mapping so per-node faults can be resolved on
    either transport's address form.
    """

    def __init__(self, inner: Transport, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self._node_by_address: Dict[object, int] = {}

    @staticmethod
    def _freeze(address) -> object:
        return tuple(address) if isinstance(address, (list, tuple)) else address

    async def start_node(self, node_id: int, handler: Handler):
        address = await self.inner.start_node(node_id, handler)
        self._node_by_address[self._freeze(address)] = node_id
        return address

    async def call(self, address, message: dict) -> dict:
        injector = self.injector
        injector.observe(message)
        dest = self._node_by_address.get(self._freeze(address))
        if injector.node_down(dest):
            injector.refused_calls += 1
            raise NodeUnreachable(f"node {dest} is down (injected crash)")
        decision = injector.link_decision(message.get("type", "?"), dest)
        hold = decision.delay_seconds + injector.node_slowdown(dest)
        if hold > 0:
            await asyncio.sleep(hold)
        if decision.drop:
            await asyncio.sleep(DROP_HOLD_SECONDS)
            raise CallTimeout(
                f"frame to node {dest} lost (injected drop); deadline expired"
            )
        if decision.corrupt:
            raise FrameCorruption(
                f"frame to node {dest} damaged in flight (injected corruption)"
            )
        reply = await self.inner.call(address, message)
        if decision.duplicate:
            # The retransmit also arrives; the first reply wins.
            await self.inner.call(address, message)
        return reply

    async def close(self) -> None:
        await self.inner.close()
