"""Declarative fault plans for the live cluster.

A :class:`FaultPlan` describes *what should go wrong* during a run,
separately from the machinery that makes it go wrong (the
:class:`~repro.faults.injector.FaultInjector`).  Two kinds of entries:

* :class:`LinkRule` -- probabilistic frame-level faults on calls, drawn
  from one seeded RNG in call order: **drop** (the frame is lost and the
  caller's deadline expires), **delay** (the frame is held back before
  delivery), **duplicate** (the frame is delivered twice) and **corrupt**
  (the frame arrives damaged and is rejected).  Rules can be scoped to
  message types (``ops``) and destination nodes (``dest``).
* :class:`NodeFault` -- scripted whole-node events: **crash** (the node
  stops answering -- connections are refused -- between two points of the
  schedule; a later restart resumes the *same* node state, i.e. the
  process was partitioned away, not wiped) and **slow** (every call to
  the node is delayed while the fault is active).  Schedule points can be
  expressed in trace time (``at_time``/``until_time``, matched against
  the ``time`` field request frames carry) or in delivered-call counts
  (``at_call``/``until_call``).

Everything is deterministic: the same plan and seed over the same call
sequence produce the same faults, which is what the chaos suite's
repeatability gate asserts.

JSON form (see ``examples/fault_plan.json``)::

    {
      "seed": 7,
      "links": [
        {"ops": ["fwd"], "drop_rate": 0.03, "delay_rate": 0.1,
         "delay_seconds": 0.001, "duplicate_rate": 0.01,
         "corrupt_rate": 0.01}
      ],
      "nodes": [
        {"node": 2, "kind": "crash", "at_time": 120.0},
        {"node": 5, "kind": "slow", "at_call": 0, "until_call": 500,
         "delay_seconds": 0.002}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

NODE_FAULT_KINDS = ("crash", "slow")


@dataclass(frozen=True)
class LinkRule:
    """Probabilistic frame faults for a subset of calls.

    ``ops`` restricts the rule to those message types (``None`` = all);
    ``dest`` restricts it to calls towards one node id (``None`` = all).
    Rates are independent per-call probabilities; drop wins over
    corrupt, corrupt over duplicate, and a delay (when drawn) applies
    before whichever of those fires.
    """

    ops: Optional[Tuple[str, ...]] = None
    dest: Optional[int] = None
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    def matches(self, op: str, dest_node: Optional[int]) -> bool:
        if self.ops is not None and op not in self.ops:
            return False
        if self.dest is not None and dest_node != self.dest:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "ops": list(self.ops) if self.ops is not None else None,
            "dest": self.dest,
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "duplicate_rate": self.duplicate_rate,
            "corrupt_rate": self.corrupt_rate,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "LinkRule":
        ops = raw.get("ops")
        return cls(
            ops=tuple(ops) if ops is not None else None,
            dest=raw.get("dest"),
            drop_rate=raw.get("drop_rate", 0.0),
            delay_rate=raw.get("delay_rate", 0.0),
            delay_seconds=raw.get("delay_seconds", 0.0),
            duplicate_rate=raw.get("duplicate_rate", 0.0),
            corrupt_rate=raw.get("corrupt_rate", 0.0),
        )


@dataclass(frozen=True)
class NodeFault:
    """One scripted whole-node event (crash or slow-down).

    The fault is active from its ``at_*`` point until its ``until_*``
    point (``None`` = forever).  Time points are matched against the
    largest ``time`` field seen on any frame so far (the injector's
    trace clock); call points against the injector's delivered-call
    counter.  A fault with neither ``at_time`` nor ``at_call`` is active
    from the start.
    """

    node: int
    kind: str = "crash"
    at_time: Optional[float] = None
    until_time: Optional[float] = None
    at_call: Optional[int] = None
    until_call: Optional[int] = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in NODE_FAULT_KINDS:
            raise ValueError(
                f"node fault kind must be one of {NODE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "slow" and self.delay_seconds <= 0:
            raise ValueError("a slow fault needs a positive delay_seconds")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    def active(self, clock: float, calls: int) -> bool:
        if self.at_time is not None and clock < self.at_time:
            return False
        if self.at_call is not None and calls < self.at_call:
            return False
        if self.until_time is not None and clock >= self.until_time:
            return False
        if self.until_call is not None and calls >= self.until_call:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "kind": self.kind,
            "at_time": self.at_time,
            "until_time": self.until_time,
            "at_call": self.at_call,
            "until_call": self.until_call,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "NodeFault":
        return cls(
            node=raw["node"],
            kind=raw.get("kind", "crash"),
            at_time=raw.get("at_time"),
            until_time=raw.get("until_time"),
            at_call=raw.get("at_call"),
            until_call=raw.get("until_call"),
            delay_seconds=raw.get("delay_seconds", 0.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of link and node faults."""

    seed: int = 0
    links: Tuple[LinkRule, ...] = ()
    nodes: Tuple[NodeFault, ...] = ()

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not self.links and not self.nodes

    def node_faults_for(self, node: int) -> List[NodeFault]:
        return [f for f in self.nodes if f.node == node]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "links": [rule.to_dict() for rule in self.links],
            "nodes": [fault.to_dict() for fault in self.nodes],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        return cls(
            seed=raw.get("seed", 0),
            links=tuple(
                LinkRule.from_dict(r) for r in raw.get("links", ())
            ),
            nodes=tuple(
                NodeFault.from_dict(r) for r in raw.get("nodes", ())
            ),
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "FaultPlan":
        raw = json.loads(Path(path).read_text())
        if not isinstance(raw, dict):
            raise ValueError(f"fault plan {path} must be a JSON object")
        return cls.from_dict(raw)

    def to_json_file(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def describe(self) -> str:
        """One human line per entry (printed by ``repro serve``)."""
        if self.is_empty:
            return "empty fault plan (no faults injected)"
        lines = [f"fault plan (seed {self.seed}):"]
        for rule in self.links:
            scope = ",".join(rule.ops) if rule.ops else "all ops"
            dest = f" -> node {rule.dest}" if rule.dest is not None else ""
            lines.append(
                f"  link {scope}{dest}: drop {rule.drop_rate:.1%}, "
                f"delay {rule.delay_rate:.1%} x {rule.delay_seconds}s, "
                f"dup {rule.duplicate_rate:.1%}, "
                f"corrupt {rule.corrupt_rate:.1%}"
            )
        for fault in self.nodes:
            window = []
            if fault.at_time is not None or fault.until_time is not None:
                window.append(f"time [{fault.at_time}, {fault.until_time})")
            if fault.at_call is not None or fault.until_call is not None:
                window.append(f"calls [{fault.at_call}, {fault.until_call})")
            when = " and ".join(window) if window else "always"
            extra = (
                f" (+{fault.delay_seconds}s)" if fault.kind == "slow" else ""
            )
            lines.append(f"  node {fault.node}: {fault.kind}{extra}, {when}")
        return "\n".join(lines)


__all__ = ["FaultPlan", "LinkRule", "NodeFault", "NODE_FAULT_KINDS"]
