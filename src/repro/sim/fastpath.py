"""Batched columnar fast path for the simulation engine.

The reference loop in :mod:`repro.sim.engine` pays, per request, for a
``TraceRecord`` dataclass, a routing-table walk, several layers of method
dispatch through the scheme/cache class hierarchy, and a ``path_cost``
call.  This module removes all of that for the hot schemes while staying
**bit-identical** to the reference loop:

* routing is resolved once per unique (client, server) pair via a
  vectorized ``np.unique`` over pair codes, producing a per-request path
  index column;
* warmup/measurement split and update-event merge points are computed
  with array ops (``np.searchsorted``) before the loop starts;
* the three hot schemes -- ``lru``, ``modulo`` and ``coordinated`` -- run
  on *flattened kernels*: plain dict/list state replicating the exact
  operation order (including every floating-point accumulation and lazy
  estimator refresh) of the class-based implementations, after which the
  real scheme objects are reconstructed so post-run inspection sees
  ordinary caches;
* every other scheme, and any run with an interval collector, takes a
  generic columnar loop that still skips record materialization and
  routing but calls ``scheme.process_request`` unchanged.

Bit-exactness is not aspirational: floats are accumulated in the same
order with the same operations, the latency-percentile reservoir uses the
same seeded ``random.Random`` stream, and dict/estimator state evolves
through identical mutation sequences.  The gate is
``tests/test_sim_columnar.py`` plus the shadow-replay machinery in
:mod:`repro.verify`.

Audited or instrumented runs never come here -- the engine dispatches to
the fast path only when both are absent (observability hooks fire per
record, so the reference loop is the only honest way to serve them).
"""

from __future__ import annotations

import random
import time
from bisect import bisect_left, insort
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.base import CacheEntry
from repro.cache.descriptors import ObjectDescriptor
from repro.cache.frequency import (
    DEFAULT_AGING_INTERVAL,
    DEFAULT_WINDOW,
    _MIN_ELAPSED,
)
from repro.cache.lru import LRUCache
from repro.core.coordinated import CoordinatedScheme
from repro.costs.model import (
    BandwidthCostModel,
    HopCostModel,
    LatencyCostModel,
)
from repro.metrics.collector import _RESERVOIR_SIZE, MetricsCollector
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.schemes.modulo import ModuloScheme
from repro.schemes.node_state import DescriptorNode
from repro.workload.columnar import ColumnarTrace
from repro.workload.updates import UpdateEvent

# Cost-model fast modes.  Exact types only: a subclass may override
# link_cost, so anything else drops to per-request path_cost calls.
_COST_LATENCY, _COST_HOP, _COST_BANDWIDTH, _COST_GENERIC = 0, 1, 2, 3

# Estimator constants (see repro.cache.frequency).  The kernels inline the
# sliding-window estimator, so they only run for descriptors built with
# the default window/aging parameters -- which is what every scheme here
# constructs.
_AGING = DEFAULT_AGING_INTERVAL
_WINDOW = DEFAULT_WINDOW
_FALLBACK = 1.0 / DEFAULT_AGING_INTERVAL
_NEG_INF = float("-inf")

# Flattened descriptor layout (list, not a class: index access is the
# cheapest attribute story in CPython):
#   d[0] = size, d[1] = miss_penalty, d[2] = cached estimate,
#   d[3] = refreshed_at, d[4] = reference-time list (the sliding window).


def run_columnar(
    engine,
    trace: ColumnarTrace,
    updates: Sequence[UpdateEvent] = (),
    interval_collector=None,
    progress_every: int = 0,
    progress_callback=None,
):
    """Run the engine's replay over a columnar trace; returns the result.

    Called by :meth:`SimulationEngine.run` when the trace is columnar and
    the run is neither audited nor instrumented.  Picks a flattened
    kernel when the scheme qualifies (exact hot-scheme type, fresh state,
    no observers), otherwise the generic columnar loop.
    """
    scheme = engine.scheme
    started = time.perf_counter()
    prep = _prepare(engine, trace, updates)
    if interval_collector is None and scheme._instruments is None:
        if type(scheme) in (LRUEverywhereScheme, ModuloScheme) and not scheme._caches:
            return _run_lru_family(
                engine, prep, started, progress_every, progress_callback
            )
        if (
            type(scheme) is CoordinatedScheme
            and not scheme._nodes
            and scheme.placement_observer is None
            and scheme.ncl_structure == "list"
        ):
            return _run_coordinated(
                engine, prep, started, progress_every, progress_callback
            )
    return _run_generic(
        engine,
        prep,
        started,
        interval_collector,
        progress_every,
        progress_callback,
    )


# -- shared precompute --------------------------------------------------------


class _Prep:
    """Routing, cost and update-merge state shared by all loop variants."""

    __slots__ = (
        "times",
        "oids",
        "sizes",
        "pids",
        "paths",
        "lasts",
        "delays",
        "mode",
        "avg_size",
        "warmup_end",
        "total",
        "ufire",
        "uoids",
    )


def _attachment_array(mapping: dict, ids: np.ndarray, kind: str) -> np.ndarray:
    """Dense id -> node lookup; unknown ids raise KeyError like a dict."""
    max_id = int(ids.max()) if len(ids) else 0
    lookup = np.full(max_id + 1, -1, dtype=np.int64)
    for ext_id, node in mapping.items():
        if 0 <= ext_id <= max_id:
            lookup[ext_id] = node
    nodes = lookup[ids]
    missing = nodes < 0
    if missing.any():
        raise KeyError(int(ids[int(np.argmax(missing))]))
    return nodes


def _prepare(engine, trace: ColumnarTrace, updates: Sequence[UpdateEvent]) -> _Prep:
    prep = _Prep()
    architecture = engine.architecture
    cost_model = engine.cost_model

    client_nodes = _attachment_array(
        architecture.client_nodes, trace.client_ids, "client"
    )
    server_nodes = _attachment_array(
        architecture.server_nodes, trace.server_ids, "server"
    )
    stride = int(server_nodes.max()) + 1 if len(server_nodes) else 1
    codes = client_nodes * stride + server_nodes
    unique_codes, inverse = np.unique(codes, return_inverse=True)
    request_path = architecture.routing.request_path
    paths: List[List[int]] = []
    for code in unique_codes.tolist():
        cnode, snode = divmod(code, stride)
        paths.append(request_path(cnode, snode))
    prep.paths = paths
    prep.lasts = [len(p) - 1 for p in paths]
    prep.pids = inverse.tolist()

    model_type = type(cost_model)
    if model_type is LatencyCostModel:
        prep.mode = _COST_LATENCY
        prep.avg_size = cost_model.avg_size
        link_delay = cost_model.network.link_delay
        prep.delays = [
            [link_delay(u, v) for u, v in zip(p, p[1:])] for p in paths
        ]
    elif model_type in (HopCostModel, BandwidthCostModel):
        prep.mode = _COST_HOP if model_type is HopCostModel else _COST_BANDWIDTH
        prep.avg_size = 0.0
        # link_cost validates each link; do it once per unique path here.
        link_delay = cost_model.network.link_delay
        for p in paths:
            for u, v in zip(p, p[1:]):
                link_delay(u, v)
        prep.delays = [None] * len(paths)
    else:
        prep.mode = _COST_GENERIC
        prep.avg_size = 0.0
        prep.delays = [None] * len(paths)

    prep.times = trace.times.tolist()
    prep.oids = trace.object_ids.tolist()
    prep.sizes = trace.sizes.tolist()
    prep.warmup_end, prep.total = trace.split_warmup(engine.warmup_fraction)

    if updates:
        update_times = np.fromiter(
            (u.time for u in updates), dtype=np.float64, count=len(updates)
        )
        # side="left": the update fires before the first record whose time
        # is >= the update time -- exactly the reference loop's
        # ``updates[j].time <= record.time`` merge.  Updates landing after
        # the trace end (fire index == total) never fire, as in the
        # reference.
        prep.ufire = np.searchsorted(
            trace.times, update_times, side="left"
        ).tolist()
        prep.uoids = [u.object_id for u in updates]
    else:
        prep.ufire = []
        prep.uoids = []
    return prep


def _measured_latency(mode, delays_pid, path, h, size, avg_size, cost_model):
    """Latency of one request, replicating ``path_cost(path[:h+1], size)``."""
    if mode == _COST_LATENCY:
        ratio = size / avg_size
        latency = 0.0
        dl = delays_pid
        for k in range(h):
            latency += dl[k] * ratio
        return latency
    if mode == _COST_HOP:
        return float(h)
    if mode == _COST_BANDWIDTH:
        return float(size * h)
    return cost_model.path_cost(path[: h + 1], size)


def _finish(engine, prep, started, totals, reservoir, extra):
    """Assemble the SimulationResult (shared by the kernel variants)."""
    from repro.sim.engine import SimulationResult

    duration = time.perf_counter() - started
    collector = MetricsCollector.from_totals(totals, reservoir)
    total = prep.total
    return SimulationResult(
        architecture=engine.architecture.name,
        scheme=engine.scheme.name,
        requests_total=total,
        requests_measured=collector.requests,
        summary=collector.summary(),
        updates_applied=extra["updates_applied"],
        copies_invalidated=extra["copies_invalidated"],
        duration_seconds=duration,
        requests_per_second=total / duration if duration > 0 else 0.0,
    )


# -- generic columnar loop ----------------------------------------------------


def _run_generic(
    engine, prep, started, interval_collector, progress_every, progress_callback
):
    """Reference semantics over columns: per-request scheme calls remain.

    Still removes the per-record dataclass, the routing walk and (when an
    exact cost model is in use) the ``path_cost`` call -- the safe
    fallback for the four cold schemes and interval-collected runs.
    """
    from repro.sim.engine import SimulationResult

    scheme = engine.scheme
    process = scheme.process_request
    cost_model = engine.cost_model
    collector = MetricsCollector()
    record_measure = collector.record
    times, oids, sizes, pids = prep.times, prep.oids, prep.sizes, prep.pids
    paths, delays, lasts = prep.paths, prep.delays, prep.lasts
    mode, avg_size = prep.mode, prep.avg_size
    warmup_end, total = prep.warmup_end, prep.total
    ufire, uoids = prep.ufire, prep.uoids
    num_updates = len(ufire)
    uj = 0
    updates_applied = 0
    copies_invalidated = 0
    report_progress = progress_callback if progress_every > 0 else None
    invalidate = scheme.invalidate_object
    # In-band inv frames fan out to every cache node per event; mirror
    # the reference loop's ProtocolStats counting (coordinated only).
    proto_stats = getattr(scheme, "protocol_stats", None)
    inv_broadcast = len(engine.architecture.cache_nodes)

    for index in range(total):
        while uj < num_updates and ufire[uj] <= index:
            copies_invalidated += invalidate(uoids[uj])
            updates_applied += 1
            uj += 1
            if proto_stats is not None:
                proto_stats.invalidations += inv_broadcast
        pid = pids[index]
        size = sizes[index]
        outcome = process(paths[pid], oids[index], size, times[index])
        if index >= warmup_end or interval_collector is not None:
            latency = _measured_latency(
                mode, delays[pid], paths[pid], outcome.hit_index,
                size, avg_size, cost_model,
            )
            if index >= warmup_end:
                record_measure(outcome, latency)
            if interval_collector is not None:
                interval_collector.record(outcome, latency, times[index])
        if report_progress is not None and (index + 1) % progress_every == 0:
            report_progress(index + 1, total)

    duration = time.perf_counter() - started
    if report_progress is not None and total % progress_every != 0:
        report_progress(total, total)
    return SimulationResult(
        architecture=engine.architecture.name,
        scheme=scheme.name,
        requests_total=total,
        requests_measured=collector.requests,
        summary=collector.summary(),
        updates_applied=updates_applied,
        copies_invalidated=copies_invalidated,
        duration_seconds=duration,
        requests_per_second=total / duration if duration > 0 else 0.0,
    )


# -- LRU / MODULO kernel ------------------------------------------------------


def _run_lru_family(engine, prep, started, progress_every, progress_callback):
    """Flattened kernel for ``lru`` and ``modulo(r=...)``.

    Per-node state is ``[entries, used, capacity]`` where ``entries`` maps
    object id -> size in recency order (python dicts preserve insertion
    order; a hit re-appends, mirroring the reference OrderedDict's
    ``move_to_end``).  Placement index lists are precomputed per path.
    """
    scheme = engine.scheme
    radius = scheme.radius if type(scheme) is ModuloScheme else 1
    paths, lasts, delays = prep.paths, prep.lasts, prep.delays
    times, oids, sizes, pids = prep.times, prep.oids, prep.sizes, prep.pids
    mode, avg_size = prep.mode, prep.avg_size
    cost_model = engine.cost_model
    warmup_end, total = prep.warmup_end, prep.total

    # Shared per-node state; per-path views of it.  The entries dicts are
    # stable objects (mutated in place, never rebound), so the walk lists
    # can carry them directly.
    node_states: dict = {}
    path_states: List[list] = []
    path_entries: List[list] = []
    placements: List[list] = []
    for path, last in zip(paths, lasts):
        states = []
        for node in path[:last]:
            state = node_states.get(node)
            if state is None:
                state = [{}, 0, scheme.capacity_for(node)]
                node_states[node] = state
            states.append(state)
        path_states.append(states)
        path_entries.append([state[0] for state in states])
        placements.append(
            [i for i in range(last) if (last - i) % radius == 0]
        )
    all_states = list(node_states.values())
    reach = [-1] * len(paths)

    # Inline metrics accumulators (same types/order as MetricsCollector).
    rng = random.Random(0x5EED)
    getrandbits = rng.getrandbits
    reservoir: List[float] = []
    res_append = reservoir.append
    measured = 0
    latency_sum = 0.0
    response_ratio_sum = 0.0
    bytes_requested = 0
    bytes_cache_served = 0
    cache_hits = 0
    byte_hops = 0.0
    hops_sum = 0
    bytes_read_sum = 0
    bytes_written_sum = 0

    ufire, uoids = prep.ufire, prep.uoids
    num_updates = len(ufire)
    uj = 0
    updates_applied = 0
    copies_invalidated = 0
    report_progress = progress_callback if progress_every > 0 else None
    lru_everywhere = radius == 1

    for index, pid in enumerate(pids):
        while uj < num_updates and ufire[uj] <= index:
            inv_oid = uoids[uj]
            for state in all_states:
                entries = state[0]
                inv_size = entries.pop(inv_oid, None)
                if inv_size is not None:
                    state[1] -= inv_size
                    copies_invalidated += 1
            updates_applied += 1
            uj += 1

        oid = oids[index]
        size = sizes[index]
        last = lasts[pid]
        states = path_states[pid]

        h = last
        for i, entries in enumerate(path_entries[pid]):
            hit_size = entries.pop(oid, None)
            if hit_size is not None:
                entries[oid] = hit_size  # recency touch (single lookup)
                h = i
                break
        visited = h if h < last else last - 1
        if visited > reach[pid]:
            reach[pid] = visited

        inserted = 0
        if h:
            states = path_states[pid]
            for i in range(h) if lru_everywhere else placements[pid]:
                if i >= h:
                    break
                state = states[i]
                cap = state[2]
                if size > cap:
                    continue
                entries = state[0]
                used = state[1]
                need = size - (cap - used)
                if need > 0:
                    victims = []
                    freed = 0
                    for vid, vsize in entries.items():
                        victims.append(vid)
                        freed += vsize
                        if freed >= need:
                            break
                    for vid in victims:
                        used -= entries.pop(vid)
                entries[oid] = size
                state[1] = used + size
                inserted += 1

        if index >= warmup_end:
            if mode == _COST_LATENCY:
                # h <= 1 shortcuts are exact: 0.0 + x == x for the
                # non-negative link costs accumulated here.
                if h == 0:
                    latency = 0.0
                elif h == 1:
                    latency = delays[pid][0] * (size / avg_size)
                else:
                    ratio = size / avg_size
                    latency = 0.0
                    dl = delays[pid]
                    for k in range(h):
                        latency += dl[k] * ratio
            elif mode == _COST_HOP:
                latency = float(h)
            elif mode == _COST_BANDWIDTH:
                latency = float(size * h)
            else:
                latency = cost_model.path_cost(paths[pid][: h + 1], size)
            measured += 1
            if measured <= _RESERVOIR_SIZE:
                res_append(latency)
            else:
                # Inline rng.randrange(measured): identical getrandbits
                # stream, two call frames fewer per measured request.
                nbits = measured.bit_length()
                slot = getrandbits(nbits)
                while slot >= measured:
                    slot = getrandbits(nbits)
                if slot < _RESERVOIR_SIZE:
                    reservoir[slot] = latency
            latency_sum += latency
            response_ratio_sum += latency / size
            bytes_requested += size
            if h < last:
                bytes_cache_served += size
                cache_hits += 1
                bytes_read_sum += size
            byte_hops += size * h
            hops_sum += h
            bytes_written_sum += size * inserted

        if report_progress is not None and (index + 1) % progress_every == 0:
            report_progress(index + 1, total)

    if report_progress is not None and total % progress_every != 0:
        report_progress(total, total)

    _writeback_lru(scheme, paths, reach, node_states)

    totals = {
        "requests": measured,
        "latency_sum": latency_sum,
        "response_ratio_sum": response_ratio_sum,
        "bytes_requested": bytes_requested,
        "bytes_cache_served": bytes_cache_served,
        "cache_hits": cache_hits,
        "byte_hops": byte_hops,
        "hops": hops_sum,
        "bytes_read": bytes_read_sum,
        "bytes_written": bytes_written_sum,
    }
    extra = {
        "updates_applied": updates_applied,
        "copies_invalidated": copies_invalidated,
    }
    return _finish(engine, prep, started, totals, reservoir, extra)


def _writeback_lru(scheme, paths, reach, node_states) -> None:
    """Reconstruct real LRUCache objects for every node the replay visited.

    The reference loop creates caches lazily on first visit, so only
    visited nodes may exist afterwards; the kernel tracked the deepest
    visited prefix per path.  ``_recency`` -- the order all future
    eviction decisions read -- is reproduced exactly (the kernel dict
    evolved through the same touch/insert/remove sequence as the
    reference OrderedDict).  ``_entries`` is written in recency order
    rather than the reference's raw insertion order; the difference is
    behaviorally inert (``_entries`` is a keyed map, never an order
    source) and buys the kernel one dict per node instead of two.
    """
    done = set()
    for path, deepest in zip(paths, reach):
        for i in range(deepest + 1):
            node = path[i]
            if node in done:
                continue
            done.add(node)
            entries, used, _cap = node_states[node]
            cache = LRUCache(scheme.capacity_for(node))
            for oid, size in entries.items():
                entry = CacheEntry(ObjectDescriptor(oid, size))
                cache._entries[oid] = entry
                cache._recency[oid] = None
            cache._used = used
            scheme._caches[node] = cache


# -- coordinated kernel -------------------------------------------------------


class _CoordNode:
    """Flattened DescriptorNode: NCL main cache + d-cache, no classes.

    ``entries`` maps object id -> flattened descriptor; ``order``/``keys``
    mirror NCLCache's bisect-sorted (key, id) list and key map.  The
    d-cache is ``ddesc`` plus either LFU frequency buckets (plain dicts
    standing in for the OrderedDict buckets -- same iteration order) or an
    LRU recency dict.
    """

    __slots__ = (
        "node",
        "cap",
        "used",
        "entries",
        "order",
        "keys",
        "dcap",
        "lfu",
        "ddesc",
        "dcount",
        "dbuckets",
        "dmin",
        "drec",
    )

    def __init__(self, node: int, cap: int, dcap: int, lfu: bool) -> None:
        self.node = node
        self.cap = cap
        self.used = 0
        self.entries = {}
        self.order = []
        self.keys = {}
        self.dcap = dcap
        self.lfu = lfu
        self.ddesc = {}
        self.dcount = {}
        self.dbuckets = {}
        self.dmin = 0
        self.drec = {}


def _record(d: list, now: float) -> None:
    """Inline SlidingWindowFrequencyEstimator.record (window push + refresh)."""
    ts = d[4]
    if len(ts) == _WINDOW:
        del ts[0]
    ts.append(now)
    elapsed = now - ts[0]
    if elapsed >= _MIN_ELAPSED:
        d[2] = len(ts) / elapsed
    else:
        d[2] = _FALLBACK
    d[3] = now


def _value(d: list, now: float) -> float:
    """Inline estimator.value: cached estimate with lazy aging refresh."""
    ts = d[4]
    if not ts:
        return 0.0
    if now - d[3] >= _AGING:
        elapsed = now - ts[0]
        if elapsed >= _MIN_ELAPSED:
            v = len(ts) / elapsed
        else:
            v = _FALLBACK
        d[2] = v
        d[3] = now
        return v
    return d[2]


def _d_track_remove(st: _CoordNode, oid: int) -> None:
    """d-cache policy removal (LFU bucket discard / LRU recency pop)."""
    if st.lfu:
        count = st.dcount.pop(oid, None)
        if count is None:
            return
        bucket = st.dbuckets[count]
        del bucket[oid]
        if not bucket:
            del st.dbuckets[count]
            if st.dmin == count:
                st.dmin = min(st.dbuckets, default=0)
    else:
        st.drec.pop(oid, None)


def _d_insert(st: _CoordNode, oid: int, d: list) -> None:
    """DescriptorCache.insert: replace-in-place, or evict-then-store.

    ``dmin`` is maintained through exactly the reference
    ``_FrequencyBuckets._min_count`` transitions, which keep it equal to
    ``min(buckets)`` whenever any bucket exists -- so the victim pick is
    O(1) here where the reference sorts, while still choosing the
    identical victim.
    """
    ddesc = st.ddesc
    if oid in ddesc:
        ddesc[oid] = d
        return
    dcap = st.dcap
    if dcap == 0:
        return
    if st.lfu:
        dbuckets = st.dbuckets
        dcount = st.dcount
        while len(ddesc) >= dcap:
            count = st.dmin
            bucket = dbuckets[count]
            vid = next(iter(bucket))
            del ddesc[vid]
            del dcount[vid]
            del bucket[vid]
            if not bucket:
                del dbuckets[count]
                st.dmin = min(dbuckets, default=0)
        ddesc[oid] = d
        dcount[oid] = 1
        b1 = dbuckets.get(1)
        if b1 is None:
            dbuckets[1] = {oid: None}
        else:
            b1[oid] = None
        st.dmin = 1
    else:
        drec = st.drec
        while len(ddesc) >= dcap:
            vid = next(iter(drec))
            del ddesc[vid]
            del drec[vid]
        ddesc[oid] = d
        drec[oid] = None


def _d_promote(st: _CoordNode, oid: int) -> None:
    """DescriptorCache.get's policy reference (LFU promote / LRU touch)."""
    if st.lfu:
        dcount = st.dcount
        count = dcount[oid]
        dbuckets = st.dbuckets
        bucket = dbuckets[count]
        del bucket[oid]
        if not bucket:
            del dbuckets[count]
            if st.dmin == count:
                st.dmin = count + 1
        count1 = count + 1
        dcount[oid] = count1
        b2 = dbuckets.get(count1)
        if b2 is None:
            dbuckets[count1] = {oid: None}
        else:
            b2[oid] = None
    else:
        drec = st.drec
        del drec[oid]
        drec[oid] = None


def _cost_loss(st: _CoordNode, size: int, now: float) -> Optional[float]:
    """NCLCache.cost_loss for an object known absent from the main cache.

    Walks the greedy victim prefix summing current ``f * m`` -- which,
    exactly like the reference, lazily refreshes aged victim estimators
    (the mutation is part of the contract, not a side effect to avoid).
    """
    cap = st.cap
    if size > cap:
        return None
    need = size - (cap - st.used)
    if need <= 0:
        return 0.0
    loss = 0.0
    freed = 0
    entries = st.entries
    for _, vid in st.order:
        vd = entries[vid]
        loss += _value(vd, now) * vd[1]
        freed += vd[0]
        if freed >= need:
            return loss
    return None


def _insert_object(st: _CoordNode, oid: int, size: int, penalty: float, now: float) -> int:
    """DescriptorNode.insert_object; returns evictions, or -1 when refused."""
    d = st.ddesc.pop(oid, None)
    if d is not None:
        _d_track_remove(st, oid)
        d[1] = penalty
        # The main cache sizes the insertion by the descriptor's stored
        # size (identical to the request size for catalog-backed traces,
        # but the reference reads the descriptor -- so do we).
        size = d[0]
    else:
        d = [size, penalty, 0.0, _NEG_INF, []]
        _record(d, now)
    cap = st.cap
    if size > cap:
        # Object exceeds the whole cache: descriptor returns to the
        # d-cache (re-inserted, so its LFU count restarts at 1 -- exactly
        # the reference's remove-then-insert round trip).
        _d_insert(st, oid, d)
        return -1
    entries = st.entries
    order = st.order
    keys = st.keys
    evicted: List[Tuple[int, list]] = []
    need = size - (cap - st.used)
    if need > 0:
        freed = 0
        for _, vid in order:
            vd = entries[vid]
            evicted.append((vid, vd))
            freed += vd[0]
            if freed >= need:
                break
        for vid, vd in evicted:
            del entries[vid]
            st.used -= vd[0]
            old_key = keys.pop(vid)
            j = bisect_left(order, (old_key, vid))
            del order[j]
    entries[oid] = d
    st.used += size
    new_key = _value(d, now) * d[1] / size
    insort(order, (new_key, oid))
    keys[oid] = new_key
    for vid, vd in evicted:
        _d_insert(st, vid, vd)
    return len(evicted)


def _ensure_dcache(st: _CoordNode, oid: int, size: int, penalty: float, now: float) -> None:
    """DescriptorNode.ensure_dcache_descriptor (response-path refresh)."""
    d = st.ddesc.get(oid)
    if d is None:
        d = [size, penalty, 0.0, _NEG_INF, []]
        _record(d, now)
        _d_insert(st, oid, d)
    else:
        d[1] = penalty


def _run_coordinated(engine, prep, started, progress_every, progress_callback):
    """Flattened kernel for the coordinated scheme's 3-phase protocol."""
    scheme = engine.scheme
    paths, lasts, delays = prep.paths, prep.lasts, prep.delays
    times, oids, sizes, pids = prep.times, prep.oids, prep.sizes, prep.pids
    mode, avg_size = prep.mode, prep.avg_size
    cost_model = engine.cost_model
    warmup_end, total = prep.warmup_end, prep.total
    lfu = scheme.dcache_policy == "lfu"
    dcap = scheme.dcache_entries

    node_states: dict = {}
    path_walks: List[list] = []
    for path, last in zip(paths, lasts):
        walk = []
        for node in path[:last]:
            state = node_states.get(node)
            if state is None:
                state = _CoordNode(node, scheme.capacity_for(node), dcap, lfu)
                node_states[node] = state
            # The dict objects are stable (mutated in place, never
            # rebound), so the walk can carry them directly and skip two
            # attribute loads per node per request.
            walk.append((state, state.entries, state.ddesc))
        path_walks.append(walk)
    all_states = list(node_states.values())
    reach = [-1] * len(paths)

    rng = random.Random(0x5EED)
    getrandbits = rng.getrandbits
    reservoir: List[float] = []
    res_append = reservoir.append
    measured = 0
    latency_sum = 0.0
    response_ratio_sum = 0.0
    bytes_requested = 0
    bytes_cache_served = 0
    cache_hits = 0
    byte_hops = 0.0
    hops_sum = 0
    bytes_read_sum = 0
    bytes_written_sum = 0

    # Protocol overhead counters, folded into scheme.protocol_stats at the
    # end (same totals as per-request _count_protocol calls).
    proto_reports = 0
    proto_tags = 0
    proto_decisions = 0
    proto_acc_responses = 0

    ufire, uoids = prep.ufire, prep.uoids
    num_updates = len(ufire)
    uj = 0
    updates_applied = 0
    copies_invalidated = 0
    report_progress = progress_callback if progress_every > 0 else None
    window = _WINDOW
    min_elapsed = _MIN_ELAPSED
    fallback = _FALLBACK
    aging = _AGING

    # The loop below inlines _record / _d_promote / _cost_loss /
    # _ensure_dcache for the default LFU d-cache: the protocol touches the
    # d-cache two-to-three times per request, and at that rate the CPython
    # call overhead of the helpers dominates the kernel.  Every inline
    # block performs the identical mutation sequence as its helper (the
    # helpers remain the readable spec and serve the cold paths).

    for index, pid in enumerate(pids):
        while uj < num_updates and ufire[uj] <= index:
            inv_oid = uoids[uj]
            for st in all_states:
                d = st.entries.pop(inv_oid, None)
                if d is not None:
                    st.used -= d[0]
                    old_key = st.keys.pop(inv_oid)
                    j = bisect_left(st.order, (old_key, inv_oid))
                    del st.order[j]
                    _d_insert(st, inv_oid, d)
                    copies_invalidated += 1
            updates_applied += 1
            uj += 1

        oid = oids[index]
        size = sizes[index]
        now = times[index]
        last = lasts[pid]
        walk = path_walks[pid]
        if mode == _COST_LATENCY:
            # Same operands as every reference size/avg_size division this
            # request would perform, so hoisting it is bit-exact.
            ratio = size / avg_size

        # Phase 1: upstream walk, collecting candidate reports.
        h = last
        candidates = None
        for i, (st, entries_i, ddesc_i) in enumerate(walk):
            d = entries_i.get(oid)
            if d is not None:
                # Hit: NCLCache.record_access = estimator record + key refresh.
                ts = d[4]
                if len(ts) == window:
                    del ts[0]
                ts.append(now)
                elapsed = now - ts[0]
                d[2] = len(ts) / elapsed if elapsed >= min_elapsed else fallback
                d[3] = now
                new_key = d[2] * d[1] / d[0]
                old_key = st.keys[oid]
                if new_key != old_key:
                    order = st.order
                    j = bisect_left(order, (old_key, oid))
                    del order[j]
                    insort(order, (new_key, oid))
                    st.keys[oid] = new_key
                h = i
                break
            dd = ddesc_i.get(oid)
            if dd is None:
                proto_tags += 1
            else:
                if lfu:  # _d_promote
                    dcount = st.dcount
                    count = dcount[oid]
                    dbuckets = st.dbuckets
                    bucket = dbuckets[count]
                    del bucket[oid]
                    count1 = count + 1
                    if not bucket:
                        del dbuckets[count]
                        if st.dmin == count:
                            st.dmin = count1
                    dcount[oid] = count1
                    b2 = dbuckets.get(count1)
                    if b2 is None:
                        dbuckets[count1] = {oid: None}
                    else:
                        b2[oid] = None
                else:
                    drec = st.drec
                    del drec[oid]
                    drec[oid] = None
                ts = dd[4]  # _record
                if len(ts) == window:
                    del ts[0]
                ts.append(now)
                elapsed = now - ts[0]
                dd[2] = (
                    len(ts) / elapsed if elapsed >= min_elapsed else fallback
                )
                dd[3] = now
                proto_reports += 1
                # frequency(now) right after record() returns the cached
                # estimate: dd[2].  _cost_loss inline; main-cache entry
                # descriptors always hold at least one reference time, so
                # the estimator's empty-window branch cannot trigger.
                cap = st.cap
                loss = 0.0
                loss_ok = False
                if size <= cap:
                    need = size - (cap - st.used)
                    if need <= 0:
                        loss_ok = True
                    else:
                        freed = 0
                        for _, vid in st.order:
                            vd = entries_i[vid]
                            if now - vd[3] >= aging:  # lazy aging refresh
                                vts = vd[4]
                                velapsed = now - vts[0]
                                vd[2] = (
                                    len(vts) / velapsed
                                    if velapsed >= min_elapsed
                                    else fallback
                                )
                                vd[3] = now
                            loss += vd[2] * vd[1]
                            freed += vd[0]
                            if freed >= need:
                                loss_ok = True
                                break
                if loss_ok:
                    if candidates is None:
                        candidates = [(st.node, dd[2], dd[1], loss)]
                    else:
                        candidates.append((st.node, dd[2], dd[1], loss))
        visited = h if h < last else last - 1
        if visited > reach[pid]:
            reach[pid] = visited

        # Phase 2: monotone repair + placement DP (server-first order).
        chosen = ()
        if candidates is not None:
            if len(candidates) == 1:
                # One candidate: the DP reduces to a single gain test.
                node_c, f0, m0, l0 = candidates[0]
                if f0 < 0.0:
                    f0 = 0.0
                if f0 * m0 - l0 > 0.0:
                    chosen = (node_c,)
                    proto_decisions += 1
            else:
                candidates.reverse()
                n = len(candidates)
                freqs = [max(c[1], 0.0) for c in candidates]
                for i in range(n - 2, -1, -1):
                    if freqs[i] < freqs[i + 1]:
                        freqs[i] = freqs[i + 1]
                opt = [0.0] * (n + 1)
                last_ptr = [-1] * (n + 1)
                for k in range(1, n + 1):
                    f_next = freqs[k] if k < n else 0.0
                    best = 0.0
                    best_i = -1
                    for i in range(1, k + 1):
                        cand = (
                            opt[i - 1]
                            + (freqs[i - 1] - f_next) * candidates[i - 1][2]
                            - candidates[i - 1][3]
                        )
                        if cand > best:
                            best = cand
                            best_i = i
                    opt[k] = best
                    last_ptr[k] = best_i
                chosen_set = set()
                k = n
                while k > 0 and last_ptr[k] > 0:
                    v = last_ptr[k]
                    chosen_set.add(candidates[v - 1][0])
                    k = v - 1
                chosen = chosen_set
                proto_decisions += len(chosen_set)
        if h > 0:
            proto_acc_responses += 1

        # Phase 3: downstream walk with the cost accumulator.
        inserted = 0
        evictions = 0
        if h > 0:
            acc = 0.0
            if mode == _COST_LATENCY:
                dl = delays[pid]
                for i in range(h - 1, -1, -1):
                    acc += dl[i] * ratio
                    st, _entries, ddesc = walk[i]
                    if st.node in chosen:
                        result = _insert_object(st, oid, size, acc, now)
                        if result >= 0:
                            inserted += 1
                            evictions += result
                            acc = 0.0
                    else:
                        # _ensure_dcache inline.  A fresh descriptor's
                        # record(now) sees a zero-elapsed window, so its
                        # estimate is always the fallback value.
                        d = ddesc.get(oid)
                        if d is not None:
                            d[1] = acc
                        elif dcap:
                            d = [size, acc, fallback, now, [now]]
                            if lfu:  # _d_insert (oid known absent)
                                dbuckets = st.dbuckets
                                dcount = st.dcount
                                while len(ddesc) >= dcap:
                                    count = st.dmin
                                    bucket = dbuckets[count]
                                    vid = next(iter(bucket))
                                    del ddesc[vid]
                                    del dcount[vid]
                                    del bucket[vid]
                                    if not bucket:
                                        del dbuckets[count]
                                        st.dmin = min(dbuckets, default=0)
                                ddesc[oid] = d
                                dcount[oid] = 1
                                b1 = dbuckets.get(1)
                                if b1 is None:
                                    dbuckets[1] = {oid: None}
                                else:
                                    b1[oid] = None
                                st.dmin = 1
                            else:
                                drec = st.drec
                                while len(ddesc) >= dcap:
                                    vid = next(iter(drec))
                                    del ddesc[vid]
                                    del drec[vid]
                                ddesc[oid] = d
                                drec[oid] = None
            else:
                path = paths[pid]
                for i in range(h - 1, -1, -1):
                    if mode == _COST_HOP:
                        acc += 1.0
                    elif mode == _COST_BANDWIDTH:
                        acc += float(size)
                    else:
                        acc += cost_model.path_cost(path[i : i + 2], size)
                    st = walk[i][0]
                    if st.node in chosen:
                        result = _insert_object(st, oid, size, acc, now)
                        if result >= 0:
                            inserted += 1
                            evictions += result
                            acc = 0.0
                    else:
                        _ensure_dcache(st, oid, size, acc, now)

        if index >= warmup_end:
            if mode == _COST_LATENCY:
                # h <= 1 shortcuts are exact: 0.0 + x == x for the
                # non-negative link costs accumulated here.
                if h == 0:
                    latency = 0.0
                elif h == 1:
                    latency = delays[pid][0] * ratio
                else:
                    latency = 0.0
                    dl = delays[pid]
                    for k in range(h):
                        latency += dl[k] * ratio
            elif mode == _COST_HOP:
                latency = float(h)
            elif mode == _COST_BANDWIDTH:
                latency = float(size * h)
            else:
                latency = cost_model.path_cost(paths[pid][: h + 1], size)
            measured += 1
            if measured <= _RESERVOIR_SIZE:
                res_append(latency)
            else:
                # Inline rng.randrange(measured): identical getrandbits
                # stream, two call frames fewer per measured request.
                nbits = measured.bit_length()
                slot = getrandbits(nbits)
                while slot >= measured:
                    slot = getrandbits(nbits)
                if slot < _RESERVOIR_SIZE:
                    reservoir[slot] = latency
            latency_sum += latency
            response_ratio_sum += latency / size
            bytes_requested += size
            if h < last:
                bytes_cache_served += size
                cache_hits += 1
                bytes_read_sum += size
            byte_hops += size * h
            hops_sum += h
            bytes_written_sum += size * inserted

        if report_progress is not None and (index + 1) % progress_every == 0:
            report_progress(index + 1, total)

    if report_progress is not None and total % progress_every != 0:
        report_progress(total, total)

    stats = scheme.protocol_stats
    stats.requests += total
    stats.reports += proto_reports
    stats.no_descriptor_tags += proto_tags
    stats.decisions += proto_decisions
    stats.responses_with_accumulator += proto_acc_responses
    # One in-band inv frame per cache node per update event (the
    # reference loop counts these through its coherency policy).
    stats.invalidations += updates_applied * len(engine.architecture.cache_nodes)

    _writeback_coordinated(scheme, paths, reach, node_states)

    totals = {
        "requests": measured,
        "latency_sum": latency_sum,
        "response_ratio_sum": response_ratio_sum,
        "bytes_requested": bytes_requested,
        "bytes_cache_served": bytes_cache_served,
        "cache_hits": cache_hits,
        "byte_hops": byte_hops,
        "hops": hops_sum,
        "bytes_read": bytes_read_sum,
        "bytes_written": bytes_written_sum,
    }
    extra = {
        "updates_applied": updates_applied,
        "copies_invalidated": copies_invalidated,
    }
    return _finish(engine, prep, started, totals, reservoir, extra)


def _materialize_descriptor(oid: int, d: list) -> ObjectDescriptor:
    """Rebuild a real ObjectDescriptor from the flattened kernel layout."""
    descriptor = ObjectDescriptor(oid, d[0], miss_penalty=d[1])
    estimator = descriptor.estimator
    estimator._times.extend(d[4])
    estimator._value = d[2]
    estimator._refreshed_at = d[3]
    return descriptor


def _writeback_coordinated(scheme, paths, reach, node_states) -> None:
    """Reconstruct DescriptorNode state for every visited node.

    Dict/list iteration orders written back here evolved through the same
    operation sequences as their reference counterparts, so recency,
    bucket and NCL orders -- hence all future eviction decisions -- match.
    """
    done = set()
    for path, deepest in zip(paths, reach):
        for i in range(deepest + 1):
            node = path[i]
            if node in done:
                continue
            done.add(node)
            st = node_states[node]
            state = DescriptorNode(
                st.cap,
                scheme.dcache_entries,
                scheme.dcache_policy,
                scheme.ncl_structure,
            )
            cache = state.cache
            for oid, d in st.entries.items():
                cache._entries[oid] = CacheEntry(_materialize_descriptor(oid, d))
            cache._used = st.used
            cache._order = st.order
            cache._keys = st.keys
            dcache = state.dcache
            for oid, d in st.ddesc.items():
                dcache._descriptors[oid] = _materialize_descriptor(oid, d)
            if st.lfu:
                buckets = dcache._buckets
                buckets._counts = dict(st.dcount)
                buckets._buckets = {
                    count: OrderedDict((k, None) for k in bucket)
                    for count, bucket in st.dbuckets.items()
                }
                buckets._min_count = st.dmin
            else:
                dcache._recency = OrderedDict((k, None) for k in st.drec)
            scheme._nodes[node] = state
            scheme._caches[node] = state.cache
