"""Scheme construction by name.

Central registry used by the experiment runner, the CLI and the examples;
scheme-specific parameters (e.g. MODULO's cache radius) are keyword
arguments.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.coordinated import CoordinatedScheme
from repro.costs.model import CostModel
from repro.schemes.adaptive import AdaptiveScheme
from repro.schemes.base import CachingScheme
from repro.schemes.costaware import CostAwareScheme
from repro.schemes.extra_baselines import (
    AdmissionLRUScheme,
    GDSScheme,
    LFUEverywhereScheme,
)
from repro.schemes.lncr import LNCRScheme
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.schemes.modulo import ModuloScheme


def _build_lru(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return LRUEverywhereScheme(
        cost_model, capacity, capacity_overrides=params.get("capacity_overrides")
    )


def _build_modulo(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return ModuloScheme(
        cost_model,
        capacity,
        radius=params.get("radius", 4),
        capacity_overrides=params.get("capacity_overrides"),
    )


def _build_lncr(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return LNCRScheme(
        cost_model,
        capacity,
        dcache_entries,
        dcache_policy=params.get("dcache_policy", "lfu"),
        ncl_structure=params.get("ncl_structure", "list"),
        capacity_overrides=params.get("capacity_overrides"),
    )


def _build_coordinated(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return CoordinatedScheme(
        cost_model,
        capacity,
        dcache_entries,
        dcache_policy=params.get("dcache_policy", "lfu"),
        ncl_structure=params.get("ncl_structure", "list"),
        capacity_overrides=params.get("capacity_overrides"),
    )


def _build_lfu(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return LFUEverywhereScheme(
        cost_model, capacity, capacity_overrides=params.get("capacity_overrides")
    )


def _build_gds(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return GDSScheme(
        cost_model,
        capacity,
        popularity_aware=params.get("popularity_aware", True),
        capacity_overrides=params.get("capacity_overrides"),
    )


def _build_admission_lru(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return AdmissionLRUScheme(
        cost_model,
        capacity,
        history_entries=params.get("history_entries", 1024),
        capacity_overrides=params.get("capacity_overrides"),
    )


def _build_adaptive(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return AdaptiveScheme(
        cost_model,
        capacity,
        dcache_entries,
        step_size=params.get("step_size", 0.5),
        dcache_policy=params.get("dcache_policy", "lfu"),
        ncl_structure=params.get("ncl_structure", "list"),
        capacity_overrides=params.get("capacity_overrides"),
    )


def _build_costaware(
    cost_model: CostModel, capacity: int, dcache_entries: int, **params
) -> CachingScheme:
    return CostAwareScheme(
        cost_model,
        capacity,
        dcache_entries,
        dcache_policy=params.get("dcache_policy", "lfu"),
        ncl_structure=params.get("ncl_structure", "list"),
        capacity_overrides=params.get("capacity_overrides"),
    )


_REGISTRY: Dict[str, Callable[..., CachingScheme]] = {}


def register_scheme(name: str, builder: Callable[..., CachingScheme]) -> None:
    """Add a scheme builder to the registry; names must be unique."""
    if name in _REGISTRY:
        raise ValueError(f"duplicate scheme registration: {name!r}")
    _REGISTRY[name] = builder


for _name, _builder in (
    ("lru", _build_lru),
    ("modulo", _build_modulo),
    ("lnc-r", _build_lncr),
    ("coordinated", _build_coordinated),
    ("adaptive", _build_adaptive),
    ("costaware", _build_costaware),
    ("lfu", _build_lfu),
    ("gds", _build_gds),
    ("admission-lru", _build_admission_lru),
):
    register_scheme(_name, _builder)

SCHEME_NAMES = tuple(_REGISTRY)


def build_scheme(
    name: str,
    cost_model: CostModel,
    capacity_bytes: int,
    dcache_entries: int,
    **params,
) -> CachingScheme:
    """Build a scheme by registry name (see :data:`SCHEME_NAMES`)."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    return builder(cost_model, capacity_bytes, dcache_entries, **params)
