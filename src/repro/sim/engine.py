"""The trace-driven simulation engine.

Replays a trace against one scheme on one architecture.  Each request is
routed along the origin server's distribution tree from the client's
attachment node; the scheme serves it and the engine translates the
outcome into the paper's metrics.  Per section 3.1, the first
``warmup_fraction`` of the trace only warms the caches; statistics cover
the remainder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.coherency.policy import InbandCoherency
from repro.costs.model import CostModel
from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.obs.instruments import Instruments
from repro.obs.timers import PHASE_ROUTING, PHASE_SCHEME
from repro.schemes.base import CachingScheme
from repro.sim.architecture import Architecture
from repro.verify.auditor import AuditConfig, Auditor, AuditReport
from repro.workload.columnar import ColumnarTrace
from repro.workload.trace import Trace
from repro.workload.updates import UpdateEvent


@dataclass(frozen=True)
class SimulationResult:
    """One (architecture, scheme, configuration) run.

    ``updates_applied`` / ``copies_invalidated`` are zero unless an update
    stream was supplied (the coherency extension, see
    :mod:`repro.workload.updates`).

    ``duration_seconds`` is the wall-clock time of the replay and
    ``requests_per_second`` the resulting throughput (whole trace,
    warm-up included) -- the run-observability signals the experiment
    runner aggregates across a grid.

    ``audit`` is ``None`` unless the run was audited (see
    :mod:`repro.verify`); auditing never changes the metrics themselves.

    ``node_stats`` / ``phase_timings`` are ``None`` unless the run was
    instrumented (see :mod:`repro.obs`): the final per-node counter
    snapshot of the stat registry and the phase timers' summary.  Like
    auditing, instrumentation never changes the metrics.

    ``coherency`` is ``None`` unless an explicit coherency policy drove
    the run (see :mod:`repro.coherency`): the policy's
    :meth:`~repro.coherency.stats.CoherencyStats.to_dict` accounting
    (channel bytes, stale hits, staleness-window percentiles, ...).
    """

    architecture: str
    scheme: str
    requests_total: int
    requests_measured: int
    summary: MetricsSummary
    updates_applied: int = 0
    copies_invalidated: int = 0
    duration_seconds: float = 0.0
    requests_per_second: float = 0.0
    audit: Optional[AuditReport] = None
    node_stats: Optional[dict] = None
    phase_timings: Optional[dict] = None
    coherency: Optional[dict] = None


class SimulationEngine:
    """Drives one scheme over one architecture."""

    def __init__(
        self,
        architecture: Architecture,
        cost_model: CostModel,
        scheme: CachingScheme,
        warmup_fraction: float = 0.5,
    ) -> None:
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.architecture = architecture
        self.cost_model = cost_model
        self.scheme = scheme
        self.warmup_fraction = warmup_fraction

    def run(
        self,
        trace: Trace | ColumnarTrace,
        updates: Sequence[UpdateEvent] = (),
        interval_collector=None,
        progress_every: int = 0,
        progress_callback: Optional[Callable[[int, int], None]] = None,
        auditor: Optional[Auditor] = None,
        audit_every: int = 0,
        instruments: Optional[Instruments] = None,
        coherency=None,
    ) -> SimulationResult:
        """Replay the trace; returns metrics over the measurement window.

        When ``updates`` is given (time-ordered), each event invalidates
        all cached copies of its object the moment simulation time passes
        it -- the coherency extension stressing the paper's read-mostly
        assumption.

        ``coherency`` selects how those updates reach the caches: a
        policy object from :mod:`repro.coherency.policy` (in-band
        broadcast vs. polled pub/sub channel).  ``None`` keeps the
        default in-band behavior with no stats surfaced -- results are
        bit-identical to pre-seam engines, and columnar traces keep
        their fast path.  An explicit policy routes the run through the
        reference loop and lands its accounting in
        ``SimulationResult.coherency``.

        ``interval_collector`` (an
        :class:`~repro.metrics.timeseries.IntervalMetricsCollector`)
        additionally receives *every* outcome, warm-up included, so
        convergence and transient behavior can be observed over time.

        ``progress_callback`` (with ``progress_every > 0``) is invoked as
        ``callback(requests_processed, requests_total)`` after every
        ``progress_every`` requests and once at the end of the replay, so
        long runs can report liveness without measurable overhead.

        ``auditor`` (or the shorthand ``audit_every=N``, which builds a
        strict :class:`~repro.verify.auditor.Auditor` sweeping every N
        requests) turns the replay into an audited run: the auditor
        observes every outcome, sweeps invariants periodically and once
        at the end, and its report lands in ``SimulationResult.audit``.
        Auditing is observational only -- metrics are bit-identical with
        and without it.

        ``instruments`` (an :class:`~repro.obs.instruments.Instruments`
        bundle) turns the replay into an instrumented run: the probe
        receives ``request`` / ``invalidation`` events (schemes and
        caches emit the rest through the attached bundle), the stat
        registry folds in every outcome (warm-up included), and the
        phase timers attribute routing / scheme-processing time.  Also
        observational only -- metrics are bit-identical with and without
        it, and a bundle with no live channel costs nothing.
        """
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        if progress_every < 0:
            raise ValueError("progress_every must be non-negative")
        if progress_callback is not None and progress_every == 0:
            raise ValueError(
                "progress_callback requires progress_every > 0 "
                "(it would otherwise never be invoked)"
            )
        if audit_every < 0:
            raise ValueError("audit_every must be non-negative")
        if auditor is None and audit_every > 0:
            auditor = Auditor(AuditConfig(audit_every=audit_every))
        if auditor is not None:
            auditor.attach(self.scheme)
        if instruments is not None and not instruments.active:
            instruments = None
        if (
            auditor is None
            and instruments is None
            and coherency is None
            and isinstance(trace, ColumnarTrace)
        ):
            # Columnar fast path: bit-identical results without the
            # per-record overhead.  Audited/instrumented runs stay on the
            # reference loop below (their hooks observe every record);
            # a ColumnarTrace iterates lazily there, so either loop
            # accepts either trace representation.
            from repro.sim.fastpath import run_columnar

            return run_columnar(
                self,
                trace,
                updates=updates,
                interval_collector=interval_collector,
                progress_every=progress_every,
                progress_callback=progress_callback,
            )
        probe = registry = timers = None
        snapshot_every = 0
        if instruments is not None:
            self.scheme.attach_instruments(instruments)
            probe = instruments.probe
            registry = instruments.registry
            timers = instruments.timers
            snapshot_every = (
                instruments.snapshot_every if registry is not None else 0
            )
        report_progress = (
            progress_callback if progress_every > 0 else None
        )
        warmup_end, total = trace.split_warmup(self.warmup_fraction)
        started = time.perf_counter()
        collector = MetricsCollector()
        request_path = self.architecture.request_path
        process = self.scheme.process_request
        path_cost = self.cost_model.path_cost
        # The coherency seam: update handling is a policy the loop
        # drives.  The implicit in-band policy replays the exact
        # pre-seam inline loop (and its probe events).
        policy = coherency if coherency is not None else InbandCoherency()
        policy.bind(
            scheme=self.scheme,
            architecture=self.architecture,
            updates=updates,
            probe=probe,
        )
        policy_observes = policy.wants_outcomes
        sweep_every = auditor.config.audit_every if auditor is not None else 0
        last_time = 0.0
        for index, record in enumerate(trace):
            if instruments is not None:
                instruments.request_index = index
            last_time = record.time
            if policy.next_time <= record.time:
                policy.advance(index, record.time)
            if timers is None:
                path = request_path(record.client_id, record.server_id)
                outcome = process(
                    path, record.object_id, record.size, record.time
                )
            else:
                started_phase = time.perf_counter()
                path = request_path(record.client_id, record.server_id)
                routed = time.perf_counter()
                outcome = process(
                    path, record.object_id, record.size, record.time
                )
                processed = time.perf_counter()
                timers.add(PHASE_ROUTING, routed - started_phase)
                timers.add(PHASE_SCHEME, processed - routed)
            if policy_observes:
                policy.observe(outcome, record)
            if registry is not None:
                registry.observe_outcome(outcome)
                if snapshot_every and (index + 1) % snapshot_every == 0:
                    snap = registry.take_snapshot(index + 1)
                    if probe is not None and probe.sample("snapshot"):
                        probe.write("snapshot", **snap)
            if probe is not None and probe.sample("request"):
                probe.write(
                    "request",
                    i=index,
                    t=record.time,
                    object=record.object_id,
                    size=record.size,
                    client=path[0],
                    hit_node=(
                        path[outcome.hit_index]
                        if outcome.served_by_cache
                        else None
                    ),
                    hops=outcome.hops,
                    inserted=list(outcome.inserted_nodes),
                    evicted=outcome.evicted_objects,
                )
            if auditor is not None:
                auditor.observe_outcome(index, outcome)
            if index >= warmup_end or interval_collector is not None:
                latency = path_cost(path[: outcome.hit_index + 1], record.size)
                if index >= warmup_end:
                    collector.record(outcome, latency)
                    if auditor is not None:
                        auditor.observe_measured(outcome, latency)
                if interval_collector is not None:
                    interval_collector.record(outcome, latency, record.time)
            if auditor is not None and (index + 1) % sweep_every == 0:
                auditor.audit_now(self.scheme, collector, index)
            if report_progress is not None and (index + 1) % progress_every == 0:
                report_progress(index + 1, total)
        policy.finalize(last_time)
        duration = time.perf_counter() - started
        if report_progress is not None and total % progress_every != 0:
            report_progress(total, total)
        audit = (
            auditor.finalize(self.scheme, collector, total - 1)
            if auditor is not None
            else None
        )
        node_stats = registry.snapshot() if registry is not None else None
        phase_timings = timers.summary() if timers is not None else None
        return SimulationResult(
            architecture=self.architecture.name,
            scheme=self.scheme.name,
            requests_total=total,
            requests_measured=collector.requests,
            summary=collector.summary(),
            updates_applied=policy.updates_applied,
            copies_invalidated=policy.copies_invalidated,
            duration_seconds=duration,
            requests_per_second=total / duration if duration > 0 else 0.0,
            audit=audit,
            node_stats=node_stats,
            phase_timings=phase_timings,
            coherency=(
                policy.stats_dict() if coherency is not None else None
            ),
        )
