"""Trace-driven simulation of cascaded caching architectures."""

from repro.sim.architecture import (
    Architecture,
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.factory import SCHEME_NAMES, build_scheme

__all__ = [
    "Architecture",
    "SCHEME_NAMES",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "build_enroute_architecture",
    "build_hierarchical_architecture",
    "build_scheme",
]
