"""Cascaded caching architectures: topology + attachment + routing.

An :class:`Architecture` bundles everything request routing needs: the
network, per-root distribution trees, and the attachment of the workload's
clients and origin servers to network nodes.

* **En-route** (paper section 3.2): Tiers-like WAN/MAN topology; clients
  and servers attach to random MAN nodes (the WAN is a pure backbone);
  distribution trees are shortest-path trees rooted at server nodes.
* **Hierarchical** (section 3.2, Figure 5): full O-ary cache tree; clients
  attach to random leaves; every origin server sits behind the root via
  the dedicated server attachment node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.routing.distribution_tree import RoutingTable
from repro.topology.graph import Network, NodeKind
from repro.topology.tiers import TiersConfig, TiersTopologyGenerator
from repro.topology.tree import TreeConfig, build_tree_topology


@dataclass(frozen=True)
class Architecture:
    """A network with client/server attachment and routing state.

    ``non_cache_nodes`` marks nodes that never host a cache -- the
    hierarchical architecture's dedicated origin-server attachment point;
    empty for en-route, where every network node carries a cache.
    """

    name: str
    network: Network
    routing: RoutingTable
    client_nodes: Dict[int, int]
    server_nodes: Dict[int, int]
    non_cache_nodes: frozenset = frozenset()

    def request_path(self, client_id: int, server_id: int) -> List[int]:
        """Delivery path ``[client_node, ..., server_node]`` for a request."""
        return self.routing.request_path(
            self.client_nodes[client_id], self.server_nodes[server_id]
        )

    @property
    def cache_nodes(self) -> List[int]:
        """Nodes that host caches."""
        return [
            n for n in self.network.nodes() if n not in self.non_cache_nodes
        ]

    def mean_client_server_hops(self) -> float:
        """Average routing-path length over the attached populations."""
        clients = sorted(set(self.client_nodes.values()))
        servers = sorted(set(self.server_nodes.values()))
        return self.routing.mean_path_hops(clients, servers)


def build_enroute_architecture(
    num_clients: int,
    num_servers: int,
    tiers_config: TiersConfig | None = None,
    seed: int = 0,
) -> Architecture:
    """En-route architecture: random MAN attachment over a Tiers topology."""
    if num_clients < 1 or num_servers < 1:
        raise ValueError("need at least one client and one server")
    cfg = tiers_config or TiersConfig(seed=seed)
    network = TiersTopologyGenerator(cfg).generate()
    man_nodes = network.nodes_of_kind(NodeKind.MAN)
    if not man_nodes:
        raise ValueError("topology has no MAN nodes to attach to")
    rng = np.random.default_rng(seed + 17)
    client_nodes = {
        c: int(man_nodes[rng.integers(len(man_nodes))]) for c in range(num_clients)
    }
    server_nodes = {
        s: int(man_nodes[rng.integers(len(man_nodes))]) for s in range(num_servers)
    }
    return Architecture(
        name="en-route",
        network=network,
        routing=RoutingTable(network),
        client_nodes=client_nodes,
        server_nodes=server_nodes,
    )


def level_capacity_overrides(
    network: Network,
    base_capacity: int,
    level_multipliers: Dict[int, float],
) -> Dict[int, int]:
    """Per-node capacities from per-level multipliers, budget-preserving.

    Extension beyond the paper's uniform sizing (section 3.2): scale each
    tree level's cache by a multiplier, then renormalize so the *total*
    installed capacity equals ``base_capacity * num_nodes`` -- making
    capacity-distribution comparisons budget-fair.  Levels absent from
    ``level_multipliers`` keep multiplier 1.
    """
    if base_capacity < 0:
        raise ValueError("base_capacity must be non-negative")
    if any(m < 0 for m in level_multipliers.values()):
        raise ValueError("multipliers must be non-negative")
    nodes = list(network.nodes())
    raw = {
        node: base_capacity * level_multipliers.get(network.level(node), 1.0)
        for node in nodes
    }
    total_raw = sum(raw.values())
    budget = base_capacity * len(nodes)
    if total_raw == 0:
        return {node: 0 for node in nodes}
    scale = budget / total_raw
    return {node: int(value * scale) for node, value in raw.items()}


def build_hierarchical_architecture(
    num_clients: int,
    num_servers: int,
    tree_config: TreeConfig | None = None,
    seed: int = 0,
) -> Architecture:
    """Hierarchical architecture: clients at random leaves, servers above the root."""
    if num_clients < 1 or num_servers < 1:
        raise ValueError("need at least one client and one server")
    cfg = tree_config or TreeConfig()
    if not cfg.include_server_node:
        raise ValueError("hierarchical architecture needs the server node")
    topology = build_tree_topology(cfg)
    rng = np.random.default_rng(seed + 29)
    leaves: Sequence[int] = topology.leaves
    client_nodes = {
        c: int(leaves[rng.integers(len(leaves))]) for c in range(num_clients)
    }
    server_nodes = {s: topology.server_node for s in range(num_servers)}
    return Architecture(
        name="hierarchical",
        network=topology.network,
        routing=RoutingTable(topology.network),
        client_nodes=client_nodes,
        server_nodes=server_nodes,
        non_cache_nodes=frozenset({topology.server_node}),
    )
