"""Simulation configuration.

Cache sizes follow the paper's convention (section 3.2): the *relative
cache size* is the per-node capacity as a fraction of the total size of
all objects, and the d-cache holds ``dcache_ratio`` times the average
number of objects the main cache can accommodate (default 3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationConfig:
    """Per-run knobs independent of architecture and workload."""

    relative_cache_size: float = 0.01
    dcache_ratio: float = 3.0
    warmup_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.relative_cache_size <= 0:
            raise ValueError("relative_cache_size must be positive")
        if self.dcache_ratio < 0:
            raise ValueError("dcache_ratio must be non-negative")
        if not 0 <= self.warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")

    def capacity_bytes(self, total_object_bytes: int) -> int:
        """Per-node main-cache capacity in bytes."""
        return max(1, int(self.relative_cache_size * total_object_bytes))

    def dcache_entries(self, total_object_bytes: int, mean_object_size: float) -> int:
        """d-cache capacity in descriptors (section 3.2's sizing rule)."""
        if mean_object_size <= 0:
            raise ValueError("mean object size must be positive")
        objects_in_cache = self.capacity_bytes(total_object_bytes) / mean_object_size
        return max(1, int(self.dcache_ratio * objects_in_cache))
