"""Time-series metrics: per-window aggregates over a run.

The paper reports steady-state means; for studying *dynamics* -- warm-up
convergence, reaction to flash crowds or invalidation storms -- the
engine can additionally bin outcomes into fixed-width time windows via
:class:`IntervalMetricsCollector` and report a series of per-window
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.schemes.base import RequestOutcome


@dataclass(frozen=True)
class IntervalSnapshot:
    """Aggregates of one time window."""

    window_start: float
    window_end: float
    requests: int
    mean_latency: float
    byte_hit_ratio: float
    mean_hops: float

    @property
    def midpoint(self) -> float:
        return (self.window_start + self.window_end) / 2


class IntervalMetricsCollector:
    """Bins request outcomes into fixed-width windows.

    Windows are aligned at ``t = 0``; empty windows between active ones
    are emitted with zero requests so series stay evenly spaced.
    """

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self._windows: dict[int, List] = {}

    def record(self, outcome: RequestOutcome, latency: float, now: float) -> None:
        if now < 0:
            raise ValueError("time must be non-negative")
        index = int(now // self.window_seconds)
        bucket = self._windows.setdefault(index, [0, 0.0, 0, 0, 0])
        bucket[0] += 1                       # requests
        bucket[1] += latency                 # latency sum
        bucket[2] += outcome.size            # bytes requested
        if outcome.served_by_cache:
            bucket[3] += outcome.size        # bytes cache-served
        bucket[4] += outcome.hops            # hops sum

    def series(self) -> List[IntervalSnapshot]:
        """Snapshots for every window from the first to the last active one."""
        if not self._windows:
            return []
        first = min(self._windows)
        last = max(self._windows)
        snapshots: List[IntervalSnapshot] = []
        for index in range(first, last + 1):
            start = index * self.window_seconds
            end = start + self.window_seconds
            bucket = self._windows.get(index)
            if bucket is None or bucket[0] == 0:
                snapshots.append(
                    IntervalSnapshot(start, end, 0, 0.0, 0.0, 0.0)
                )
                continue
            requests, latency_sum, req_bytes, hit_bytes, hops_sum = bucket
            snapshots.append(
                IntervalSnapshot(
                    window_start=start,
                    window_end=end,
                    requests=requests,
                    mean_latency=latency_sum / requests,
                    byte_hit_ratio=hit_bytes / req_bytes if req_bytes else 0.0,
                    mean_hops=hops_sum / requests,
                )
            )
        return snapshots
