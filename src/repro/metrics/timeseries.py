"""Time-series metrics: per-window aggregates over a run.

The paper reports steady-state means; for studying *dynamics* -- warm-up
convergence, reaction to flash crowds or invalidation storms -- the
engine can additionally bin outcomes into fixed-width time windows via
:class:`IntervalMetricsCollector` and report a series of per-window
snapshots.  :func:`series_to_csv` / :func:`series_to_json` serialize a
series for the CLI's ``--timeseries-out``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import List, Sequence

from repro.schemes.base import RequestOutcome


@dataclass(frozen=True)
class IntervalSnapshot:
    """Aggregates of one time window.

    ``hit_ratio`` is the *request* hit ratio (fraction of requests served
    by any cache) -- the byte-weighted counterpart is ``byte_hit_ratio``.
    ``mean_read_load`` / ``mean_write_load`` are the cache-byte traffic
    rates of the window: bytes served from caches, and bytes written
    into caches by placements, per second of window width.

    New fields are appended at the end with defaults so existing
    positional construction keeps working.
    """

    window_start: float
    window_end: float
    requests: int
    mean_latency: float
    byte_hit_ratio: float
    mean_hops: float
    hit_ratio: float = 0.0
    mean_read_load: float = 0.0
    mean_write_load: float = 0.0

    @property
    def midpoint(self) -> float:
        return (self.window_start + self.window_end) / 2


class IntervalMetricsCollector:
    """Bins request outcomes into fixed-width windows.

    Windows are aligned at ``t = 0``; empty windows between active ones
    are emitted with zero requests so series stay evenly spaced.
    """

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self._windows: dict[int, List] = {}

    def record(self, outcome: RequestOutcome, latency: float, now: float) -> None:
        if now < 0:
            raise ValueError("time must be non-negative")
        index = int(now // self.window_seconds)
        bucket = self._windows.setdefault(
            index, [0, 0.0, 0, 0, 0, 0, 0, 0]
        )
        bucket[0] += 1                       # requests
        bucket[1] += latency                 # latency sum
        bucket[2] += outcome.size            # bytes requested
        if outcome.served_by_cache:
            bucket[3] += outcome.size        # bytes cache-served
            bucket[5] += 1                   # cache hits
            bucket[6] += outcome.size        # bytes read from caches
        bucket[4] += outcome.hops            # hops sum
        bucket[7] += outcome.size * len(outcome.inserted_nodes)  # bytes written

    def series(self) -> List[IntervalSnapshot]:
        """Snapshots for every window from the first to the last active one."""
        if not self._windows:
            return []
        first = min(self._windows)
        last = max(self._windows)
        width = self.window_seconds
        snapshots: List[IntervalSnapshot] = []
        for index in range(first, last + 1):
            start = index * width
            end = start + width
            bucket = self._windows.get(index)
            if bucket is None or bucket[0] == 0:
                snapshots.append(
                    IntervalSnapshot(start, end, 0, 0.0, 0.0, 0.0)
                )
                continue
            (
                requests,
                latency_sum,
                req_bytes,
                hit_bytes,
                hops_sum,
                hits,
                read_bytes,
                write_bytes,
            ) = bucket
            snapshots.append(
                IntervalSnapshot(
                    window_start=start,
                    window_end=end,
                    requests=requests,
                    mean_latency=latency_sum / requests,
                    byte_hit_ratio=hit_bytes / req_bytes if req_bytes else 0.0,
                    mean_hops=hops_sum / requests,
                    hit_ratio=hits / requests,
                    mean_read_load=read_bytes / width,
                    mean_write_load=write_bytes / width,
                )
            )
        return snapshots


def series_to_csv(series: Sequence[IntervalSnapshot]) -> str:
    """Render a snapshot series as CSV text (header + one row per window)."""
    names = [f.name for f in fields(IntervalSnapshot)]
    lines = [",".join(names)]
    for snap in series:
        row = asdict(snap)
        lines.append(",".join(_format_csv_value(row[name]) for name in names))
    return "\n".join(lines) + "\n"


def _format_csv_value(value) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def series_to_json(series: Sequence[IntervalSnapshot]) -> str:
    """Render a snapshot series as a JSON array of objects."""
    return json.dumps([asdict(snap) for snap in series], indent=2) + "\n"
