"""Replication-density instrumentation.

The paper explains coordinated caching's wins by *where* copies end up:
popular objects get replicated densely (close to clients), unpopular ones
sparsely.  These helpers snapshot a scheme's cache state so that claim
can be observed directly (see the hierarchical example and the
``test_extension_replication_density`` bench).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.schemes.base import CachingScheme


def copies_per_object(scheme: CachingScheme) -> Dict[int, int]:
    """How many caches currently hold each object (objects with >= 1 copy)."""
    counts: Dict[int, int] = {}
    for cache in scheme.caches().values():
        for object_id in cache.object_ids():
            counts[object_id] = counts.get(object_id, 0) + 1
    return counts


def density_by_popularity(
    scheme: CachingScheme,
    popularity_ranking: Sequence[int],
    buckets: int = 10,
) -> List[float]:
    """Mean copy count per popularity bucket (bucket 0 = most popular).

    ``popularity_ranking`` lists object ids from most to least popular
    (e.g. ``trace.most_popular(catalog.num_objects)``).  Objects missing
    from every cache count as zero copies.
    """
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    if not popularity_ranking:
        raise ValueError("popularity ranking is empty")
    counts = copies_per_object(scheme)
    n = len(popularity_ranking)
    means: List[float] = []
    for b in range(buckets):
        start = b * n // buckets
        end = (b + 1) * n // buckets
        members = popularity_ranking[start:end]
        if not members:
            means.append(0.0)
            continue
        means.append(sum(counts.get(o, 0) for o in members) / len(members))
    return means


def occupancy_by_level(scheme: CachingScheme, network) -> Dict[int, float]:
    """Mean cache fill fraction per topology level (hierarchies only)."""
    fills: Dict[int, List[float]] = {}
    for node, cache in scheme.caches().items():
        if cache.capacity_bytes == 0:
            continue
        level = network.level(node)
        fills.setdefault(level, []).append(
            cache.used_bytes / cache.capacity_bytes
        )
    return {
        level: sum(values) / len(values) for level, values in fills.items()
    }
