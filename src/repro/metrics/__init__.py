"""Metrics: the six performance measures of the paper's evaluation."""

from repro.metrics.collector import MetricsCollector, MetricsSummary

__all__ = ["MetricsCollector", "MetricsSummary"]
