"""Metric aggregation for simulation runs.

The collector accumulates, per served request, the measures reported in
the paper's evaluation (section 4):

* **access latency** -- total cost from the requester to the serving node
  (Figures 6a, 9a);
* **response ratio** -- latency divided by object size, eliminating the
  object-size effect (Figures 6b, 9b);
* **byte hit ratio** -- bytes served by caches over bytes requested, a
  proxy for origin-server load reduction (Figures 7a, 10a);
* **network traffic** -- byte x hops per request (Figure 7b);
* **hops traveled** -- links crossed before hitting the object
  (Figure 8a);
* **cache read/write load** -- aggregate bytes read from and written into
  caches per request (Figures 8b, 10b).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from repro.schemes.base import RequestOutcome

# Reservoir size for latency percentiles: large enough for stable p99 at
# the trace scales used here, small enough to be memory-trivial.
_RESERVOIR_SIZE = 8192


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregated results over the measurement window of one run.

    ``latency_percentiles`` holds (p50, p90, p99) estimated from a
    fixed-size reservoir sample of per-request latencies -- an extension
    beyond the paper, which reports means only.
    """

    requests: int
    mean_latency: float
    mean_response_ratio: float
    byte_hit_ratio: float
    hit_ratio: float
    mean_traffic_byte_hops: float
    mean_hops: float
    mean_read_load: float
    mean_write_load: float
    latency_percentiles: Tuple[float, float, float] = (
        math.nan,
        math.nan,
        math.nan,
    )

    @property
    def mean_cache_load(self) -> float:
        """Aggregate read + write bytes per request (Figures 8b, 10b)."""
        return self.mean_read_load + self.mean_write_load

    @property
    def read_load_share(self) -> float:
        """Fraction of the cache load that is (useful) read load."""
        total = self.mean_cache_load
        return self.mean_read_load / total if total > 0 else 0.0


class MetricsCollector:
    """Accumulates per-request measurements and produces a summary."""

    def __init__(self) -> None:
        self._requests = 0
        # Deterministic reservoir sampler: identical runs yield identical
        # percentile estimates.
        self._reservoir: list[float] = []
        self._rng = random.Random(0x5EED)
        self._latency = 0.0
        self._response_ratio = 0.0
        self._bytes_requested = 0
        self._bytes_cache_served = 0
        self._cache_hits = 0
        self._byte_hops = 0.0
        self._hops = 0
        self._bytes_read = 0
        self._bytes_written = 0

    @property
    def requests(self) -> int:
        return self._requests

    @classmethod
    def from_totals(
        cls, totals: dict, reservoir: list[float]
    ) -> "MetricsCollector":
        """Rebuild a collector from :meth:`totals` output plus a reservoir.

        Inverse of :meth:`totals`, used by the simulation engine's fast
        path: kernels accumulate the same raw totals inline (bit-for-bit
        the reference accumulation order) and restore them here, so
        :meth:`summary` stays the single source of derived metrics.  The
        reservoir must have been filled with the collector's deterministic
        sampling rule for percentiles to match.
        """
        collector = cls()
        collector._requests = totals["requests"]
        collector._latency = totals["latency_sum"]
        collector._response_ratio = totals["response_ratio_sum"]
        collector._bytes_requested = totals["bytes_requested"]
        collector._bytes_cache_served = totals["bytes_cache_served"]
        collector._cache_hits = totals["cache_hits"]
        collector._byte_hops = totals["byte_hops"]
        collector._hops = totals["hops"]
        collector._bytes_read = totals["bytes_read"]
        collector._bytes_written = totals["bytes_written"]
        collector._reservoir = list(reservoir)
        return collector

    def totals(self) -> dict:
        """Raw accumulator snapshot (consumed by the audit layer).

        Every value is the running total exactly as accumulated, so an
        independent replay of the same outcome stream must reproduce each
        one bit-for-bit.
        """
        return {
            "requests": self._requests,
            "latency_sum": self._latency,
            "response_ratio_sum": self._response_ratio,
            "bytes_requested": self._bytes_requested,
            "bytes_cache_served": self._bytes_cache_served,
            "cache_hits": self._cache_hits,
            "byte_hops": self._byte_hops,
            "hops": self._hops,
            "bytes_read": self._bytes_read,
            "bytes_written": self._bytes_written,
        }

    def record(self, outcome: RequestOutcome, latency: float) -> None:
        """Record one request's outcome with its modelled access latency."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._requests += 1
        if len(self._reservoir) < _RESERVOIR_SIZE:
            self._reservoir.append(latency)
        else:
            slot = self._rng.randrange(self._requests)
            if slot < _RESERVOIR_SIZE:
                self._reservoir[slot] = latency
        self._latency += latency
        self._response_ratio += latency / outcome.size
        self._bytes_requested += outcome.size
        if outcome.served_by_cache:
            self._bytes_cache_served += outcome.size
            self._cache_hits += 1
        self._byte_hops += outcome.size * outcome.hops
        self._hops += outcome.hops
        self._bytes_read += outcome.bytes_read
        self._bytes_written += outcome.bytes_written

    def summary(self) -> MetricsSummary:
        if self._requests == 0:
            raise ValueError("no requests recorded")
        n = self._requests
        ordered = sorted(self._reservoir)
        # Nearest-rank percentile: the smallest value with at least q*n
        # samples at or below it, i.e. index ceil(q*n) - 1.  (Truncating
        # q*n overshoots by one: p50 of two samples must be the smaller.)
        percentiles = tuple(
            ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            for q in (0.50, 0.90, 0.99)
        )
        return MetricsSummary(
            latency_percentiles=percentiles,
            requests=n,
            mean_latency=self._latency / n,
            mean_response_ratio=self._response_ratio / n,
            byte_hit_ratio=(
                self._bytes_cache_served / self._bytes_requested
                if self._bytes_requested
                else 0.0
            ),
            hit_ratio=self._cache_hits / n,
            mean_traffic_byte_hops=self._byte_hops / n,
            mean_hops=self._hops / n,
            mean_read_load=self._bytes_read / n,
            mean_write_load=self._bytes_written / n,
        )
